"""Durable chunked column store: checksummed chunks + fsync'd manifest.

One :class:`ChunkStore` owns a directory of chunk files.  Each chunk is
one NumPy column (contiguous ``uint32``/``uint64`` data), written to a
fresh temp file, fsynced, atomically renamed into place, and then
*verified* by re-reading and checksumming — a torn write can therefore
never be mistaken for a durable chunk.  The manifest (chunk names,
dtypes, lengths, CRCs, codec) is JSON written via the same
temp + fsync + ``os.replace`` dance, so a crash leaves either the old
manifest or the new one, never a half-written file.

Reads validate each chunk's CRC against the manifest before handing out
an array; the raw codec returns a read-only ``np.memmap`` so spilled
columns stay out of the Python heap.  An optional compressed codec is
available: ``zlib`` (stdlib, always on) or ``zstd`` (gated on the
``zstandard`` package being importable — a typed
:class:`~repro.errors.ConfigError` otherwise, never an ImportError).

The store boundary is a fault-injection surface: every write probes the
``store-write`` point (``torn-write``, ``enospc``) and every read probes
``store-read`` (``corrupt-chunk``, ``io-slow``), with a bounded-retry
ladder matching the task engine's policy.  Write exhaustion raises the
internal :class:`ChunkWriteExhausted` so the spill session can decide
between degrading the chunk to RAM and a typed
:class:`~repro.errors.SpillError`; read exhaustion is terminal and
raises :class:`~repro.errors.SpillError` directly, carrying the
episode's :class:`~repro.faults.report.FailureReport`.
"""

from __future__ import annotations

import base64
import errno
import json
import os
import weakref
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ConfigError, SpillError
from repro.faults.plan import (
    CORRUPT_CHUNK,
    ENOSPC,
    IO_SLOW,
    STORE_READ_POINT,
    STORE_WRITE_POINT,
    TORN_WRITE,
)
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope
from repro.obs.trace import current_tracer

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Chunk codecs: raw memory-mappable bytes, stdlib zlib, optional zstd.
CODECS = ("raw", "zlib", "zstd")
CODEC_ENV = "REPRO_SPILL_CODEC"

_CHUNK_SUFFIX = ".chunk"


def resolve_codec(name: Optional[str] = None) -> str:
    """Validate a codec name (default: ``$REPRO_SPILL_CODEC``, else raw).

    ``zstd`` is only accepted when the ``zstandard`` package is
    importable; environments without it get a typed ConfigError telling
    them to use ``zlib`` instead of an ImportError at first write.
    """
    name = name or os.environ.get(CODEC_ENV, "") or "raw"
    if name not in CODECS:
        raise ConfigError(
            f"unknown spill codec {name!r}; choose from {CODECS}",
            codec=name)
    if name == "zstd":
        try:
            import zstandard  # noqa: F401
        except ImportError:
            raise ConfigError(
                "spill codec 'zstd' needs the optional zstandard package "
                "(pinned in constraints.txt); use 'zlib' here instead",
                codec=name) from None
    return name


#: Byte cap on a trained per-column dictionary (zlib's zdict window).
DICTIONARY_MAX_BYTES = 1 << 15


def _encode(payload: bytes, codec: str,
            dictionary: Optional[bytes] = None) -> bytes:
    if codec == "raw":
        return payload
    if codec == "zlib":
        if dictionary is None:
            return zlib.compress(payload, 1)
        comp = zlib.compressobj(1, zlib.DEFLATED, zlib.MAX_WBITS,
                                zlib.DEF_MEM_LEVEL, 0, dictionary)
        return comp.compress(payload) + comp.flush()
    import zstandard

    if dictionary is None:
        return zstandard.ZstdCompressor().compress(payload)
    return zstandard.ZstdCompressor(
        dict_data=zstandard.ZstdCompressionDict(dictionary)
    ).compress(payload)


def _decode(data: bytes, codec: str,
            dictionary: Optional[bytes] = None) -> bytes:
    if codec == "raw":
        return data
    if codec == "zlib":
        if dictionary is None:
            return zlib.decompress(data)
        decomp = zlib.decompressobj(zdict=dictionary)
        return decomp.decompress(data) + decomp.flush()
    import zstandard

    if dictionary is None:
        return zstandard.ZstdDecompressor().decompress(data)
    return zstandard.ZstdDecompressor(
        dict_data=zstandard.ZstdCompressionDict(dictionary)
    ).decompress(data)


def train_dictionary(sample: bytes, codec: str) -> Optional[bytes]:
    """A per-column-family compression dictionary from first-chunk bytes.

    ``zlib`` uses the sample tail directly as a preset window (``zdict``);
    ``zstd`` prefers a properly trained dictionary over sample slices and
    falls back to raw-content mode when the trainer needs more material
    than one chunk provides.  ``raw`` has nothing to train — returns None.
    """
    if codec == "raw" or not sample:
        return None
    if codec == "zlib":
        return sample[-DICTIONARY_MAX_BYTES:]
    import zstandard

    try:
        step = max(len(sample) // 64, 1)
        samples = [sample[i:i + step] for i in range(0, len(sample), step)]
        return zstandard.train_dictionary(
            DICTIONARY_MAX_BYTES, samples).as_bytes()
    except Exception:
        return sample[-DICTIONARY_MAX_BYTES:]


@dataclass
class ChunkInfo:
    """Manifest entry for one durable chunk."""

    name: str
    dtype: str
    length: int
    crc32: int
    stored_bytes: int
    #: Per-column-family dictionary this chunk was encoded with (None =
    #: dictionary-free; absent from older manifests, which default so).
    dictionary: Optional[str] = None

    def to_dict(self) -> Dict:
        payload = {"name": self.name, "dtype": self.dtype,
                   "length": self.length, "crc32": self.crc32,
                   "stored_bytes": self.stored_bytes}
        if self.dictionary is not None:
            payload["dictionary"] = self.dictionary
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "ChunkInfo":
        dictionary = data.get("dictionary")
        return cls(name=str(data["name"]), dtype=str(data["dtype"]),
                   length=int(data["length"]), crc32=int(data["crc32"]),
                   stored_bytes=int(data["stored_bytes"]),
                   dictionary=(str(dictionary) if dictionary is not None
                               else None))


class ChunkWriteExhausted(Exception):
    """Internal: one chunk's write ladder ran out of retries.

    Carries the episode state so the spill session can either degrade
    the chunk to RAM (recording a recovered report) or escalate to a
    typed :class:`~repro.errors.SpillError` (recording an unrecovered
    one).  Never escapes the store/spill plane.
    """

    def __init__(self, name: str, kind: str, retries: int,
                 backoff_seconds: float, injected: bool, error: str):
        super().__init__(error)
        self.name = name
        self.kind = kind
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.injected = injected
        self.error = error


def _bump(metric: str, value: float = 1.0) -> None:
    current_tracer().metrics.counter(metric).inc(value)


class ChunkStore:
    """A directory of checksummed column chunks plus their manifest."""

    def __init__(self, directory: Union[str, Path],
                 codec: Optional[str] = None, load: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.codec = resolve_codec(codec)
        self.chunks: Dict[str, ChunkInfo] = {}
        #: Per-column-family compression dictionaries (family -> bytes),
        #: persisted base64 in the manifest.
        self.dictionaries: Dict[str, bytes] = {}
        self._raw_bytes = 0
        self._stored_bytes = 0
        self._mappings: list = []
        self._closed = False
        if load:
            self.load_manifest()

    # ------------------------------------------------------ fd lifecycle

    def _track_mapping(self, view: np.memmap) -> None:
        """Remember a handed-out raw-codec mapping for deterministic close.

        ``np.memmap`` holds its file descriptor until the array is garbage
        collected; long resume/serve runs that keep stores open therefore
        leak descriptors unless the store releases its mappings itself.
        Weak references keep the store from pinning the mappings (and
        their resident pages) alive on its own.
        """
        self._mappings.append(weakref.ref(view))
        if len(self._mappings) > 256:
            self._mappings = [r for r in self._mappings if r() is not None]

    def release_mappings(self) -> int:
        """Close every tracked raw-codec mapping; returns how many.

        This is the store's half of the mmap contract: arrays handed
        out by :meth:`read_array` under the raw codec view the chunk
        files directly, so once the mappings are released those views
        are **invalid** — exactly as if the caller had closed the
        underlying ``mmap`` itself.  Callers therefore close a store
        only when they are done reading from it (the context-manager
        form scopes this naturally).  Mappings whose buffers are pinned
        by exported memoryviews refuse to close (``BufferError``) and
        are left to garbage collection.
        """
        released = 0
        survivors = []
        for ref in self._mappings:
            view = ref()
            if view is None:
                continue
            try:
                view._mmap.close()
                released += 1
            except (BufferError, ValueError, AttributeError):
                survivors.append(ref)
        self._mappings = survivors
        if released:
            _bump("store.mappings_released", float(released))
        return released

    def close(self) -> None:
        """Release mappings and mark the store closed (idempotent).

        Raw-codec views handed out by :meth:`read_array` must not be
        read afterwards (see :meth:`release_mappings`); materialized
        copies — everything the compressed codecs return, and every
        ``materialize()``d column — stay valid.
        """
        self.release_mappings()
        self._closed = True

    def __enter__(self) -> "ChunkStore":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # ------------------------------------------------------------- paths

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def chunk_path(self, name: str) -> Path:
        return self.directory / f"{name}{_CHUNK_SUFFIX}"

    # ------------------------------------------------------- dictionaries

    def dictionary_for(self, family: str) -> Optional[bytes]:
        """The registered dictionary of one column family (None = none)."""
        return self.dictionaries.get(family)

    def ensure_dictionary(self, family: str, sample: bytes) -> Optional[str]:
        """Train and register ``family``'s dictionary from first-chunk bytes.

        Returns the family name when a dictionary now exists (already
        registered, or freshly trained), else None (raw codec, or nothing
        trainable).  Streaming writers call this on their first chunk and
        pass the result as ``dict_family`` for every later chunk.
        """
        if family in self.dictionaries:
            return family
        trained = train_dictionary(sample, self.codec)
        if trained is None:
            return None
        self.dictionaries[family] = trained
        _bump("store.dictionaries_trained")
        return family

    # ------------------------------------------------------------- write

    def write_array(self, name: str, array: np.ndarray,
                    dict_family: Optional[str] = None) -> ChunkInfo:
        """Durably persist one column; returns its manifest entry.

        Recovery ladder rung 1 and 2 live here: a failed or torn write
        is retried up to the ambient policy's ``max_retries``, each
        attempt re-spilling through a *fresh* temp file (attempt-tagged,
        so a poisoned temp never lingers into the next try).  Success
        after retries records one recovered ``FailureReport``; running
        out raises :class:`ChunkWriteExhausted` for the session's
        degrade-or-raise decision.

        A matching, validated chunk already in the manifest (same name,
        same CRC) is reused without rewriting — the resume path's
        "revalidate and keep" optimization.
        """
        scope = current_fault_scope()
        policy = scope.policy
        arr = np.ascontiguousarray(array)
        payload = arr.tobytes()
        dictionary = None
        if dict_family is not None:
            dictionary = self.dictionaries.get(dict_family)
            if dictionary is None:
                dict_family = None
        encoded = _encode(payload, self.codec, dictionary)
        crc = zlib.crc32(encoded)
        info = ChunkInfo(name=name, dtype=str(arr.dtype), length=int(arr.size),
                         crc32=crc, stored_bytes=len(encoded),
                         dictionary=dict_family)
        existing = self.chunks.get(name)
        if (existing is not None and existing.crc32 == crc
                and existing.length == info.length
                and self.validate_chunk(name)):
            _bump("store.chunks_reused")
            return existing
        retries = 0
        backoff = 0.0
        injected = False
        kind = TORN_WRITE
        errors = []
        path = self.chunk_path(name)
        while True:
            spec = scope.fire(STORE_WRITE_POINT, chunk=name)
            error = None
            if spec is not None and spec.kind == ENOSPC:
                injected = True
                kind = ENOSPC
                error = f"injected ENOSPC before chunk write ({spec.label()})"
            else:
                data = encoded
                if spec is not None and spec.kind == TORN_WRITE:
                    injected = True
                    kind = TORN_WRITE
                    data = encoded[: max(len(encoded) // 2, 1)]
                try:
                    self._write_file(path, data, attempt=retries)
                    if zlib.crc32(path.read_bytes()) != crc:
                        error = (f"chunk {name} failed write verification "
                                 "(torn write)")
                except OSError as exc:
                    kind = (ENOSPC if getattr(exc, "errno", None)
                            == errno.ENOSPC else TORN_WRITE)
                    error = f"{type(exc).__name__}: {exc}"
            if error is None:
                break
            retries += 1
            errors.append(error)
            backoff += policy.backoff_seconds(retries)
            _bump("store.write_retries")
            if retries > policy.max_retries:
                raise ChunkWriteExhausted(
                    name=name, kind=kind, retries=retries,
                    backoff_seconds=backoff, injected=injected,
                    error=errors[-1])
        if retries:
            scope.record(FailureReport(
                kind=kind, point=STORE_WRITE_POINT,
                algorithm=scope.algorithm, phase=current_phase_name(),
                action="re-spill", recovered=True, injected=injected,
                retries=retries, backoff_seconds=backoff,
                error=errors[-1], context={"chunk": name}))
        self.chunks[name] = info
        self._raw_bytes += len(payload)
        self._stored_bytes += len(encoded)
        _bump("store.chunks_written")
        _bump("store.bytes_spilled", float(len(encoded)))
        _bump("store.bytes_raw", float(len(payload)))
        if self._stored_bytes:
            current_tracer().metrics.gauge("store.compression_ratio").set(
                self._raw_bytes / self._stored_bytes)
        return info

    def _write_file(self, path: Path, data: bytes, attempt: int = 0) -> None:
        """One write attempt: fresh temp file, fsync, atomic rename."""
        tmp = path.with_suffix(f".tmp{attempt}")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)

    # -------------------------------------------------------------- read

    def read_array(self, name: str) -> np.ndarray:
        """Load one validated column (read-only).

        The raw codec memory-maps the chunk file; compressed codecs
        decode into a read-only buffer.  Every read validates the CRC
        against the manifest; mismatches (injected or on-disk rot) are
        retried up to the policy budget and then surface as a typed
        :class:`~repro.errors.SpillError` carrying the unrecovered
        report — never a silently wrong array.
        """
        scope = current_fault_scope()
        policy = scope.policy
        try:
            info = self.chunks[name]
        except KeyError:
            raise SpillError(f"unknown chunk {name!r} (not in manifest)",
                             chunk=name) from None
        path = self.chunk_path(name)
        retries = 0
        backoff = 0.0
        injected = False
        errors = []
        while True:
            spec = scope.fire(STORE_READ_POINT, chunk=name)
            if spec is not None and spec.kind == IO_SLOW:
                injected = True
                self._charge_io_slow(spec, name, scope)
                spec = None
            error = None
            view = None
            try:
                if self.codec == "raw":
                    view = np.memmap(path, dtype=np.dtype(info.dtype),
                                     mode="r")
                    data = memoryview(view).cast("B")
                else:
                    data = path.read_bytes()
            except (OSError, ValueError) as exc:
                error = f"{type(exc).__name__}: {exc}"
            if error is None:
                if spec is not None and spec.kind == CORRUPT_CHUNK:
                    # Injected corruption is simulated on the loaded
                    # copy (the file stays intact), so a bounded re-read
                    # can actually succeed once the spec stops firing —
                    # real on-disk rot keeps failing and exhausts below.
                    injected = True
                    data = bytearray(data)
                    data[0] ^= 0xFF
                if len(data) != info.stored_bytes:
                    error = (f"chunk {name} is {len(data)} bytes, manifest "
                             f"says {info.stored_bytes} (torn write)")
                elif zlib.crc32(data) != info.crc32:
                    error = f"chunk {name} failed CRC validation"
            _bump("store.read_validations")
            if error is None:
                break
            retries += 1
            errors.append(error)
            backoff += policy.backoff_seconds(retries)
            _bump("store.read_retries")
            if retries > policy.max_retries:
                report = scope.record(FailureReport(
                    kind=CORRUPT_CHUNK, point=STORE_READ_POINT,
                    algorithm=scope.algorithm, phase=current_phase_name(),
                    action="abort", recovered=False, injected=injected,
                    retries=retries, backoff_seconds=backoff,
                    error=errors[-1], context={"chunk": name}))
                raise SpillError(
                    f"chunk {name} unreadable after {policy.max_retries} "
                    f"retries: {errors[-1]}", report=report, chunk=name)
        if retries:
            scope.record(FailureReport(
                kind=CORRUPT_CHUNK, point=STORE_READ_POINT,
                algorithm=scope.algorithm, phase=current_phase_name(),
                action="re-read", recovered=True, injected=injected,
                retries=retries, backoff_seconds=backoff,
                error=errors[-1], context={"chunk": name}))
        if self.codec == "raw":
            if isinstance(data, bytearray):
                # The validated copy diverged from the mapping (injected
                # corruption path retried into success) — decode the copy.
                arr = np.frombuffer(bytes(data), dtype=np.dtype(info.dtype))
            else:
                arr = view
                self._track_mapping(view)
        else:
            dictionary = None
            if info.dictionary is not None:
                dictionary = self.dictionaries.get(info.dictionary)
                if dictionary is None:
                    raise SpillError(
                        f"chunk {name} was encoded with dictionary "
                        f"{info.dictionary!r}, which this manifest does "
                        "not carry", chunk=name)
            arr = np.frombuffer(_decode(bytes(data), self.codec, dictionary),
                                dtype=np.dtype(info.dtype))
        _bump("store.pages_in")
        _bump("store.bytes_paged_in", float(info.length
                                            * np.dtype(info.dtype).itemsize))
        if arr.size != info.length:
            raise SpillError(
                f"chunk {name} decoded to {arr.size} elements, manifest "
                f"says {info.length}", chunk=name)
        if not isinstance(arr, np.memmap):
            arr = arr.view()
            arr.flags.writeable = False
        return arr

    def _charge_io_slow(self, spec, name: str, scope) -> None:
        """An ``io-slow`` fire: charge any ambient deadline, never sleep."""
        from repro.exec.cancel import current_cancel_scope

        cancel = current_cancel_scope()
        if cancel is not None and cancel.deadline is not None:
            cancel.deadline.charge(spec.seconds)
        _bump("store.io_slow_seconds", float(spec.seconds))
        scope.record(FailureReport(
            kind=IO_SLOW, point=STORE_READ_POINT,
            algorithm=scope.algorithm, phase=current_phase_name(),
            action="charge", recovered=True, injected=True,
            error=f"injected slow chunk read ({spec.label()})",
            context={"chunk": name, "seconds": spec.seconds}))

    # --------------------------------------------------------- integrity

    def validate_chunk(self, name: str) -> bool:
        """True when the chunk file matches its manifest CRC exactly."""
        info = self.chunks.get(name)
        if info is None:
            return False
        try:
            data = self.chunk_path(name).read_bytes()
        except OSError:
            return False
        return len(data) == info.stored_bytes and zlib.crc32(data) == info.crc32

    def drop_invalid_chunks(self) -> int:
        """Forget manifest entries whose files no longer validate.

        The resume path calls this before re-running: dropped chunks are
        simply re-spilled from the recomputed partitions (rung 2 of the
        ladder, applied across a crash).
        """
        bad = [name for name in self.chunks if not self.validate_chunk(name)]
        for name in bad:
            del self.chunks[name]
        if bad:
            _bump("store.chunks_invalid", float(len(bad)))
        return len(bad)

    # ---------------------------------------------------------- manifest

    def write_manifest(self, extra: Optional[Dict] = None) -> Path:
        """Atomically persist the manifest (temp + fsync + rename)."""
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "codec": self.codec,
            "chunks": [self.chunks[name].to_dict()
                       for name in sorted(self.chunks)],
            "extra": extra or {},
        }
        if self.dictionaries:
            # Dictionaries are small (<= 32 KiB) and must survive exactly
            # as long as the chunks they decode, so they ride inside the
            # same atomically-replaced manifest, base64 + CRC'd.
            payload["dictionaries"] = {
                family: {
                    "crc32": zlib.crc32(blob),
                    "data": base64.b64encode(blob).decode("ascii"),
                }
                for family, blob in sorted(self.dictionaries.items())
            }
        tmp = self.manifest_path.with_suffix(".tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, (json.dumps(payload, indent=2, sort_keys=True)
                          + "\n").encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.manifest_path)
        self._fsync_directory()
        return self.manifest_path

    def load_manifest(self, missing_ok: bool = False) -> Dict:
        """Read the manifest back; returns its ``extra`` payload.

        ``missing_ok`` treats an absent manifest as an empty store — the
        resume path uses it because a crash before the first spill
        completes legitimately leaves no manifest behind.
        """
        try:
            data = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            if missing_ok:
                self.chunks = {}
                return {}
            raise SpillError(
                f"no spill manifest at {self.manifest_path}; nothing to "
                "resume", path=str(self.manifest_path)) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise SpillError(
                f"spill manifest {self.manifest_path} unreadable: {exc}",
                path=str(self.manifest_path)) from exc
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise SpillError(
                f"spill manifest {self.manifest_path} has version "
                f"{version!r}, this build reads {MANIFEST_VERSION}",
                path=str(self.manifest_path), found_version=version)
        self.codec = resolve_codec(data.get("codec", "raw"))
        self.chunks = {c["name"]: ChunkInfo.from_dict(c)
                       for c in data.get("chunks", [])}
        self.dictionaries = {}
        for family, entry in data.get("dictionaries", {}).items():
            try:
                blob = base64.b64decode(entry["data"])
            except (KeyError, TypeError, ValueError) as exc:
                raise SpillError(
                    f"manifest dictionary {family!r} is malformed: {exc}",
                    path=str(self.manifest_path)) from exc
            if zlib.crc32(blob) != int(entry.get("crc32", -1)):
                raise SpillError(
                    f"manifest dictionary {family!r} failed CRC validation",
                    path=str(self.manifest_path))
            self.dictionaries[family] = blob
        return dict(data.get("extra", {}))

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)
