"""Budget-gated partition spilling and the ambient spill session.

When a run's partitioned build/probe sides exceed ``REPRO_MEMORY_BUDGET``
bytes, the Balkesen-lineage pipelines (Cbase, CSH's NM-join) hand their
aligned :class:`~repro.cpu.partition.PartitionedRelation` pairs to the
ambient :class:`SpillSession`, which moves the largest partition *pairs*
to the durable chunk store until the resident columns fit the budget.
The replacement :class:`SpilledPartitionedRelation` duck-types the
in-RAM relation (``fanout`` / ``n`` / ``sizes()`` / ``partition(p)`` /
``partition_hashes(p)``), streaming identical bytes back through
whatever backend dispatch is active — which is why a spilled run is
bit-identical to the in-RAM run on scalar, vector, and parallel alike:
the join tasks never know where their arrays came from.

The session also owns the checkpoint plane: the join phase consults
:meth:`SpillSession.pair_done` to skip pairs a previous (killed) run
already completed, and :meth:`SpillSession.record_pair` durably appends
each newly completed pair to the fsync'd ledger.  Order independence of
the join summary (count + mod-2^64 checksum) is what makes the skip
correct in any completion order.

Recovery ladder at the write boundary (see :mod:`repro.store.chunks`
for rungs 1–2): when a chunk exhausts its write retries, a non-strict
session *degrades* the chunk's partitions back to RAM (recovered
report, ``store.chunks_degraded``); a strict session — or any read-side
exhaustion — raises a typed :class:`~repro.errors.SpillError` carrying
the unrecovered report.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, SpillError
from repro.exec.output import OutputSummary
from repro.faults.plan import STORE_WRITE_POINT
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope
from repro.obs.trace import current_tracer
from repro.store.checkpoint import LEDGER_NAME, CheckpointLedger
from repro.store.chunks import ChunkStore, ChunkWriteExhausted

#: Resident-bytes budget (keys + payloads + hashes of all partitions);
#: unset, empty, or 0 disables spilling.
MEMORY_BUDGET_ENV = "REPRO_MEMORY_BUDGET"

#: Where ``repro run`` spills when ``--spill-dir`` is not given.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

#: Target bytes per on-disk chunk group (columns of several partitions).
SPILL_CHUNK_BYTES_ENV = "REPRO_SPILL_CHUNK_BYTES"
DEFAULT_CHUNK_BYTES = 1 << 20

#: Treat the budget as hard: exhausted chunk writes raise SpillError
#: instead of degrading the chunk back to RAM.
SPILL_STRICT_ENV = "REPRO_SPILL_STRICT"

_COLUMNS = ("keys", "pays", "hash")


def _positive_int_env(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer byte count, got {raw!r}") from None
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    return value or None


def memory_budget_from_env() -> Optional[int]:
    """The ``REPRO_MEMORY_BUDGET`` gate (None = spilling disabled)."""
    return _positive_int_env(MEMORY_BUDGET_ENV)


def _strict_from_env() -> bool:
    return os.environ.get(SPILL_STRICT_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


def _bump(metric: str, value: float = 1.0) -> None:
    current_tracer().metrics.counter(metric).inc(value)


class SpilledPartitionedRelation:
    """A partitioned relation whose largest partitions live on disk.

    Duck-types :class:`~repro.cpu.partition.PartitionedRelation` for the
    join phase.  Resident partitions are compacted into fresh arrays (so
    the original full-size columns can be freed); spilled partitions are
    sliced out of lazily loaded, CRC-validated chunk groups.  A one-slot
    group cache keeps the resident footprint at a single chunk group —
    partition pairs are processed in ascending order, so group loads are
    sequential.
    """

    def __init__(self, store: ChunkStore, fanout: int, n: int,
                 sizes: np.ndarray,
                 kept: Tuple[np.ndarray, np.ndarray, np.ndarray],
                 kept_map: Dict[int, Tuple[int, int]],
                 disk_map: Dict[int, Tuple[int, int, int]],
                 group_chunks: Dict[int, Tuple[str, str, str]]):
        self._store = store
        self.fanout = int(fanout)
        self.n = int(n)
        self._sizes = sizes
        self._kept_keys, self._kept_pays, self._kept_hashes = kept
        self._kept_map = kept_map
        self._disk_map = disk_map
        self._group_chunks = group_chunks
        self._cached_group: Optional[int] = None
        self._cached_arrays: Optional[Tuple[np.ndarray, ...]] = None

    @property
    def spilled_partitions(self) -> int:
        return len(self._disk_map)

    def sizes(self) -> np.ndarray:
        """Per-partition tuple counts (identical to the in-RAM layout)."""
        return self._sizes

    def _group_arrays(self, group: int) -> Tuple[np.ndarray, ...]:
        if self._cached_group != group:
            names = self._group_chunks[group]
            self._cached_arrays = tuple(self._store.read_array(name)
                                        for name in names)
            self._cached_group = group
        return self._cached_arrays

    def _slices(self, p: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        p = int(p)
        if p in self._disk_map:
            group, offset, length = self._disk_map[p]
            keys, pays, hashes = self._group_arrays(group)
            return (keys[offset:offset + length],
                    pays[offset:offset + length],
                    hashes[offset:offset + length])
        offset, length = self._kept_map[p]
        return (self._kept_keys[offset:offset + length],
                self._kept_pays[offset:offset + length],
                self._kept_hashes[offset:offset + length])

    def partition(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of partition ``p`` — RAM or disk, same bytes."""
        keys, pays, _ = self._slices(p)
        return keys, pays

    def partition_hashes(self, p: int) -> np.ndarray:
        """Precomputed hashes of partition ``p``."""
        return self._slices(p)[2]


class SpillSession:
    """One run's spill state: store, budget, ledger, completed pairs."""

    def __init__(self, directory: Union[str, Path],
                 budget_bytes: Optional[int], *,
                 strict: Optional[bool] = None,
                 chunk_bytes: Optional[int] = None,
                 codec: Optional[str] = None,
                 resume: bool = False):
        self.directory = Path(directory)
        self.budget_bytes = (None if budget_bytes in (None, 0)
                             else int(budget_bytes))
        if self.budget_bytes is not None and self.budget_bytes < 0:
            raise ConfigError(
                f"memory budget must be >= 0, got {self.budget_bytes}")
        self.strict = _strict_from_env() if strict is None else bool(strict)
        self.chunk_bytes = int(
            chunk_bytes
            or _positive_int_env(SPILL_CHUNK_BYTES_ENV)
            or DEFAULT_CHUNK_BYTES)
        if self.chunk_bytes <= 0:
            raise ConfigError(
                f"spill chunk bytes must be positive, got {self.chunk_bytes}")
        self.resume = bool(resume)
        self.store = ChunkStore(self.directory, codec=codec)
        self.ledger = CheckpointLedger(self.directory / LEDGER_NAME)
        self.completed: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self.spilled_partitions = 0
        self.degraded_chunks = 0
        self.resumed_pairs = 0
        self.invalid_chunks = 0
        if resume:
            # A crash before the first spill completed legitimately
            # leaves no manifest and/or no ledger — resume from nothing.
            self.store.load_manifest(missing_ok=True)
            self.invalid_chunks = self.store.drop_invalid_chunks()
            if self.ledger.path.exists():
                _header, self.completed = self.ledger.load()
            else:
                self.ledger.write_header({"resume": True})

    # -------------------------------------------------------- checkpoint

    def begin(self, header: Dict) -> None:
        """Start a fresh ledger describing this run (no-op on resume)."""
        if not self.resume:
            self.ledger.write_header(dict(header))

    def pair_done(self, phase: str, p: int) -> Optional[OutputSummary]:
        """The checkpointed summary of a completed pair, if any."""
        entry = self.completed.get((phase, int(p)))
        if entry is None:
            return None
        self.resumed_pairs += 1
        _bump("store.pairs_resumed")
        return OutputSummary(count=entry[0], checksum=entry[1])

    def record_pair(self, phase: str, p: int,
                    summary: OutputSummary) -> None:
        """Durably checkpoint one newly completed pair."""
        self.ledger.append_pair(phase, int(p), summary.count,
                                summary.checksum)
        self.completed[(phase, int(p))] = (summary.count, summary.checksum)

    # ------------------------------------------------------------- spill

    def spill_pair(self, part_r, part_s, label: str):
        """Spill the largest partition pairs until the pair fits the budget.

        Returns aligned relations (possibly the originals, when nothing
        exceeds the budget); always finishes by atomically rewriting the
        manifest — the manifest-backed checkpoint after the partition
        pass.
        """
        if part_r.fanout != part_s.fanout:
            raise SpillError(
                f"fanout mismatch: R has {part_r.fanout}, "
                f"S has {part_s.fanout}")
        spilled_ids = self._select_pairs(part_r, part_s)
        if spilled_ids:
            part_r = self._spill_relation(part_r, spilled_ids,
                                          f"{label}-r")
            part_s = self._spill_relation(part_s, spilled_ids,
                                          f"{label}-s")
            self.spilled_partitions += len(spilled_ids)
            _bump("store.partitions_spilled", float(len(spilled_ids)))
        self.store.write_manifest(extra={"label": label,
                                         "budget_bytes": self.budget_bytes,
                                         "chunk_bytes": self.chunk_bytes})
        return part_r, part_s

    def _select_pairs(self, part_r, part_s) -> List[int]:
        """Largest-first pair ids to spill so resident bytes <= budget.

        The decision depends only on partition sizes (deterministic,
        backend-independent), and is made per *pair* so R[p] and S[p]
        always land on the same side of the RAM/disk boundary.
        """
        if self.budget_bytes is None:
            return []
        r_item = (part_r.keys.itemsize + part_r.payloads.itemsize
                  + part_r.hashes.itemsize)
        s_item = (part_s.keys.itemsize + part_s.payloads.itemsize
                  + part_s.hashes.itemsize)
        pair_bytes = (part_r.sizes().astype(np.int64) * r_item
                      + part_s.sizes().astype(np.int64) * s_item)
        resident = int(pair_bytes.sum())
        if resident <= self.budget_bytes:
            return []
        spilled: List[int] = []
        for p in np.argsort(-pair_bytes, kind="stable"):
            if resident <= self.budget_bytes:
                break
            if pair_bytes[p] == 0:
                break
            spilled.append(int(p))
            resident -= int(pair_bytes[p])
        return sorted(spilled)

    def _spill_relation(self, part, spilled_ids: List[int], tag: str):
        """Move one relation's spilled partitions into chunk groups."""
        sizes = part.sizes()
        item = (part.keys.itemsize + part.payloads.itemsize
                + part.hashes.itemsize)
        disk_ids = [p for p in spilled_ids if sizes[p] > 0]
        groups: List[List[int]] = []
        group_bytes = 0
        for p in disk_ids:
            p_bytes = int(sizes[p]) * item
            if not groups or (group_bytes + p_bytes > self.chunk_bytes
                              and group_bytes > 0):
                groups.append([])
                group_bytes = 0
            groups[-1].append(p)
            group_bytes += p_bytes
        disk_map: Dict[int, Tuple[int, int, int]] = {}
        group_chunks: Dict[int, Tuple[str, str, str]] = {}
        degraded: List[int] = []
        for gi, members in enumerate(groups):
            columns = (
                np.concatenate([part.partition(p)[0] for p in members]),
                np.concatenate([part.partition(p)[1] for p in members]),
                np.concatenate([part.partition_hashes(p) for p in members]),
            )
            names = tuple(f"{tag}-g{gi:04d}-{col}" for col in _COLUMNS)
            if all(self._write_chunk(name, arr)
                   for name, arr in zip(names, columns)):
                group_chunks[gi] = names
                offset = 0
                for p in members:
                    disk_map[p] = (gi, offset, int(sizes[p]))
                    offset += int(sizes[p])
            else:
                degraded.extend(members)
        kept_ids = [p for p in range(part.fanout) if p not in disk_map]
        kept_map: Dict[int, Tuple[int, int]] = {}
        offset = 0
        for p in kept_ids:
            kept_map[p] = (offset, int(sizes[p]))
            offset += int(sizes[p])
        if kept_ids and offset:
            kept = (
                np.concatenate([part.partition(p)[0] for p in kept_ids]),
                np.concatenate([part.partition(p)[1] for p in kept_ids]),
                np.concatenate([part.partition_hashes(p)
                                for p in kept_ids]),
            )
        else:
            kept = (np.empty(0, dtype=part.keys.dtype),
                    np.empty(0, dtype=part.payloads.dtype),
                    np.empty(0, dtype=part.hashes.dtype))
        return SpilledPartitionedRelation(
            store=self.store, fanout=part.fanout, n=part.n,
            sizes=sizes, kept=kept, kept_map=kept_map,
            disk_map=disk_map, group_chunks=group_chunks)

    def _write_chunk(self, name: str, array: np.ndarray) -> bool:
        """Write one chunk through the full recovery ladder.

        Returns False when the chunk degraded to RAM (rung 3); raises a
        typed :class:`~repro.errors.SpillError` in strict mode (rung 4).
        """
        try:
            self.store.write_array(name, array)
            return True
        except ChunkWriteExhausted as exc:
            scope = current_fault_scope()
            if self.strict:
                report = scope.record(FailureReport(
                    kind=exc.kind, point=STORE_WRITE_POINT,
                    algorithm=scope.algorithm, phase=current_phase_name(),
                    action="abort", recovered=False, injected=exc.injected,
                    retries=exc.retries,
                    backoff_seconds=exc.backoff_seconds,
                    error=exc.error, context={"chunk": name}))
                raise SpillError(
                    f"chunk {name} unwritable after {exc.retries - 1} "
                    f"retries under a strict budget: {exc.error}",
                    report=report, chunk=name) from exc
            scope.record(FailureReport(
                kind=exc.kind, point=STORE_WRITE_POINT,
                algorithm=scope.algorithm, phase=current_phase_name(),
                action="degrade:ram", recovered=True,
                injected=exc.injected, retries=exc.retries,
                backoff_seconds=exc.backoff_seconds,
                error=exc.error, context={"chunk": name}))
            self.degraded_chunks += 1
            _bump("store.chunks_degraded")
            return False

    # ------------------------------------------------------------- after

    def annotate(self, result) -> None:
        """Stamp the session's spill facts into ``result.meta``.

        These keys are environment-dependent (whether and how a run
        spilled), so the differential comparator excludes them the same
        way it excludes the backend tag.
        """
        result.meta["spilled_partitions"] = self.spilled_partitions
        result.meta["spill_chunks"] = len(self.store.chunks)
        if self.degraded_chunks:
            result.meta["spill_degraded"] = self.degraded_chunks
        if self.resume:
            result.meta["resumed_pairs"] = self.resumed_pairs
            if self.invalid_chunks:
                result.meta["spill_invalid_chunks"] = self.invalid_chunks


_ACTIVE_SESSION: ContextVar[Optional[SpillSession]] = ContextVar(
    "repro_active_spill_session", default=None)


def current_spill_session() -> Optional[SpillSession]:
    """The ambient spill session, or None (spilling disabled)."""
    return _ACTIVE_SESSION.get()


@contextmanager
def spill_session(session: Optional[SpillSession]) -> Iterator[
        Optional[SpillSession]]:
    """Install a session (or None) ambiently for the block."""
    token = _ACTIVE_SESSION.set(session)
    try:
        yield session
    finally:
        _ACTIVE_SESSION.reset(token)


@contextmanager
def open_spill_session(
    directory: Optional[Union[str, Path]] = None,
    budget_bytes: Optional[int] = None,
    *,
    strict: Optional[bool] = None,
    chunk_bytes: Optional[int] = None,
    codec: Optional[str] = None,
    header: Optional[Dict] = None,
) -> Iterator[Optional[SpillSession]]:
    """Open, install, and (for anonymous temp dirs) clean up a session.

    The gate: with no explicit ``budget_bytes`` and no
    ``REPRO_MEMORY_BUDGET`` in the environment, yields None and the run
    stays fully in RAM.  With a budget but no directory, spills into
    ``$REPRO_SPILL_DIR`` or an ephemeral temp directory.
    """
    if budget_bytes is None:
        budget_bytes = memory_budget_from_env()
    if budget_bytes is None and directory is None:
        yield None
        return
    tmp = None
    if directory is None:
        directory = os.environ.get(SPILL_DIR_ENV, "") or None
    if directory is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-spill-")
        directory = tmp.name
    session = None
    try:
        session = SpillSession(directory, budget_bytes, strict=strict,
                               chunk_bytes=chunk_bytes, codec=codec)
        session.begin(dict(header or {}))
        with spill_session(session):
            yield session
    finally:
        if session is not None:
            # Deterministically release raw-codec mappings (and their
            # file descriptors) instead of waiting for GC — the fd
            # lifecycle contract long serve/resume runs rely on.
            session.store.close()
        if tmp is not None:
            tmp.cleanup()
