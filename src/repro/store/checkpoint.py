"""Fsync'd append-only checkpoint ledger for resumable joins.

One JSONL file per spill directory: a header line describing the run,
then one line per *completed* partition pair ``{phase, p, count,
checksum}``.  Every line carries its own CRC32 over the canonical
payload and is flushed + fsynced before the driver moves on, so the
ledger can be trusted after a SIGKILL: a crash mid-append leaves at most
one torn trailing line, which the tolerant loader discards with a
``RuntimeWarning`` (the pair simply re-runs on resume — re-running a
completed pair is always safe because the join summary is
order-independent and the resume path never double-folds).

``REPRO_SPILL_KILL_AFTER`` is the chaos harness's kill switch: when set
to ``k``, the process SIGKILLs itself immediately after the ``k``-th
successfully fsynced pair append — the seeded crash points behind
``repro chaos --spill``.
"""

from __future__ import annotations

import json
import os
import signal
import warnings
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import SpillError

LEDGER_NAME = "checkpoint.jsonl"
LEDGER_VERSION = 1

#: Chaos kill switch: SIGKILL the process after this many pair appends.
KILL_AFTER_ENV = "REPRO_SPILL_KILL_AFTER"


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _line(payload: Dict) -> str:
    body = _canonical(payload)
    return _canonical({"crc": zlib.crc32(body.encode("utf-8")),
                       "payload": payload}) + "\n"


def _parse_line(raw: str) -> Optional[Dict]:
    """Decode one ledger line; None when torn or integrity-damaged."""
    try:
        record = json.loads(raw)
        payload = record["payload"]
        crc = int(record["crc"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None
    if zlib.crc32(_canonical(payload).encode("utf-8")) != crc:
        return None
    return payload


class CheckpointLedger:
    """The append-only pair-completion log of one spill directory."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.appended = 0
        raw = os.environ.get(KILL_AFTER_ENV, "")
        try:
            self._kill_after = int(raw) if raw else 0
        except ValueError:
            raise SpillError(
                f"{KILL_AFTER_ENV} must be an integer, got {raw!r}") from None

    # ------------------------------------------------------------ writes

    def write_header(self, header: Dict) -> None:
        """Start a fresh ledger (truncates) with one fsynced header line."""
        payload = dict(header)
        payload["type"] = "header"
        payload["ledger_version"] = LEDGER_VERSION
        self._append(_line(payload), mode="w")

    def append_pair(self, phase: str, p: int, count: int,
                    checksum: int) -> None:
        """Durably record one completed partition pair."""
        self._append(_line({"type": "pair", "phase": phase, "p": int(p),
                            "count": int(count), "checksum": int(checksum)}))
        self.appended += 1
        if self._kill_after and self.appended >= self._kill_after:
            os.kill(os.getpid(), signal.SIGKILL)  # chaos: die mid-run

    def _append(self, line: str, mode: str = "a") -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, mode, encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------- loads

    def load(self) -> Tuple[Dict, Dict[Tuple[str, int], Tuple[int, int]]]:
        """Tolerantly read the ledger back.

        Returns ``(header, completed)`` where ``completed`` maps
        ``(phase, p)`` to the pair's ``(count, checksum)``.  The first
        torn or CRC-damaged line ends the useful tail: it and anything
        after it are discarded with a :class:`RuntimeWarning`, because a
        line after a torn one cannot have been fsynced in order.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise SpillError(
                f"no checkpoint ledger at {self.path}; nothing to resume",
                path=str(self.path)) from None
        except OSError as exc:
            raise SpillError(
                f"checkpoint ledger {self.path} unreadable: {exc}",
                path=str(self.path)) from exc
        header: Optional[Dict] = None
        completed: Dict[Tuple[str, int], Tuple[int, int]] = {}
        lines = text.split("\n")
        for index, raw in enumerate(lines):
            if raw == "":
                continue
            torn_tail = index == len(lines) - 1  # no trailing newline
            payload = None if torn_tail else _parse_line(raw)
            if payload is None:
                dropped = sum(1 for rest in lines[index:] if rest != "")
                warnings.warn(
                    f"checkpoint ledger {self.path} has a torn or "
                    f"corrupted line at index {index}; discarding "
                    f"{dropped} trailing line(s) (affected pairs will "
                    "re-run)", RuntimeWarning, stacklevel=2)
                break
            if payload.get("type") == "header":
                if payload.get("ledger_version") != LEDGER_VERSION:
                    raise SpillError(
                        f"checkpoint ledger {self.path} has version "
                        f"{payload.get('ledger_version')!r}, this build "
                        f"reads {LEDGER_VERSION}", path=str(self.path))
                header = payload
            elif payload.get("type") == "pair":
                completed[(str(payload["phase"]), int(payload["p"]))] = (
                    int(payload["count"]), int(payload["checksum"]))
        if header is None:
            raise SpillError(
                f"checkpoint ledger {self.path} has no intact header",
                path=str(self.path))
        return header, completed
