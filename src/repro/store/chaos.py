"""Disk-fault and crash-recovery chaos: the ``repro chaos --spill`` harness.

Drives the full recovery ladder of the out-of-core spill plane, per
spill-capable algorithm (Cbase, CSH) on the ambient backend:

* **clean spill** — a budget-forced spilled run is bit-identical to the
  in-RAM baseline, with balanced traces and consistent fault counters;
* **seeded disk faults** — every disk fault kind (``torn-write``,
  ``enospc``, ``corrupt-chunk``, ``io-slow``) injected once from a
  seeded plan recovers exactly (same answer, >= 1 injected report);
* **ladder exhaustion** — a persistent write fault degrades the chunk
  back to RAM under a soft budget (recovered report, same answer) and
  raises a typed :class:`~repro.errors.SpillError` under ``--strict``;
  a persistent read fault is always a typed error, never a wrong array;
* **SIGKILL sweep** — a subprocess run is killed dead (``SIGKILL``, no
  atexit, no flush) after the k-th fsynced checkpoint for several k;
  ``resume_run`` must finish each corpse bit-identically, skipping the
  checkpointed pairs;
* **torn ledger tail / on-disk rot** — garbage appended to the ledger
  is discarded with a warning; a chunk file corrupted behind the
  manifest's back is dropped by resume revalidation and re-spilled.

Every scenario ends in exactly one of two states: a bit-identical
``JoinResult`` or a typed error carrying a ``FailureReport`` — silent
corruption fails the sweep.  Exit status 0 means every check passed.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path
from typing import Optional

from repro.errors import ReproError, SpillError
from repro.exec.backend import current_backend
from repro.faults.plan import (
    CORRUPT_CHUNK,
    DISK_FAULT_KINDS,
    ENOSPC,
    SPILL_ALGORITHM_NAMES,
    TORN_WRITE,
    FaultPlan,
    FaultSpec,
    injection_point,
    seeded_spill_plan,
)
from repro.faults.report import verify_result_faults
from repro.faults.scope import activate_plan
from repro.obs import verify_result_trace
from repro.serve.smoke import SmokeChecks
from repro.store.checkpoint import KILL_AFTER_ENV, LEDGER_NAME
from repro.store.chunks import MANIFEST_NAME, _CHUNK_SUFFIX
from repro.store.resume import RUN_STATE_NAME, resume_run, write_run_state
from repro.store.spill import open_spill_session

#: How many checkpointed pairs each subprocess completes before SIGKILL.
KILL_POINTS = (1, 2)

#: Retries far beyond the policy budget: the spec keeps firing until the
#: ladder exhausts, which is the point of the exhaustion scenarios.
_EXHAUST_REPEAT = 99


class SpillChecks(SmokeChecks):
    """The spill-chaos pass/fail ledger."""

    label = "spill chaos"


def _result_ok(checks: SpillChecks, name: str, baseline, result,
               require_injected: bool = False) -> None:
    """The recovered-run contract: identical answer, balanced books."""
    checks.record(f"{name}: bit-identical",
                  baseline.matches(result),
                  f"got ({result.output_count}, "
                  f"{result.output_checksum:#x}), want "
                  f"({baseline.output_count}, "
                  f"{baseline.output_checksum:#x})")
    if require_injected:
        injected = sum(1 for r in result.faults if r.injected)
        checks.record(f"{name}: injected report present", injected >= 1,
                      f"{injected} injected report(s)")
    trace_issue = verify_result_trace(result)
    checks.record(f"{name}: trace balanced", trace_issue is None,
                  str(trace_issue))
    fault_issue = verify_result_faults(result)
    checks.record(f"{name}: fault counters consistent", fault_issue is None,
                  str(fault_issue))


def _typed_error(checks: SpillChecks, name: str, run) -> None:
    """The typed-failure contract: SpillError carrying its report."""
    try:
        run()
    except SpillError as exc:
        checks.record(f"{name}: typed SpillError", True)
        checks.record(f"{name}: error carries report",
                      getattr(exc, "report", None) is not None)
    except ReproError as exc:  # pragma: no cover - wrong type is a failure
        checks.record(f"{name}: typed SpillError", False,
                      f"got {type(exc).__name__} instead")
    else:
        checks.record(f"{name}: typed SpillError", False,
                      "run succeeded where a typed error was required")


def _kind_plan(algorithm: str, kind: str, occurrence: int = 1,
               repeat: int = 1) -> FaultPlan:
    return FaultPlan((FaultSpec(kind=kind,
                                point=injection_point(algorithm, kind),
                                occurrence=occurrence, repeat=repeat,
                                algorithm=algorithm),),
                     name=f"spill-{kind}")


def _spawn_killed_run(directory: Path, kill_after: int) -> int:
    """Run ``resume_run`` in a subprocess that SIGKILLs itself mid-join."""
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src_root), env.get("PYTHONPATH", "")) if p)
    env[KILL_AFTER_ENV] = str(kill_after)
    code = ("import warnings; warnings.simplefilter('ignore');"
            "from repro.store import resume_run;"
            f"resume_run({str(directory)!r})")
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, timeout=300)
    return proc.returncode


def _chaos_one_algorithm(checks: SpillChecks, algorithm: str, join_input,
                         budget: int, chunk_bytes: int, seed: int,
                         artifact_dir: Optional[Path]) -> None:
    from repro.api import make_join

    baseline = make_join(algorithm).run(join_input)

    # ---- clean spilled run: the budget must actually engage the store.
    with tempfile.TemporaryDirectory(prefix="repro-chaos-spill-") as d:
        with open_spill_session(d, budget_bytes=budget,
                                chunk_bytes=chunk_bytes) as session:
            result = make_join(algorithm).run(join_input)
        checks.record(f"{algorithm}/clean: partitions spilled",
                      session.spilled_partitions > 0,
                      f"{session.spilled_partitions} spilled under a "
                      f"{budget}-byte budget")
    _result_ok(checks, f"{algorithm}/clean", baseline, result)

    # ---- each disk fault kind from the seeded plan, one at a time.
    plan = seeded_spill_plan(seed, algorithms=(algorithm,))
    for spec in plan.specs:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-spill-") as d:
            with activate_plan(FaultPlan((spec,), name=plan.name)):
                with open_spill_session(d, budget_bytes=budget,
                                        chunk_bytes=chunk_bytes):
                    result = make_join(algorithm).run(join_input)
        _result_ok(checks, f"{algorithm}/{spec.kind}", baseline, result,
                   require_injected=True)

    # ---- write-ladder exhaustion: degrade to RAM under a soft budget...
    for kind in (TORN_WRITE, ENOSPC):
        with tempfile.TemporaryDirectory(prefix="repro-chaos-spill-") as d:
            with activate_plan(_kind_plan(algorithm, kind,
                                          repeat=_EXHAUST_REPEAT)):
                with open_spill_session(d, budget_bytes=budget,
                                        chunk_bytes=chunk_bytes):
                    result = make_join(algorithm).run(join_input)
        _result_ok(checks, f"{algorithm}/{kind}-exhausted", baseline,
                   result, require_injected=True)
        checks.record(f"{algorithm}/{kind}-exhausted: degraded to RAM",
                      result.meta.get("spill_degraded", 0) > 0,
                      f"meta {result.meta.get('spill_degraded')!r}")

    # ---- ...and a typed error when the budget is strict.
    def strict_run():
        with tempfile.TemporaryDirectory(prefix="repro-chaos-spill-") as d:
            with activate_plan(_kind_plan(algorithm, TORN_WRITE,
                                          repeat=_EXHAUST_REPEAT)):
                with open_spill_session(d, budget_bytes=budget,
                                        chunk_bytes=chunk_bytes,
                                        strict=True):
                    make_join(algorithm).run(join_input)

    _typed_error(checks, f"{algorithm}/torn-write-strict", strict_run)

    # ---- read-ladder exhaustion is terminal regardless of strictness.
    def rot_run():
        with tempfile.TemporaryDirectory(prefix="repro-chaos-spill-") as d:
            with activate_plan(_kind_plan(algorithm, CORRUPT_CHUNK,
                                          repeat=_EXHAUST_REPEAT)):
                with open_spill_session(d, budget_bytes=budget,
                                        chunk_bytes=chunk_bytes):
                    make_join(algorithm).run(join_input)

    _typed_error(checks, f"{algorithm}/corrupt-chunk-exhausted", rot_run)

    # ---- SIGKILL sweep: crash after the k-th fsynced checkpoint, resume.
    n_r = int(join_input.r.keys.size)
    for kill_after in KILL_POINTS:
        d = Path(tempfile.mkdtemp(prefix="repro-chaos-kill-"))
        try:
            write_run_state(d, {
                "algorithm": algorithm, "backend": current_backend(),
                "budget_bytes": budget, "strict": False,
                "chunk_bytes": chunk_bytes, "codec": "raw",
                "workload": {"kind": "zipf", "n_r": n_r, "n_s": n_r,
                             "theta": 1.0, "seed": seed},
            })
            rc = _spawn_killed_run(d, kill_after)
            checks.record(
                f"{algorithm}/kill@{kill_after}: died by SIGKILL",
                rc == -signal.SIGKILL,
                f"subprocess exited {rc} (0 would mean the kill point "
                "was never reached)")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = resume_run(d)
            _result_ok(checks, f"{algorithm}/kill@{kill_after}-resume",
                       baseline, result)
            checks.record(
                f"{algorithm}/kill@{kill_after}-resume: pairs skipped",
                result.meta.get("resumed_pairs", 0) >= kill_after,
                f"resumed_pairs {result.meta.get('resumed_pairs')!r}")

            if kill_after == KILL_POINTS[0]:
                # ---- on-disk rot across the crash: corrupt one chunk
                # behind the manifest's back; resume must revalidate,
                # drop it, and re-spill — never trust the bad bytes.
                chunk_files = sorted(d.glob(f"*{_CHUNK_SUFFIX}"))
                if checks.record(
                        f"{algorithm}/rot-resume: chunk file present",
                        bool(chunk_files),
                        f"no *{_CHUNK_SUFFIX} files in {d}"):
                    blob = bytearray(chunk_files[0].read_bytes())
                    blob[0] ^= 0xFF
                    chunk_files[0].write_bytes(bytes(blob))
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", RuntimeWarning)
                        result = resume_run(d)
                    _result_ok(checks, f"{algorithm}/rot-resume",
                               baseline, result)
                    checks.record(
                        f"{algorithm}/rot-resume: bad chunk dropped",
                        result.meta.get("spill_invalid_chunks", 0) >= 1,
                        f"meta {result.meta.get('spill_invalid_chunks')!r}")

                # ---- torn ledger tail: garbage after the fsynced lines
                # is discarded with a warning, never parsed as data.
                with open(d / LEDGER_NAME, "a", encoding="utf-8") as fh:
                    fh.write('{"crc": 0, "payload": {"type": "pair"')
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    result = resume_run(d)
                checks.record(
                    f"{algorithm}/torn-tail-resume: warned",
                    any(issubclass(w.category, RuntimeWarning)
                        for w in caught),
                    "no RuntimeWarning for the torn ledger line")
                _result_ok(checks, f"{algorithm}/torn-tail-resume",
                           baseline, result)

            if artifact_dir is not None:
                dest = artifact_dir / f"{algorithm}-kill{kill_after}"
                dest.mkdir(parents=True, exist_ok=True)
                for name in (MANIFEST_NAME, LEDGER_NAME, RUN_STATE_NAME):
                    src = d / name
                    if src.exists():
                        shutil.copy2(src, dest / name)
        finally:
            shutil.rmtree(d, ignore_errors=True)


def run_spill_chaos(n: int = 8192, theta: float = 1.0, seed: int = 42,
                    algorithms=SPILL_ALGORITHM_NAMES,
                    artifact_dir: Optional[str] = None) -> int:
    """Run the full spill-chaos sweep; returns the process exit code."""
    from repro.data.zipf import ZipfWorkload

    checks = SpillChecks()
    join_input = ZipfWorkload(n, n, theta, seed=seed).generate()
    budget = max(12 * 2 * n // 4, 1)
    chunk_bytes = max(budget // 2, 4096)
    out_dir = Path(artifact_dir) if artifact_dir else None
    for algorithm in algorithms:
        _chaos_one_algorithm(checks, algorithm, join_input, budget,
                             chunk_bytes, seed, out_dir)
    print(checks.render())
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "backend": current_backend(),
            "n_tuples": n, "theta": theta, "seed": seed,
            "kill_points": list(KILL_POINTS),
            "disk_fault_kinds": list(DISK_FAULT_KINDS),
            "ok": checks.ok,
            "checks": [{"name": name, "ok": ok, "detail": detail}
                       for name, ok, detail in checks.checks],
        }
        path = out_dir / "spill-chaos-checks.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        print(f"\nspill chaos artifacts written to {out_dir}")
    return 0 if checks.ok else 1
