"""Crash-safe out-of-core spill plane.

``repro.store`` is the durable substrate under the out-of-core join
path: a chunked on-disk column store with per-chunk checksums and an
fsync'd manifest (:mod:`repro.store.chunks`), an append-only fsync'd
checkpoint ledger with tolerant torn-tail loads
(:mod:`repro.store.checkpoint`), the ``REPRO_MEMORY_BUDGET``-gated
partition spiller and its ambient session
(:mod:`repro.store.spill`), the ``repro run --resume`` driver
(:mod:`repro.store.resume`), and the kill-and-resume chaos harness
behind ``repro chaos --spill`` (:mod:`repro.store.chaos`).
"""

from repro.store.chunks import ChunkInfo, ChunkStore, resolve_codec
from repro.store.checkpoint import CheckpointLedger
from repro.store.spill import (
    DEFAULT_CHUNK_BYTES,
    MEMORY_BUDGET_ENV,
    SPILL_CHUNK_BYTES_ENV,
    SPILL_DIR_ENV,
    SpilledPartitionedRelation,
    SpillSession,
    current_spill_session,
    memory_budget_from_env,
    open_spill_session,
)
from repro.store.resume import load_run_state, resume_run, write_run_state

__all__ = [
    "ChunkInfo",
    "ChunkStore",
    "CheckpointLedger",
    "DEFAULT_CHUNK_BYTES",
    "MEMORY_BUDGET_ENV",
    "SPILL_CHUNK_BYTES_ENV",
    "SPILL_DIR_ENV",
    "SpillSession",
    "SpilledPartitionedRelation",
    "current_spill_session",
    "load_run_state",
    "memory_budget_from_env",
    "open_spill_session",
    "resolve_codec",
    "resume_run",
    "write_run_state",
]
