"""Crash-safe out-of-core spill plane and streaming relation store.

``repro.store`` is the durable substrate under the out-of-core join
path: a chunked on-disk column store with per-chunk checksums and an
fsync'd manifest (:mod:`repro.store.chunks`), the mmap-backed relation
format whose columns page in lazily through an LRU segment cache
(:mod:`repro.store.relations`), an append-only fsync'd checkpoint
ledger with tolerant torn-tail loads (:mod:`repro.store.checkpoint`),
the ``REPRO_MEMORY_BUDGET``-gated partition spiller and its ambient
session (:mod:`repro.store.spill`), the ``repro run --resume`` driver
(:mod:`repro.store.resume`), and the kill-and-resume chaos harness
behind ``repro chaos --spill`` (:mod:`repro.store.chaos`).
"""

from repro.store.chunks import (
    CODEC_ENV,
    CODECS,
    ChunkInfo,
    ChunkStore,
    resolve_codec,
)
from repro.store.checkpoint import CheckpointLedger
from repro.store.relations import (
    PAGE_CACHE_ENV,
    STREAM_CHUNK_ENV,
    MappedRelation,
    RelationStreamWriter,
    SegmentedColumn,
    dataset_bytes,
    open_join_input,
    open_relation_store,
    resolve_page_cache_segments,
    resolve_stream_chunk_tuples,
)
from repro.store.spill import (
    DEFAULT_CHUNK_BYTES,
    MEMORY_BUDGET_ENV,
    SPILL_CHUNK_BYTES_ENV,
    SPILL_DIR_ENV,
    SpilledPartitionedRelation,
    SpillSession,
    current_spill_session,
    memory_budget_from_env,
    open_spill_session,
)
from repro.store.resume import load_run_state, resume_run, write_run_state

__all__ = [
    "CODEC_ENV",
    "CODECS",
    "ChunkInfo",
    "ChunkStore",
    "CheckpointLedger",
    "DEFAULT_CHUNK_BYTES",
    "MEMORY_BUDGET_ENV",
    "MappedRelation",
    "PAGE_CACHE_ENV",
    "RelationStreamWriter",
    "SPILL_CHUNK_BYTES_ENV",
    "SPILL_DIR_ENV",
    "STREAM_CHUNK_ENV",
    "SegmentedColumn",
    "SpillSession",
    "SpilledPartitionedRelation",
    "current_spill_session",
    "dataset_bytes",
    "load_run_state",
    "memory_budget_from_env",
    "open_join_input",
    "open_relation_store",
    "open_spill_session",
    "resolve_codec",
    "resolve_page_cache_segments",
    "resolve_stream_chunk_tuples",
    "resume_run",
    "write_run_state",
]
