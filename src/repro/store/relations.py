"""On-disk relations: chunked column files behind a lazy paging view.

The out-of-core ingest path stores each relation as a sequence of CRC'd
column chunks (reusing :class:`~repro.store.chunks.ChunkStore`, so the
torn-write/corruption recovery ladder and the ``zlib``/``zstd`` codecs
apply unchanged) plus a manifest describing which chunks make up which
column of which relation.

Three layers live here:

* :class:`RelationStreamWriter` — the producer side.  Generators append
  column values chunk-by-chunk; nothing requires the full column in
  memory.  The first chunk of each column family trains that family's
  compression dictionary (:meth:`ChunkStore.ensure_dictionary`).
* :class:`SegmentedColumn` — a lazy column.  Slicing pages in only the
  covered segments; under the ``raw`` codec a within-segment slice is a
  zero-copy ``np.memmap`` view.  A tiny LRU keeps the working set of
  decoded segments bounded, which is what keeps peak RSS under
  ``REPRO_MEMORY_BUDGET`` for datasets larger than the budget.
* :class:`MappedRelation` — duck-types :class:`~repro.data.relation.Relation`
  (``len`` / ``name`` / ``nbytes`` / ``keys`` / ``payloads``) so every
  pipeline accepts it unmodified.  Algorithms that must touch the whole
  column still can (the property materializes once and caches);
  streaming-aware consumers call :meth:`MappedRelation.morsel` and never
  fault in more than a few segments at a time.

Knobs:

* ``REPRO_STREAM_CHUNK_TUPLES`` — tuples per column chunk when writing
  (default ``1 << 18``; 1 MiB of raw ``uint32`` per chunk).
* ``REPRO_PAGE_CACHE_SEGMENTS`` — decoded segments kept per column when
  reading (default 4).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, SpillError
from repro.store.chunks import ChunkStore, _bump
from repro.types import TUPLE_BYTES

STREAM_CHUNK_ENV = "REPRO_STREAM_CHUNK_TUPLES"
DEFAULT_STREAM_CHUNK_TUPLES = 1 << 18
PAGE_CACHE_ENV = "REPRO_PAGE_CACHE_SEGMENTS"
DEFAULT_PAGE_CACHE_SEGMENTS = 4
RELATION_FORMAT = "relations"
RELATION_FORMAT_VERSION = 1


def resolve_stream_chunk_tuples(value: Optional[int] = None) -> int:
    """Tuples per streamed column chunk (arg > env > default)."""
    if value is None:
        raw = os.environ.get(STREAM_CHUNK_ENV)
        if raw is None:
            return DEFAULT_STREAM_CHUNK_TUPLES
        try:
            value = int(raw)
        except ValueError:
            raise ConfigError(
                f"{STREAM_CHUNK_ENV} must be a positive integer, got "
                f"{raw!r}", var=STREAM_CHUNK_ENV, value=raw) from None
    if value <= 0:
        raise ConfigError(
            f"stream chunk size must be positive, got {value}",
            var=STREAM_CHUNK_ENV, value=value)
    return int(value)


def resolve_page_cache_segments(value: Optional[int] = None) -> int:
    """Decoded segments kept resident per column (arg > env > default)."""
    if value is None:
        raw = os.environ.get(PAGE_CACHE_ENV)
        if raw is None:
            return DEFAULT_PAGE_CACHE_SEGMENTS
        try:
            value = int(raw)
        except ValueError:
            raise ConfigError(
                f"{PAGE_CACHE_ENV} must be a positive integer, got "
                f"{raw!r}", var=PAGE_CACHE_ENV, value=raw) from None
    if value <= 0:
        raise ConfigError(
            f"page cache must keep at least one segment, got {value}",
            var=PAGE_CACHE_ENV, value=value)
    return int(value)


def column_family(relation: str, column: str) -> str:
    return f"{relation}-{column}"


def _chunk_name(relation: str, column: str, index: int) -> str:
    return f"{relation}-{column}-c{index:05d}"


# ---------------------------------------------------------------- writer


class ColumnStreamWriter:
    """Appends one column's values as chunks; tracks its manifest entry."""

    def __init__(self, store: ChunkStore, relation: str, column: str,
                 dtype: np.dtype):
        self._store = store
        self._relation = relation
        self._column = column
        self.dtype = np.dtype(dtype)
        self.chunk_names: List[str] = []
        self.n = 0
        self._family: Optional[str] = None
        self._started = False

    def append(self, values: np.ndarray) -> None:
        arr = np.ascontiguousarray(values, dtype=self.dtype)
        if arr.ndim != 1:
            raise SpillError(
                f"column {self._relation}.{self._column} expects 1-D "
                f"chunks, got shape {arr.shape}")
        if arr.size == 0:
            return
        if not self._started:
            self._started = True
            self._family = self._store.ensure_dictionary(
                column_family(self._relation, self._column), arr.tobytes())
        name = _chunk_name(self._relation, self._column,
                           len(self.chunk_names))
        self._store.write_array(name, arr, dict_family=self._family)
        self.chunk_names.append(name)
        self.n += int(arr.size)

    def descriptor(self) -> Dict:
        return {"dtype": str(self.dtype), "n": self.n,
                "chunks": list(self.chunk_names)}


class RelationStreamWriter:
    """Streams relations into a chunk store, column chunks at a time.

    Usage::

        writer = RelationStreamWriter(directory, codec="zlib")
        keys = writer.column("r", "R", "keys", KEY_DTYPE)
        for chunk in generated_chunks:
            keys.append(chunk)
        ...
        writer.finish(meta={"generator": "zipf", ...})

    ``finish`` validates that every relation carries equal-length
    ``keys``/``payloads`` columns, writes the manifest (atomic replace,
    carrying any trained dictionaries), and closes the store.
    """

    def __init__(self, directory: Union[str, Path],
                 codec: Optional[str] = None):
        self.store = ChunkStore(directory, codec=codec)
        #: role ("r"/"s") -> {"name": ..., "columns": {col: writer}}
        self._relations: "OrderedDict[str, Dict]" = OrderedDict()

    def column(self, role: str, name: str, column: str,
               dtype: np.dtype) -> ColumnStreamWriter:
        entry = self._relations.setdefault(
            role, {"name": name, "columns": OrderedDict()})
        if entry["name"] != name:
            raise SpillError(
                f"relation role {role!r} already registered as "
                f"{entry['name']!r}, not {name!r}")
        cols = entry["columns"]
        if column not in cols:
            cols[column] = ColumnStreamWriter(self.store, name, column, dtype)
        return cols[column]

    def finish(self, meta: Optional[Dict] = None) -> Path:
        relations = {}
        for role, entry in self._relations.items():
            cols = entry["columns"]
            missing = {"keys", "payloads"} - set(cols)
            if missing:
                raise SpillError(
                    f"relation {entry['name']!r} is missing columns "
                    f"{sorted(missing)}")
            lengths = {col: w.n for col, w in cols.items()}
            if len(set(lengths.values())) != 1:
                raise SpillError(
                    f"relation {entry['name']!r} has unequal column "
                    f"lengths: {lengths}")
            relations[role] = {
                "name": entry["name"],
                "n": lengths["keys"],
                "columns": {col: w.descriptor() for col, w in cols.items()},
            }
        extra = {
            "format": RELATION_FORMAT,
            "format_version": RELATION_FORMAT_VERSION,
            "relations": relations,
            "meta": dict(meta or {}),
        }
        path = self.store.write_manifest(extra)
        self.store.close()
        return path


# ---------------------------------------------------------------- reader


class SegmentedColumn:
    """A column paged in segment-by-segment from a chunk store.

    Indexing with a step-1 slice loads only the covered segments; a
    slice inside one raw-codec segment is a zero-copy view of the
    underlying file mapping.  ``np.asarray(col)`` (the ``__array__``
    protocol) materializes the full column — lazy consumers should use
    :meth:`gather` / :meth:`iter_segments` instead.
    """

    def __init__(self, store: ChunkStore, chunk_names: List[str],
                 cache_segments: Optional[int] = None):
        self._store = store
        self._names = list(chunk_names)
        infos = []
        for name in self._names:
            info = store.chunks.get(name)
            if info is None:
                raise SpillError(
                    f"relation manifest references unknown chunk {name!r}",
                    chunk=name)
            infos.append(info)
        if not infos:
            raise SpillError("segmented column has no chunks")
        dtypes = {info.dtype for info in infos}
        if len(dtypes) != 1:
            raise SpillError(
                f"segmented column mixes dtypes {sorted(dtypes)}")
        self.dtype = np.dtype(infos[0].dtype)
        self._offsets = np.zeros(len(infos) + 1, dtype=np.int64)
        np.cumsum([info.length for info in infos], out=self._offsets[1:])
        self._n = int(self._offsets[-1])
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._cache_segments = resolve_page_cache_segments(cache_segments)
        self.segment_loads = 0
        self.cache_hits = 0
        self.materializations = 0

    def __len__(self) -> int:
        return self._n

    @property
    def n_segments(self) -> int:
        return len(self._names)

    @property
    def nbytes(self) -> int:
        return self._n * self.dtype.itemsize

    def segment_bounds(self, index: int) -> Tuple[int, int]:
        return int(self._offsets[index]), int(self._offsets[index + 1])

    def segment(self, index: int) -> np.ndarray:
        """One decoded segment (LRU-cached, read-only)."""
        if index in self._cache:
            self._cache.move_to_end(index)
            self.cache_hits += 1
            return self._cache[index]
        arr = self._store.read_array(self._names[index])
        self.segment_loads += 1
        self._cache[index] = arr
        while len(self._cache) > self._cache_segments:
            self._cache.popitem(last=False)
        return arr

    def iter_segments(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, values)`` per segment, in order."""
        for i in range(len(self._names)):
            a, b = self.segment_bounds(i)
            yield a, b, self.segment(i)

    def gather(self, start: int, stop: int) -> np.ndarray:
        """Values in ``[start, stop)``, paging in only covered segments."""
        start = max(0, min(int(start), self._n))
        stop = max(start, min(int(stop), self._n))
        if start == stop:
            return np.empty(0, dtype=self.dtype)
        first = int(np.searchsorted(self._offsets, start, side="right")) - 1
        last = int(np.searchsorted(self._offsets, stop, side="left")) - 1
        if first == last:
            a, _ = self.segment_bounds(first)
            return self.segment(first)[start - a:stop - a]
        pieces = []
        for i in range(first, last + 1):
            a, b = self.segment_bounds(i)
            pieces.append(self.segment(i)[max(start, a) - a:
                                          min(stop, b) - a])
        return np.concatenate(pieces)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._n)
            if step != 1:
                return self.materialize()[index]
            return self.gather(start, stop)
        if isinstance(index, (int, np.integer)):
            i = int(index)
            if i < 0:
                i += self._n
            if not 0 <= i < self._n:
                raise IndexError(
                    f"index {index} out of range for column of {self._n}")
            seg = int(np.searchsorted(self._offsets, i, side="right")) - 1
            a, _ = self.segment_bounds(seg)
            return self.segment(seg)[i - a]
        return self.materialize()[index]

    def materialize(self) -> np.ndarray:
        """The full column as one read-only in-memory array."""
        self.materializations += 1
        _bump("store.column_materializations")
        out = np.empty(self._n, dtype=self.dtype)
        for a, b, values in self.iter_segments():
            out[a:b] = values
        out.flags.writeable = False
        return out

    def __array__(self, dtype=None, copy=None):
        arr = self.materialize()
        if dtype is not None and np.dtype(dtype) != arr.dtype:
            arr = arr.astype(dtype)
        return arr


class MappedRelation:
    """A relation view that pages its columns in lazily.

    Duck-types :class:`~repro.data.relation.Relation` for every consumer
    in the repo: ``len()``, ``.name``, ``.nbytes``, ``.keys`` and
    ``.payloads`` all work, the columns materializing (once, cached) on
    first touch.  Streaming-aware code checks ``is_lazy`` and walks
    :meth:`morsel` / :meth:`iter_morsels` instead, keeping residency at
    a few segments per column.
    """

    is_lazy = True

    def __init__(self, name: str, keys: SegmentedColumn,
                 payloads: SegmentedColumn):
        if len(keys) != len(payloads):
            raise SpillError(
                f"relation {name!r}: {len(keys)} keys vs "
                f"{len(payloads)} payloads")
        self.name = name
        self._keys_col = keys
        self._payloads_col = payloads
        self._keys_cache: Optional[np.ndarray] = None
        self._payloads_cache: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._keys_col)

    @property
    def nbytes(self) -> int:
        return len(self) * TUPLE_BYTES

    @property
    def keys(self) -> np.ndarray:
        if self._keys_cache is None:
            self._keys_cache = self._keys_col.materialize()
        return self._keys_cache

    @property
    def payloads(self) -> np.ndarray:
        if self._payloads_cache is None:
            self._payloads_cache = self._payloads_col.materialize()
        return self._payloads_cache

    @property
    def keys_column(self) -> SegmentedColumn:
        return self._keys_col

    @property
    def payloads_column(self) -> SegmentedColumn:
        return self._payloads_col

    def morsel(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, payloads)`` for ``[start, stop)`` without full paging."""
        if self._keys_cache is not None and self._payloads_cache is not None:
            return (self._keys_cache[start:stop],
                    self._payloads_cache[start:stop])
        return (self._keys_col.gather(start, stop),
                self._payloads_col.gather(start, stop))

    def iter_morsels(self) -> Iterator[Tuple[int, int, np.ndarray,
                                             np.ndarray]]:
        """Yield ``(start, stop, keys, payloads)`` at segment granularity.

        Bounds follow the key column's segments; payload values are
        gathered to the same bounds (the stream writer chunks both
        columns identically, so this stays one segment per column).
        """
        for a, b, keys in self._keys_col.iter_segments():
            yield a, b, keys, self._payloads_col.gather(a, b)

    def to_relation(self):
        """Materialize into a real in-memory :class:`Relation`."""
        from repro.data.relation import Relation
        return Relation(np.array(self.keys), np.array(self.payloads),
                        name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MappedRelation(name={self.name!r}, n={len(self)}, "
                f"segments={self._keys_col.n_segments})")


# ----------------------------------------------------------------- open


def open_relation_store(directory: Union[str, Path],
                        ) -> Tuple[ChunkStore, Dict]:
    """Open a relation-format store; returns ``(store, manifest extra)``.

    The codec recorded in the manifest governs decoding — callers never
    pass one.  Raises a typed :class:`SpillError` when the directory's
    manifest is not the relation format (e.g. a spill store).
    """
    store = ChunkStore(directory, codec="raw")
    try:
        extra = store.load_manifest()
    except SpillError:
        store.close()
        raise
    if extra.get("format") != RELATION_FORMAT:
        store.close()
        raise SpillError(
            f"{Path(directory)} holds {extra.get('format')!r}, not a "
            f"{RELATION_FORMAT!r} manifest", path=str(directory))
    version = extra.get("format_version")
    if version != RELATION_FORMAT_VERSION:
        store.close()
        raise SpillError(
            f"relation manifest version {version!r} unsupported (this "
            f"build reads {RELATION_FORMAT_VERSION})", path=str(directory))
    return store, extra


def open_join_input(directory: Union[str, Path],
                    cache_segments: Optional[int] = None):
    """Open a stored join input lazily.

    Returns ``(join_input, store)`` where the input's relations are
    :class:`MappedRelation` views over ``store``.  The caller owns the
    store handle and should ``close()`` it (or use it as a context
    manager) once the join is done.
    """
    from repro.data.relation import JoinInput

    store, extra = open_relation_store(directory)
    relations = {}
    for role in ("r", "s"):
        desc = extra.get("relations", {}).get(role)
        if desc is None:
            store.close()
            raise SpillError(
                f"relation manifest at {Path(directory)} has no "
                f"{role!r} relation", path=str(directory))
        columns = desc.get("columns", {})
        try:
            keys = SegmentedColumn(store, columns["keys"]["chunks"],
                                   cache_segments)
            payloads = SegmentedColumn(store, columns["payloads"]["chunks"],
                                       cache_segments)
        except (KeyError, SpillError) as exc:
            store.close()
            if isinstance(exc, SpillError):
                raise
            raise SpillError(
                f"relation {desc.get('name')!r} manifest is missing "
                f"column descriptors: {exc}", path=str(directory)) from exc
        relations[role] = MappedRelation(desc["name"], keys, payloads)
    return (JoinInput(r=relations["r"], s=relations["s"],
                      meta=dict(extra.get("meta", {}))), store)


def dataset_bytes(directory: Union[str, Path]) -> int:
    """Raw (uncompressed) size of the stored join input, in bytes."""
    store, extra = open_relation_store(directory)
    try:
        return sum(int(desc.get("n", 0)) * TUPLE_BYTES
                   for desc in extra.get("relations", {}).values())
    finally:
        store.close()
