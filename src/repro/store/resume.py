"""Checkpoint/resume driver: re-run a killed spilled join to completion.

``repro run --spill-dir DIR --memory-budget N`` first writes a small
``run.json`` into the spill directory describing everything needed to
reconstruct the run (algorithm, backend, workload recipe, budget).
After a crash — SIGKILL, power loss, OOM kill — ``repro run --resume
DIR`` rebuilds the exact run from that state file:

1. revalidate every chunk against the manifest CRCs and drop the ones
   that no longer check out (they get re-spilled, not trusted);
2. tolerantly load the checkpoint ledger, discarding any torn tail;
3. re-run the pipeline with a resume :class:`~repro.store.spill
   .SpillSession` installed — the partition pass is recomputed
   (deterministic), still-valid chunks are reused without rewriting,
   and every pair already in the ledger is skipped, its durable
   ``(count, checksum)`` folded straight into the join summary.

Because the join summary is an order-independent (count, mod-2^64
checksum) pair and the partition pass is bit-deterministic, the resumed
``JoinResult`` matches an uninterrupted run exactly — the property
``repro chaos --spill`` kill-sweeps assert.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from repro.errors import SpillError
from repro.store.spill import SpillSession, spill_session

RUN_STATE_NAME = "run.json"
RUN_STATE_VERSION = 1


def write_run_state(directory: Union[str, Path], state: Dict) -> Path:
    """Durably record the run recipe (atomic temp + fsync + rename)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    payload["state_version"] = RUN_STATE_VERSION
    path = directory / RUN_STATE_NAME
    tmp = path.with_suffix(".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, (json.dumps(payload, indent=2, sort_keys=True)
                      + "\n").encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    return path


def load_run_state(directory: Union[str, Path]) -> Dict:
    """Read a spill directory's run recipe back (typed errors throughout)."""
    path = Path(directory) / RUN_STATE_NAME
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SpillError(
            f"no run state at {path}; was this directory written by "
            "'repro run --spill-dir'?", path=str(path)) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise SpillError(f"run state {path} unreadable: {exc}",
                         path=str(path)) from exc
    version = state.get("state_version")
    if version != RUN_STATE_VERSION:
        raise SpillError(
            f"run state {path} has version {version!r}, this build reads "
            f"{RUN_STATE_VERSION}", path=str(path), found_version=version)
    for key in ("algorithm", "backend", "workload"):
        if key not in state:
            raise SpillError(f"run state {path} is missing {key!r}",
                             path=str(path))
    return state


def _rebuild_input(state: Dict):
    """Reconstruct the exact JoinInput the interrupted run was joining."""
    workload = state["workload"]
    kind = workload.get("kind")
    if kind == "zipf":
        from repro.data.zipf import ZipfWorkload

        return ZipfWorkload(int(workload["n_r"]), int(workload["n_s"]),
                            float(workload["theta"]),
                            seed=int(workload["seed"])).generate()
    if kind == "file":
        from repro.data.io import load_join_input

        return load_join_input(workload["path"])
    raise SpillError(f"run state has unknown workload kind {kind!r}",
                     kind=kind)


def resume_run(directory: Union[str, Path]):
    """Finish an interrupted spilled join; returns its ``JoinResult``.

    Safe to call on a directory whose run actually completed — every
    pair folds from the ledger and no join work re-runs.
    """
    from repro.api import make_join
    from repro.exec.backend import use_backend

    directory = Path(directory)
    state = load_run_state(directory)
    join_input = _rebuild_input(state)
    session = SpillSession(
        directory,
        state.get("budget_bytes"),
        strict=bool(state.get("strict", False)),
        chunk_bytes=state.get("chunk_bytes"),
        codec=state.get("codec"),
        resume=True,
    )
    with use_backend(str(state["backend"])):
        with spill_session(session):
            result = make_join(str(state["algorithm"])).run(join_input)
    return result
