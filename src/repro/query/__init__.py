"""Vectorized volcano query layer.

The consumer side of the paper's experimental setup: operators that
process join output batch by batch — scans, filters, projections, a
(skew-aware) hash join, aggregation, and top-k.
"""

from repro.query.aggregate import (
    AGG_FUNCTIONS,
    GroupByAggregate,
    ScalarAggregate,
    TopK,
)
from repro.query.batch import Batch
from repro.query.hash_join import HashJoin
from repro.query.operators import (
    DEFAULT_BATCH_SIZE,
    Filter,
    Limit,
    Materialize,
    Operator,
    Project,
    TableScan,
)

__all__ = [
    "Batch",
    "Operator",
    "TableScan",
    "Filter",
    "Project",
    "Limit",
    "Materialize",
    "HashJoin",
    "GroupByAggregate",
    "ScalarAggregate",
    "TopK",
    "AGG_FUNCTIONS",
    "DEFAULT_BATCH_SIZE",
]
