"""Core volcano operators: scan, filter, project, limit, materialize.

Operators are iterables of :class:`repro.query.batch.Batch`; composing
them builds a vectorized volcano pipeline.  Each operator documents its
output schema so plans can be checked before execution.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.data.relation import Relation
from repro.errors import ConfigError
from repro.query.batch import Batch

#: Default tuples per batch.
DEFAULT_BATCH_SIZE = 65536


class Operator:
    """Base class: an iterable of batches with a declared schema."""

    def schema(self) -> List[str]:
        """Output column names."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Batch]:
        raise NotImplementedError

    def collect(self) -> Batch:
        """Execute the pipeline and concatenate all output batches."""
        batches = list(self)
        if not batches:
            return Batch.empty(self.schema())
        return Batch.concat(batches)


class TableScan(Operator):
    """Emit a set of columns in fixed-size batches."""

    def __init__(self, columns: Dict[str, np.ndarray],
                 batch_size: int = DEFAULT_BATCH_SIZE):
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        self._table = Batch(dict(columns))
        self._batch_size = batch_size

    @staticmethod
    def from_relation(rel: Relation, key_name: str = "key",
                      payload_name: str = "payload",
                      batch_size: int = DEFAULT_BATCH_SIZE) -> "TableScan":
        """Build from a relation's key column."""
        return TableScan({key_name: rel.keys, payload_name: rel.payloads},
                         batch_size=batch_size)

    def schema(self) -> List[str]:
        """Output column names."""
        return self._table.schema

    def __iter__(self) -> Iterator[Batch]:
        n = len(self._table)
        for start in range(0, n, self._batch_size):
            yield Batch({
                name: col[start:start + self._batch_size]
                for name, col in self._table.columns.items()
            })


class Filter(Operator):
    """Keep rows where ``predicate(batch) -> bool mask`` holds."""

    def __init__(self, child: Operator,
                 predicate: Callable[[Batch], np.ndarray]):
        self._child = child
        self._predicate = predicate

    def schema(self) -> List[str]:
        """Output column names."""
        return self._child.schema()

    def __iter__(self) -> Iterator[Batch]:
        for batch in self._child:
            mask = np.asarray(self._predicate(batch), dtype=bool)
            filtered = batch.filter(mask)
            if len(filtered):
                yield filtered


class Project(Operator):
    """Select, rename, and/or compute columns.

    ``columns`` maps output name -> input name (str) or a callable
    ``batch -> ndarray``.
    """

    def __init__(self, child: Operator, columns: Dict[str, object]):
        self._child = child
        self._columns = dict(columns)

    def schema(self) -> List[str]:
        """Output column names."""
        return list(self._columns)

    def __iter__(self) -> Iterator[Batch]:
        for batch in self._child:
            out = {}
            for name, spec in self._columns.items():
                if callable(spec):
                    out[name] = np.asarray(spec(batch))
                else:
                    out[name] = batch.column(spec)
            yield Batch(out)


class Limit(Operator):
    """Stop after emitting ``n`` rows."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise ConfigError("limit must be non-negative")
        self._child = child
        self._n = n

    def schema(self) -> List[str]:
        """Output column names."""
        return self._child.schema()

    def __iter__(self) -> Iterator[Batch]:
        remaining = self._n
        for batch in self._child:
            if remaining <= 0:
                return
            if len(batch) <= remaining:
                remaining -= len(batch)
                yield batch
            else:
                yield Batch({name: col[:remaining]
                             for name, col in batch.columns.items()})
                return


class Materialize(Operator):
    """Buffer a child's full output and replay it (pipeline breaker)."""

    def __init__(self, child: Operator):
        self._child = child
        self._buffered: Optional[Batch] = None

    def schema(self) -> List[str]:
        """Output column names."""
        return self._child.schema()

    def _ensure(self) -> Batch:
        if self._buffered is None:
            self._buffered = self._child.collect()
        return self._buffered

    def __iter__(self) -> Iterator[Batch]:
        buffered = self._ensure()
        if len(buffered):
            yield buffered
