"""The query layer's hash-join operator.

A vectorized volcano join: the build side is materialized into a sorted
key index, and each probe batch is expanded into matching row pairs.  With
``skew_aware=True`` the operator detects heavy build keys by sampling
(CSH's recipe: sample + frequency threshold) and emits their cartesian
expansions through a dedicated chunked path, so a single hot key cannot
blow up an output batch — the operator-level rendition of handling skewed
and normal keys in separate routines.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.csh.detector import detect_skewed_keys
from repro.errors import ConfigError
from repro.query.batch import Batch
from repro.query.operators import DEFAULT_BATCH_SIZE, Operator
from repro.types import SeedLike


class HashJoin(Operator):
    """Equi-join of two operators on one key column each.

    Output columns are the probe (left) columns followed by the build
    (right) columns; name collisions get a ``build_`` prefix.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        skew_aware: bool = False,
        sample_rate: float = 0.01,
        freq_threshold: int = 2,
        max_output_batch: int = DEFAULT_BATCH_SIZE,
        seed: SeedLike = 0,
    ):
        if max_output_batch <= 0:
            raise ConfigError("max_output_batch must be positive")
        if left_key not in left.schema():
            raise ConfigError(f"left operator has no column {left_key!r}")
        if right_key not in right.schema():
            raise ConfigError(f"right operator has no column {right_key!r}")
        self._left = left
        self._right = right
        self._left_key = left_key
        self._right_key = right_key
        self._skew_aware = skew_aware
        self._sample_rate = sample_rate
        self._freq_threshold = freq_threshold
        self._max_output = max_output_batch
        self._seed = seed
        self._out_names = self._output_names()

    def _output_names(self) -> Dict[str, Tuple[str, str]]:
        """output name -> (side, source column)."""
        out: Dict[str, Tuple[str, str]] = {}
        for name in self._left.schema():
            out[name] = ("left", name)
        for name in self._right.schema():
            target = name if name not in out else f"build_{name}"
            if target in out:
                raise ConfigError(f"cannot disambiguate column {name!r}")
            out[target] = ("right", name)
        return out

    def schema(self) -> List[str]:
        """Output column names."""
        return list(self._out_names)

    def __iter__(self) -> Iterator[Batch]:
        build = self._right.collect()
        build_keys = build.column(self._right_key).astype(np.uint32)
        order = np.argsort(build_keys, kind="stable")
        sorted_keys = build_keys[order]
        group_keys, group_start = np.unique(sorted_keys, return_index=True)
        group_count = np.diff(np.append(group_start, sorted_keys.size))

        skewed: Optional[np.ndarray] = None
        if self._skew_aware and build_keys.size:
            detection = detect_skewed_keys(
                build_keys, sample_rate=self._sample_rate,
                freq_threshold=self._freq_threshold, seed=self._seed)
            skewed = detection.skewed_keys

        for batch in self._left:
            probe_keys = batch.column(self._left_key).astype(np.uint32)
            if skewed is not None and skewed.size:
                hot = np.isin(probe_keys, skewed)
                if hot.any():
                    yield from self._emit(batch.filter(hot), build, order,
                                          group_keys, group_start,
                                          group_count)
                    batch = batch.filter(~hot)
                    if len(batch) == 0:
                        continue
            yield from self._emit(batch, build, order, group_keys,
                                  group_start, group_count)

    def _emit(self, batch: Batch, build: Batch, order, group_keys,
              group_start, group_count) -> Iterator[Batch]:
        """Expand one probe batch into output batches of bounded size."""
        probe_keys = batch.column(self._left_key).astype(np.uint32)
        n = probe_keys.size
        if n == 0 or group_keys.size == 0:
            return
        pos = np.searchsorted(group_keys, probe_keys)
        pos = np.minimum(pos, group_keys.size - 1)
        hit = group_keys[pos] == probe_keys
        cnt = np.where(hit, group_count[pos], 0)
        start = np.where(hit, group_start[pos], 0)
        boundaries = self._chunk_boundaries(cnt)
        for a, b in zip(boundaries[:-1], boundaries[1:]):
            total = int(cnt[a:b].sum())
            if total == 0:
                continue
            probe_rep = np.repeat(np.arange(a, b), cnt[a:b])
            run_origin = np.repeat(np.cumsum(cnt[a:b]) - cnt[a:b], cnt[a:b])
            within = np.arange(total) - run_origin
            build_sorted_idx = np.repeat(start[a:b], cnt[a:b]) + within
            build_idx = order[build_sorted_idx]
            columns = {}
            for out_name, (side, src) in self._out_names.items():
                if side == "left":
                    columns[out_name] = batch.column(src)[probe_rep]
                else:
                    columns[out_name] = build.column(src)[build_idx]
            yield Batch(columns)

    def _chunk_boundaries(self, cnt: np.ndarray) -> np.ndarray:
        """Split probe rows so chunks expand to ~<= max_output rows.

        Rows are grouped by which ``max_output``-sized window of the
        cumulative expansion they end in, so a single row with a huge
        match count forms (at least) its own chunk.
        """
        if cnt.size == 0:
            return np.asarray([0, 0])
        cum = np.cumsum(cnt.astype(np.int64))
        window = (cum - 1) // self._max_output
        change = np.flatnonzero(np.diff(window)) + 1
        return np.unique(np.concatenate([[0], change, [cnt.size]]))
