"""Column batches: the unit of data flow in the query layer.

The paper's experimental setup models "volcano-style query processing
[where] the join output is often consumed by an upper level query
operator" (Section III).  The query layer realizes that consumer side: a
vectorized volcano engine whose operators exchange :class:`Batch` values —
dictionaries of equal-length numpy columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass
class Batch:
    """A set of equal-length named columns."""

    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self):
        lengths = {name: np.asarray(col).shape for name, col
                   in self.columns.items()}
        self.columns = {name: np.asarray(col) for name, col
                        in self.columns.items()}
        sizes = {col.shape[0] for col in self.columns.values()}
        if len(sizes) > 1:
            raise ConfigError(f"ragged batch: column lengths {lengths}")
        for name, col in self.columns.items():
            if col.ndim != 1:
                raise ConfigError(f"column {name!r} must be 1-D")

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    @property
    def schema(self) -> List[str]:
        """Output column names."""
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """One column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise ConfigError(
                f"no column {name!r}; batch has {self.schema}") from None

    def select(self, names: Sequence[str]) -> "Batch":
        """A batch with only the named columns."""
        return Batch({name: self.column(name) for name in names})

    def filter(self, mask: np.ndarray) -> "Batch":
        """Rows where the mask holds."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self):
            raise ConfigError("mask length mismatch")
        return Batch({name: col[mask] for name, col in self.columns.items()})

    def with_column(self, name: str, values: np.ndarray) -> "Batch":
        """A batch with one column added or replaced."""
        out = dict(self.columns)
        out[name] = np.asarray(values)
        return Batch(out)

    def rename(self, mapping: Dict[str, str]) -> "Batch":
        """A batch with columns renamed per the mapping."""
        return Batch({mapping.get(name, name): col
                      for name, col in self.columns.items()})

    @staticmethod
    def empty(schema: Sequence[str]) -> "Batch":
        """An empty instance."""
        return Batch({name: np.empty(0, dtype=np.uint32) for name in schema})

    @staticmethod
    def concat(batches: Iterable["Batch"]) -> "Batch":
        """Concatenate same-schema batches."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return Batch({})
        schema = batches[0].schema
        for b in batches:
            if b.schema != schema:
                raise ConfigError(
                    f"schema mismatch in concat: {b.schema} vs {schema}")
        return Batch({
            name: np.concatenate([b.columns[name] for b in batches])
            for name in schema
        })

    def to_rows(self) -> List[tuple]:
        """Materialize as python tuples (tests and tiny results only)."""
        names = self.schema
        return list(zip(*(self.columns[n].tolist() for n in names)))
