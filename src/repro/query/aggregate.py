"""Aggregation operators: group-by and scalar aggregates.

The canonical "upper level query operator" consuming join output in the
paper's volcano setup.  Aggregation is streaming: each input batch folds
into the running state, so the full join output is never buffered —
matching the overwritten-output-buffer discipline of the experiments.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.query.batch import Batch
from repro.query.operators import Operator

#: Supported aggregate functions.
AGG_FUNCTIONS = ("count", "sum", "min", "max")


class GroupByAggregate(Operator):
    """Group rows by one column and compute aggregates per group.

    ``aggs`` maps output column name to ``(function, input column)``;
    ``("count", None)`` counts rows.  Emits one batch with the group keys
    plus one column per aggregate.
    """

    def __init__(self, child: Operator, key: str,
                 aggs: Dict[str, Tuple[str, str]]):
        if key not in child.schema():
            raise ConfigError(f"child has no column {key!r}")
        for name, (fn, col) in aggs.items():
            if fn not in AGG_FUNCTIONS:
                raise ConfigError(f"unknown aggregate {fn!r} for {name!r}")
            if fn != "count" and col not in child.schema():
                raise ConfigError(f"child has no column {col!r}")
        self._child = child
        self._key = key
        self._aggs = dict(aggs)

    def schema(self) -> List[str]:
        """Output column names."""
        return [self._key, *self._aggs]

    def __iter__(self) -> Iterator[Batch]:
        state_keys = np.empty(0, dtype=np.uint64)
        state: Dict[str, np.ndarray] = {name: np.empty(0, dtype=np.int64)
                                        for name in self._aggs}
        for batch in self._child:
            keys = batch.column(self._key).astype(np.uint64)
            uniq, inv = np.unique(keys, return_inverse=True)
            partial: Dict[str, np.ndarray] = {}
            for name, (fn, col) in self._aggs.items():
                partial[name] = _reduce(fn, col, batch, uniq.size, inv)
            state_keys, state = _merge(state_keys, state, uniq, partial,
                                       self._aggs)
        if state_keys.size == 0:
            yield Batch.empty(self.schema())
            return
        out = {self._key: state_keys}
        out.update(state)
        yield Batch(out)


class ScalarAggregate(Operator):
    """Whole-input aggregates: one output row."""

    def __init__(self, child: Operator, aggs: Dict[str, Tuple[str, str]]):
        for name, (fn, col) in aggs.items():
            if fn not in AGG_FUNCTIONS:
                raise ConfigError(f"unknown aggregate {fn!r} for {name!r}")
            if fn != "count" and col not in child.schema():
                raise ConfigError(f"child has no column {col!r}")
        self._child = child
        self._aggs = dict(aggs)

    def schema(self) -> List[str]:
        """Output column names."""
        return list(self._aggs)

    def __iter__(self) -> Iterator[Batch]:
        totals: Dict[str, int] = {}
        for batch in self._child:
            for name, (fn, col) in self._aggs.items():
                value = _scalar_reduce(fn, col, batch)
                if value is None:
                    continue
                if name not in totals:
                    totals[name] = value
                elif fn in ("count", "sum"):
                    totals[name] += value
                elif fn == "min":
                    totals[name] = min(totals[name], value)
                else:
                    totals[name] = max(totals[name], value)
        yield Batch({name: np.asarray([totals.get(name, 0)], dtype=np.int64)
                     for name in self._aggs})


class TopK(Operator):
    """Keep the k rows with the largest (or smallest) value of a column."""

    def __init__(self, child: Operator, by: str, k: int,
                 descending: bool = True):
        if k < 0:
            raise ConfigError("k must be non-negative")
        if by not in child.schema():
            raise ConfigError(f"child has no column {by!r}")
        self._child = child
        self._by = by
        self._k = k
        self._descending = descending

    def schema(self) -> List[str]:
        """Output column names."""
        return self._child.schema()

    def __iter__(self) -> Iterator[Batch]:
        buffered = self._child.collect()
        if len(buffered) == 0:
            yield buffered
            return
        values = buffered.column(self._by)
        order = np.argsort(values, kind="stable")
        if self._descending:
            order = order[::-1]
        order = order[:self._k]
        yield Batch({name: col[order]
                     for name, col in buffered.columns.items()})


def _reduce(fn: str, col: str, batch: Batch, n_groups: int,
            inv: np.ndarray) -> np.ndarray:
    if fn == "count":
        return np.bincount(inv, minlength=n_groups).astype(np.int64)
    values = batch.column(col).astype(np.int64)
    if fn == "sum":
        out = np.zeros(n_groups, dtype=np.int64)
        np.add.at(out, inv, values)
        return out
    if fn == "min":
        out = np.full(n_groups, np.iinfo(np.int64).max)
        np.minimum.at(out, inv, values)
        return out
    out = np.full(n_groups, np.iinfo(np.int64).min)
    np.maximum.at(out, inv, values)
    return out


def _scalar_reduce(fn: str, col: str, batch: Batch):
    if fn == "count":
        return len(batch)
    if len(batch) == 0:
        return None
    values = batch.column(col).astype(np.int64)
    if fn == "sum":
        return int(values.sum())
    if fn == "min":
        return int(values.min())
    return int(values.max())


def _merge(state_keys, state, new_keys, partial, aggs):
    """Merge per-batch partial aggregates into the running state."""
    merged_keys = np.union1d(state_keys, new_keys)
    pos_old = np.searchsorted(merged_keys, state_keys)
    pos_new = np.searchsorted(merged_keys, new_keys)
    merged: Dict[str, np.ndarray] = {}
    for name, (fn, _col) in aggs.items():
        if fn in ("count", "sum"):
            out = np.zeros(merged_keys.size, dtype=np.int64)
            out[pos_old] += state[name]
            np.add.at(out, pos_new, partial[name])
        elif fn == "min":
            out = np.full(merged_keys.size, np.iinfo(np.int64).max)
            np.minimum.at(out, pos_old, state[name])
            np.minimum.at(out, pos_new, partial[name])
        else:
            out = np.full(merged_keys.size, np.iinfo(np.int64).min)
            np.maximum.at(out, pos_old, state[name])
            np.maximum.at(out, pos_new, partial[name])
        merged[name] = out
    return merged_keys, merged
