"""Analytic (histogram-driven) executors for paper-scale experiments.

Every join algorithm in this library decomposes into tasks/blocks whose
operation counts are functions of the per-key frequencies of R and S.  The
executors here recompute those counts — and the schedules that turn them
into simulated seconds — directly from a key histogram, without ever
materializing the tuples.  That is what makes the paper's 32 M-tuple
(Figures 1 and 4, Table I) and 560 M-tuple (Section V-B) configurations
tractable on a laptop-class machine.

Exactness contract (tested in ``tests/analysis/test_analytic.py``):

* CPU pipelines (Cbase, CSH given the detected key set): per-phase counters
  and simulated seconds are *bit-identical* to the executed pipelines on
  the same histogram, because every executed counter is a deterministic
  function of per-(partition, key) frequencies.
* cbase-npj and CSH's S-side thread split: totals are exact; the per-thread
  division depends on the (random) tuple order, so analytic assumes an even
  spread — seconds agree to within a few percent.
* GPU pipelines: partition and skew-join kernels are exact; the NM-join's
  lockstep/divergence terms depend on the tuple order inside partitions,
  so analytic uses the expected-value model (iid probe order), accurate to
  ~tens of percent and unbiased for the useful-work terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.csh.pipeline import CSHConfig
from repro.core.gsh.pipeline import GSHConfig
from repro.cpu.hashing import bits_for, bucket_ids, hash_keys, next_pow2, radix_bits
from repro.cpu.no_partition_join import NoPartitionConfig, NoPartitionJoin
from repro.cpu.partition import _scan_counters
from repro.cpu.radix_join import CbaseConfig
from repro.cpu.segments import split_segments
from repro.cpu.threads import ThreadPool
from repro.data.relation import JoinInput
from repro.data.zipf import ZipfWorkload, zipf_rank_counts_approx
from repro.errors import WorkloadError
from repro.exec.counters import OpCounters
from repro.exec.result import JoinResult, PhaseResult
from repro.gpu.gbase.pipeline import GbaseConfig
from repro.gpu.kernel import BlockWork, uniform_grid
from repro.gpu.partitioning import (
    PARTITION_TUPLES_PER_BLOCK,
    gbase_partition_cost,
    gsh_partition_cost,
)
from repro.gpu.simulator import GPUSimulator, cost_model_for
from repro.types import SeedLike, make_rng


@dataclass
class AnalyticWorkload:
    """Distinct join keys with their R and S frequencies."""

    keys: np.ndarray
    cr: np.ndarray
    cs: np.ndarray
    label: str = ""

    def __post_init__(self):
        self.keys = np.asarray(self.keys, dtype=np.uint32)
        self.cr = np.asarray(self.cr, dtype=np.int64)
        self.cs = np.asarray(self.cs, dtype=np.int64)
        if not (self.keys.size == self.cr.size == self.cs.size):
            raise WorkloadError("keys/cr/cs must have equal length")
        if np.unique(self.keys).size != self.keys.size:
            raise WorkloadError("keys must be distinct")
        keep = (self.cr > 0) | (self.cs > 0)
        if not np.all(keep):
            self.keys = self.keys[keep]
            self.cr = self.cr[keep]
            self.cs = self.cs[keep]

    @property
    def n_r(self) -> int:
        """Total R tuples."""
        return int(self.cr.sum())

    @property
    def n_s(self) -> int:
        """Total S tuples."""
        return int(self.cs.sum())

    def output_count(self) -> int:
        """Exact equi-join cardinality."""
        return int(np.sum(self.cr.astype(object) * self.cs.astype(object)))

    @staticmethod
    def from_join_input(join_input: JoinInput,
                        label: str = "") -> "AnalyticWorkload":
        """Histogram of a materialized input (for validation tests)."""
        keys = np.union1d(np.unique(join_input.r.keys),
                          np.unique(join_input.s.keys))
        pos_r = np.searchsorted(keys, join_input.r.keys)
        pos_s = np.searchsorted(keys, join_input.s.keys)
        cr = np.bincount(pos_r, minlength=keys.size)
        cs = np.bincount(pos_s, minlength=keys.size)
        return AnalyticWorkload(keys, cr, cs, label=label)

    @staticmethod
    def from_zipf(
        n_r: int,
        n_s: int,
        theta: float,
        n_keys: Optional[int] = None,
        seed: SeedLike = 0,
        max_distinct: int = 1 << 25,
    ) -> "AnalyticWorkload":
        """Zipf workload histogram at any scale.

        Up to ``max_distinct`` candidate keys the histogram is drawn with
        the paper's exact interval-array procedure; above it (the 560 M
        scale-up) the key domain is capped at ``max_distinct`` and counts
        come from the head-exact/tail-expected approximation — skew
        behaviour lives entirely in the head, so the capped domain
        preserves every skew-dependent quantity while fitting in memory.
        """
        if n_keys is None:
            n_keys = max(n_r, n_s, 1)
        if n_keys <= max_distinct:
            wl = ZipfWorkload(n_r, n_s, theta, n_keys=n_keys, seed=seed)
            cr = wl.sample_rank_counts(n_r)
            cs = wl.sample_rank_counts(n_s)
            keys = wl._key_of_rank
        else:
            rng = make_rng(seed)
            cr = zipf_rank_counts_approx(n_r, max_distinct, theta,
                                         seed=rng, exact_head=1 << 20)
            cs = zipf_rank_counts_approx(n_s, max_distinct, theta,
                                         seed=rng, exact_head=1 << 20)
            keys = rng.permutation(max_distinct).astype(np.uint32)
        return AnalyticWorkload(keys, cr, cs,
                                label=f"zipf(theta={theta}, n={n_r})")


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------


@dataclass
class _Partitioned:
    """Per-partition grouping of the workload's distinct keys."""

    order: np.ndarray     # key indices sorted by partition id
    offsets: np.ndarray   # fanout + 1 boundaries into `order`
    r_sizes: np.ndarray   # tuples per partition, R side
    s_sizes: np.ndarray   # tuples per partition, S side

    @property
    def fanout(self) -> int:
        """Number of partitions."""
        return int(self.offsets.size - 1)

    def key_slice(self, p: int) -> np.ndarray:
        """Key indices belonging to partition ``p``."""
        return self.order[self.offsets[p]:self.offsets[p + 1]]


def _group_by_partition(pid: np.ndarray, fanout: int, cr: np.ndarray,
                        cs: np.ndarray) -> _Partitioned:
    order = np.argsort(pid, kind="stable")
    counts = np.bincount(pid, minlength=fanout)
    offsets = np.zeros(fanout + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    r_sizes = np.bincount(pid, weights=cr, minlength=fanout).astype(np.int64)
    s_sizes = np.bincount(pid, weights=cs, minlength=fanout).astype(np.int64)
    return _Partitioned(order=order, offsets=offsets,
                        r_sizes=r_sizes, s_sizes=s_sizes)


def _static_pass_counters(n: int, n_threads: int) -> List[OpCounters]:
    return [_scan_counters(b - a) for a, b in split_segments(n, n_threads)]


def _probe_totals(hashes: np.ndarray, crp: np.ndarray, csp: np.ndarray,
                  bucket_bits: int) -> Tuple[int, int]:
    """(chain steps, output tuples) of probing S against R's chained table."""
    if crp.size == 0:
        return 0, 0
    b = bucket_ids(hashes, bucket_bits)
    blen = np.bincount(b, weights=crp.astype(np.float64),
                       minlength=1 << bucket_bits)
    steps = int(round(float(np.sum(csp * blen[b]))))
    outputs = int(np.sum(crp * csp))
    return steps, outputs


def _cbase_join_task(hashes, crp, csp) -> OpCounters:
    """Counters of one CPU join task, identical to join_one_pair."""
    n_r = int(crp.sum())
    n_s = int(csp.sum())
    counters = OpCounters()
    if n_r == 0 or n_s == 0:
        return counters
    bucket_bits = bits_for(next_pow2(max(n_r, 1)))
    counters.hash_ops += n_r
    counters.table_inserts += n_r
    counters.bytes_read += 8 * n_r
    counters.bytes_written += 12 * n_r
    steps, outputs = _probe_totals(hashes, crp, csp, bucket_bits)
    counters.hash_ops += n_s
    counters.seq_tuple_reads += n_s
    counters.bytes_read += 8 * n_s
    counters.chain_steps += steps
    counters.key_compares += steps
    counters.output_tuples += outputs
    counters.bytes_written += 8 * outputs
    return counters


def _analytic_result(algorithm: str, wl: AnalyticWorkload,
                     phases: List[PhaseResult],
                     output_count: int, **meta) -> JoinResult:
    result = JoinResult(
        algorithm=algorithm, n_r=wl.n_r, n_s=wl.n_s,
        output_count=output_count, output_checksum=0,
        phases=phases,
        meta={"analytic": True, **meta},
    )
    return result


# ---------------------------------------------------------------------------
# Cbase
# ---------------------------------------------------------------------------


def analytic_cbase(wl: AnalyticWorkload,
                   config: CbaseConfig = CbaseConfig()) -> JoinResult:
    """Paper-scale Cbase: exact counters and schedule from the histogram."""
    pool = ThreadPool(config.n_threads, config.cost_model)
    bits1, bits2 = config.resolve_bits(max(wl.n_r, wl.n_s))
    hashes = hash_keys(wl.keys)
    p1 = radix_bits(hashes, 0, bits1)
    pid = (p1 << bits2) | radix_bits(hashes, bits1, bits2)
    fanout = 1 << (bits1 + bits2)

    seconds = 0.0
    counters = OpCounters()
    details: Dict[str, float] = {}
    for n, weights in ((wl.n_r, wl.cr), (wl.n_s, wl.cs)):
        per_thread = _static_pass_counters(n, config.n_threads)
        seconds += pool.static_phase_seconds(per_thread)
        counters += OpCounters.sum(per_thread)
        if bits2 > 0:
            sizes1 = np.bincount(p1, weights=weights.astype(float),
                                 minlength=1 << bits1).astype(np.int64)
            tasks = [_scan_counters(int(m)) for m in sizes1]
            seconds += pool.queue_phase_seconds(tasks).makespan
            counters += OpCounters.sum(tasks)

    grouped = _group_by_partition(pid, fanout, wl.cr, wl.cs)
    # Oversized-partition splitting (decided on final R sizes).
    if config.split_bits > 0:
        avg = max(wl.n_r / max(fanout, 1), 1.0)
        split_mask = grouped.r_sizes > config.split_factor * avg
        if np.any(split_mask):
            sub = radix_bits(hashes, bits1 + bits2, config.split_bits)
            pid = np.where(split_mask[pid],
                           pid * (1 << config.split_bits) + sub,
                           pid * (1 << config.split_bits))
            for sizes in (grouped.r_sizes, grouped.s_sizes):
                tasks = [_scan_counters(int(sizes[p]))
                         for p in np.flatnonzero(split_mask)]
                seconds += pool.queue_phase_seconds(tasks).makespan
                counters += OpCounters.sum(tasks)
            fanout <<= config.split_bits
            grouped = _group_by_partition(pid, fanout, wl.cr, wl.cs)
            details["split_partitions"] = float(split_mask.sum())

    phases = [PhaseResult("partition", seconds, counters,
                          details=details)]

    pairs = np.flatnonzero((grouped.r_sizes > 0) & (grouped.s_sizes > 0))
    task_counters = []
    for p in pairs:
        idx = grouped.key_slice(int(p))
        task_counters.append(
            _cbase_join_task(hashes[idx], wl.cr[idx], wl.cs[idx]))
    schedule = pool.queue_phase_seconds(task_counters)
    phases.append(PhaseResult(
        "join", schedule.makespan, OpCounters.sum(task_counters),
        task_count=len(task_counters),
        details={"idle_fraction": schedule.idle_fraction},
    ))
    return _analytic_result("cbase", wl, phases, wl.output_count(),
                            bits_pass1=bits1, bits_pass2=bits2)


# ---------------------------------------------------------------------------
# cbase-npj
# ---------------------------------------------------------------------------


def analytic_npj(wl: AnalyticWorkload,
                 config: NoPartitionConfig = NoPartitionConfig()) -> JoinResult:
    """Paper-scale cbase-npj (per-thread split is the even-spread model)."""
    pool = ThreadPool(config.n_threads, config.cost_model)
    n_r, n_s = wl.n_r, wl.n_s
    build = OpCounters(
        hash_ops=n_r, table_inserts=n_r, random_accesses=n_r,
        bytes_read=8 * n_r, bytes_written=12 * n_r,
    )
    per_thread = NoPartitionJoin._split_counters(build, n_r, config.n_threads)
    phases = [PhaseResult("build", pool.static_phase_seconds(per_thread),
                          build)]

    hashes = hash_keys(wl.keys)
    bucket_bits = bits_for(next_pow2(max(n_r, 1)))
    steps, outputs = _probe_totals(hashes, wl.cr, wl.cs, bucket_bits)
    probe = OpCounters(
        hash_ops=n_s, seq_tuple_reads=n_s, bytes_read=8 * n_s,
        chain_steps=steps, key_compares=steps,
        random_accesses=steps + n_s,
        output_tuples=outputs, bytes_written=8 * outputs,
    )
    per_thread = NoPartitionJoin._split_counters(probe, n_s, config.n_threads)
    phases.append(PhaseResult("probe", pool.static_phase_seconds(per_thread),
                              probe))
    return _analytic_result("cbase-npj", wl, phases, outputs)


# ---------------------------------------------------------------------------
# CSH
# ---------------------------------------------------------------------------


def simulate_csh_detection(wl: AnalyticWorkload, config: CSHConfig,
                           seed: SeedLike = None) -> np.ndarray:
    """Simulate CSH's R sampling on the histogram; returns skewed keys."""
    n_r = wl.n_r
    sample_size = max(int(round(n_r * config.sample_rate)), min(n_r, 1))
    if sample_size == 0 or n_r == 0:
        return np.empty(0, dtype=np.uint32)
    rng = make_rng(config.sample_seed if seed is None else seed)
    cum = np.cumsum(wl.cr)
    draws = rng.integers(0, n_r, size=sample_size)
    key_idx = np.searchsorted(cum, draws, side="right")
    freq = np.bincount(key_idx, minlength=wl.keys.size)
    return np.sort(wl.keys[freq >= config.freq_threshold])


def analytic_csh(wl: AnalyticWorkload,
                 config: CSHConfig = CSHConfig(),
                 skewed_keys: Optional[np.ndarray] = None) -> JoinResult:
    """Paper-scale CSH.

    ``skewed_keys`` injects a detected key set (used by the equivalence
    tests); by default detection is simulated on the histogram.
    """
    pool = ThreadPool(config.n_threads, config.cost_model)
    bits1, bits2 = config.resolve_bits(max(wl.n_r, wl.n_s))
    if skewed_keys is None:
        skewed_keys = simulate_csh_detection(wl, config)
    skewed_keys = np.asarray(skewed_keys, dtype=np.uint32)
    n_r, n_s = wl.n_r, wl.n_s

    sample_size = max(int(round(n_r * config.sample_rate)), min(n_r, 1))
    sample_counters = OpCounters(
        sample_ops=sample_size, hash_ops=sample_size,
        chain_steps=sample_size, seq_tuple_reads=sample_size,
        bytes_read=8 * sample_size,
    )
    phases = [PhaseResult(
        "sample",
        config.cost_model.seconds(sample_counters) / config.n_threads,
        sample_counters,
        details={"skewed_keys": float(skewed_keys.size)},
    )]

    skew_mask = np.isin(wl.keys, skewed_keys)
    cr_skew = np.where(skew_mask, wl.cr, 0)
    cs_skew = np.where(skew_mask, wl.cs, 0)
    cr_norm = np.where(skew_mask, 0, wl.cr)
    cs_norm = np.where(skew_mask, 0, wl.cs)
    n_norm_s = int(cs_norm.sum())
    fly = int(np.sum(cr_skew * cs_skew))

    seconds = 0.0
    counters = OpCounters()
    # R pass: per-thread scan over the original table.
    per_thread = []
    for a, b in split_segments(n_r, config.n_threads):
        m = b - a
        per_thread.append(OpCounters(
            seq_tuple_reads=2 * m, hash_ops=2 * m, key_compares=m,
            tuple_moves=m, bytes_read=16 * m, bytes_written=8 * m,
        ))
    seconds += pool.static_phase_seconds(per_thread)
    counters += OpCounters.sum(per_thread)

    hashes = hash_keys(wl.keys)
    p1 = radix_bits(hashes, 0, bits1)
    if bits2 > 0:
        sizes1 = np.bincount(p1, weights=cr_norm.astype(float),
                             minlength=1 << bits1).astype(np.int64)
        tasks = [_scan_counters(int(m)) for m in sizes1]
        seconds += pool.queue_phase_seconds(tasks).makespan
        counters += OpCounters.sum(tasks)

    # S pass: even-spread model of the per-thread scan + on-the-fly joins.
    per_thread = []
    for a, b in split_segments(n_s, config.n_threads):
        m = b - a
        frac = m / n_s if n_s else 0.0
        n_norm = int(round(n_norm_s * frac))
        fly_t = int(round(fly * frac))
        per_thread.append(OpCounters(
            seq_tuple_reads=m + n_norm + fly_t,
            hash_ops=m + n_norm,
            key_compares=m,
            tuple_moves=n_norm,
            output_tuples=fly_t,
            bytes_read=(m + n_norm) * 8 + fly_t * 8,
            bytes_written=n_norm * 8 + fly_t * 8,
        ))
    seconds += pool.static_phase_seconds(per_thread)
    counters += OpCounters.sum(per_thread)
    if bits2 > 0:
        sizes1 = np.bincount(p1, weights=cs_norm.astype(float),
                             minlength=1 << bits1).astype(np.int64)
        tasks = [_scan_counters(int(m)) for m in sizes1]
        seconds += pool.queue_phase_seconds(tasks).makespan
        counters += OpCounters.sum(tasks)
    phases.append(PhaseResult("partition", seconds, counters, details={
        "skewed_r_tuples": float(cr_skew.sum()),
        "skewed_s_tuples": float(cs_skew.sum()),
        "skewed_output": float(fly),
    }))

    # NM-join over normal keys only.
    fanout = 1 << (bits1 + bits2)
    pid = (p1 << bits2) | radix_bits(hashes, bits1, bits2)
    grouped = _group_by_partition(pid, fanout, cr_norm, cs_norm)
    pairs = np.flatnonzero((grouped.r_sizes > 0) & (grouped.s_sizes > 0))
    task_counters = []
    for p in pairs:
        idx = grouped.key_slice(int(p))
        task_counters.append(
            _cbase_join_task(hashes[idx], cr_norm[idx], cs_norm[idx]))
    schedule = pool.queue_phase_seconds(task_counters)
    phases.append(PhaseResult(
        "nm-join", schedule.makespan, OpCounters.sum(task_counters),
        task_count=len(task_counters),
    ))
    return _analytic_result(
        "csh", wl, phases, wl.output_count(),
        skewed_keys=int(skewed_keys.size),
        skewed_output=fly,
        bits_pass1=bits1, bits_pass2=bits2,
    )


# ---------------------------------------------------------------------------
# GPU common: NM-join block estimate
# ---------------------------------------------------------------------------


def _expected_round_max(values: np.ndarray, probs: np.ndarray,
                        t: int) -> float:
    """E[max of t iid draws] over a discrete (value, prob) distribution."""
    if values.size == 0 or t <= 0:
        return 0.0
    order = np.argsort(values)[::-1]
    v = values[order].astype(np.float64)
    w = probs[order].astype(np.float64)
    W = np.minimum(np.cumsum(w), 1.0)
    p_ge = 1.0 - (1.0 - W) ** t
    v_next = np.append(v[1:], 0.0)
    return float(np.sum((v - v_next) * p_ge))


def _gpu_probe_estimate(hashes, crp, csp, bucket_bits, block_threads):
    """Expected (useful steps, lockstep steps per full partition probe)."""
    n_s = int(csp.sum())
    if crp.size == 0 or n_s == 0:
        return 0, 0
    b = bucket_ids(hashes, bucket_bits)
    blen = np.bincount(b, weights=crp.astype(float),
                       minlength=1 << bucket_bits)
    useful = int(round(float(np.sum(csp * blen[b]))))
    probe_w = np.bincount(b, weights=csp.astype(float),
                          minlength=1 << bucket_bits) / n_s
    nonzero = blen > 0
    e_max = _expected_round_max(blen[nonzero], probe_w[nonzero],
                                min(block_threads, n_s))
    rounds = math.ceil(n_s / block_threads)
    lockstep = int(round(rounds * e_max))
    return useful, max(lockstep, 0)


def _gpu_join_block(hashes, crp, csp, bucket_bits, block_threads,
                    frac: float = 1.0) -> OpCounters:
    """Expected counters of one NM-join/sub-list block.

    ``frac`` scales the R side (a sub-list holding that fraction of the
    partition's R tuples); the whole S partition is probed either way.
    """
    n_r_full = int(crp.sum())
    n_s = int(csp.sum())
    n_r = int(round(n_r_full * frac))
    counters = OpCounters(
        hash_ops=n_r + n_s,
        table_inserts=n_r,
        bytes_read=8 * (n_r + n_s),
    )
    if n_r_full == 0 or n_s == 0:
        return counters
    useful_full, lockstep_full = _gpu_probe_estimate(
        hashes, crp, csp, bucket_bits, block_threads)
    useful = int(round(useful_full * frac))
    lockstep = int(round(lockstep_full * frac))
    outputs = int(round(float(np.sum(crp * csp)) * frac))
    counters.chain_steps += lockstep
    counters.sync_barriers += lockstep
    counters.atomic_ops += useful
    counters.key_compares += useful
    counters.divergent_steps += max(lockstep * block_threads - useful, 0)
    counters.output_tuples += outputs
    counters.bytes_written += 8 * outputs
    return counters


# ---------------------------------------------------------------------------
# Gbase
# ---------------------------------------------------------------------------


def analytic_gbase(wl: AnalyticWorkload,
                   config: GbaseConfig = GbaseConfig()) -> JoinResult:
    """Paper-scale Gbase on the SIMT cost simulator."""
    sim = GPUSimulator(device=config.device,
                       cost_model=cost_model_for(config.device))
    bits1, bits2 = config.resolve_bits(max(wl.n_r, wl.n_s))
    device = config.device

    seconds = gbase_partition_cost(sim, wl.n_r, True, "r")
    seconds += gbase_partition_cost(sim, wl.n_s, True, "s")
    part_counters = OpCounters.sum(l.counters for l in sim.launches)
    phases = [PhaseResult("partition", seconds, part_counters)]

    hashes = hash_keys(wl.keys)
    pid = ((radix_bits(hashes, 0, bits1) << bits2)
           | radix_bits(hashes, bits1, bits2))
    fanout = 1 << (bits1 + bits2)
    grouped = _group_by_partition(pid, fanout, wl.cr, wl.cs)
    sublist_cap = config.resolve_sublist_capacity()
    bucket_bits = bits_for(next_pow2(max(device.shared_capacity_tuples, 2)))

    work: List[BlockWork] = []
    pairs = np.flatnonzero((grouped.r_sizes > 0) & (grouped.s_sizes > 0))
    for p in pairs:
        idx = grouped.key_slice(int(p))
        h, crp, csp = hashes[idx], wl.cr[idx], wl.cs[idx]
        n_r = int(grouped.r_sizes[p])
        n_sub = max(math.ceil(n_r / sublist_cap), 1)
        full_frac = min(sublist_cap / n_r, 1.0) if n_r else 1.0
        n_full = n_r // sublist_cap
        remainder = n_r - n_full * sublist_cap
        if n_full:
            work.append(BlockWork(n_full, _gpu_join_block(
                h, crp, csp, bucket_bits, device.threads_per_block,
                frac=full_frac)))
        if remainder or n_full == 0:
            work.append(BlockWork(1, _gpu_join_block(
                h, crp, csp, bucket_bits, device.threads_per_block,
                frac=(remainder / n_r) if n_r and n_full else 1.0)))
    launch = sim.launch("gbase_join", work)
    phases.append(PhaseResult("join", launch.seconds, launch.counters,
                              task_count=launch.n_blocks))
    return _analytic_result("gbase", wl, phases, wl.output_count(),
                            bits_pass1=bits1, bits_pass2=bits2,
                            join_blocks=launch.n_blocks,
                            device=device.name)


# ---------------------------------------------------------------------------
# GSH
# ---------------------------------------------------------------------------


def analytic_gsh(wl: AnalyticWorkload,
                 config: GSHConfig = GSHConfig()) -> JoinResult:
    """Paper-scale GSH on the SIMT cost simulator.

    Detection is modelled as "the top-k truly most frequent keys of each
    large partition" — the limit of the paper's sampling for any reasonable
    sample, since skewed keys dominate their partitions by construction.
    """
    sim = GPUSimulator(device=config.device,
                       cost_model=cost_model_for(config.device))
    bits1, bits2 = config.resolve_bits(max(wl.n_r, wl.n_s))
    device = config.device

    hashes = hash_keys(wl.keys)
    p1 = radix_bits(hashes, 0, bits1)
    pid = (p1 << bits2) | radix_bits(hashes, bits1, bits2)
    fanout = 1 << (bits1 + bits2)

    seconds = 0.0
    for n, weights, label in ((wl.n_r, wl.cr, "r"), (wl.n_s, wl.cs, "s")):
        if bits2 > 0:
            sizes1 = np.bincount(p1, weights=weights.astype(float),
                                 minlength=1 << bits1).astype(np.int64)
        else:
            sizes1 = []
        seconds += gsh_partition_cost(sim, n, 1 << bits1, sizes1, label)
    part_counters = OpCounters.sum(l.counters for l in sim.launches)
    phases = [PhaseResult("partition", seconds, part_counters)]

    grouped = _group_by_partition(pid, fanout, wl.cr, wl.cs)
    threshold = config.large_threshold_tuples()
    large = np.flatnonzero((grouped.r_sizes > threshold)
                           | (grouped.s_sizes > threshold))

    # Detect: one block per large partition, sampling both sides.
    detect_work = []
    skew_mask = np.zeros(wl.keys.size, dtype=bool)
    for p in large:
        idx = grouped.key_slice(int(p))
        pool_n = int(grouped.r_sizes[p] + grouped.s_sizes[p])
        sample = max(int(round(pool_n * config.sample_rate)),
                     min(pool_n, 1))
        detect_work.append(BlockWork(1, OpCounters(
            sample_ops=sample, hash_ops=sample, chain_steps=sample,
            seq_tuple_reads=sample, bytes_read=8 * sample,
        )))
        totals = wl.cr[idx] + wl.cs[idx]
        top = idx[np.argsort(totals, kind="stable")[::-1][:config.top_k]]
        skew_mask[top] = True
    launch = sim.launch("gsh_detect", detect_work)
    phases.append(PhaseResult("detect", launch.seconds, launch.counters,
                              details={"large_partitions": float(large.size)}))

    # Split: both sides of each large partition rewritten.
    split_work: List[BlockWork] = []
    split_tuple = OpCounters(
        seq_tuple_reads=2, key_compares=config.top_k, tuple_moves=1,
        bytes_read=16, bytes_written=8,
    )
    for sizes in (grouped.r_sizes, grouped.s_sizes):
        for p in large:
            split_work.extend(uniform_grid(int(sizes[p]),
                                           PARTITION_TUPLES_PER_BLOCK,
                                           split_tuple))
    launch = sim.launch("gsh_split", split_work)
    cr_norm = np.where(skew_mask, 0, wl.cr)
    cs_norm = np.where(skew_mask, 0, wl.cs)
    phases.append(PhaseResult("split", launch.seconds, launch.counters,
                              details={"skewed_keys": float(skew_mask.sum())}))

    # NM-join: one block per normal pair.
    grouped_norm = _group_by_partition(pid, fanout, cr_norm, cs_norm)
    bucket_bits = bits_for(next_pow2(max(device.shared_capacity_tuples, 2)))
    nm_work = []
    pairs = np.flatnonzero((grouped_norm.r_sizes > 0)
                           & (grouped_norm.s_sizes > 0))
    for p in pairs:
        idx = grouped_norm.key_slice(int(p))
        nm_work.append(BlockWork(1, _gpu_join_block(
            hashes[idx], cr_norm[idx], cs_norm[idx], bucket_bits,
            device.threads_per_block)))
    launch = sim.launch("gsh_nm_join", nm_work)
    phases.append(PhaseResult("nm-join", launch.seconds, launch.counters,
                              task_count=launch.n_blocks))

    # Skew join: one block per skewed R tuple per key.
    skew_work = []
    skew_idx = np.flatnonzero(skew_mask & (wl.cr > 0) & (wl.cs > 0))
    for i in skew_idx:
        n_r_k, n_s_k = int(wl.cr[i]), int(wl.cs[i])
        skew_work.append(BlockWork(n_r_k, OpCounters(
            seq_tuple_reads=n_s_k, output_tuples=n_s_k, atomic_ops=1,
            bytes_read=8 + 8 * n_s_k, bytes_written=8 * n_s_k,
        )))
    launch = sim.launch("gsh_skew_join", skew_work)
    phases.append(PhaseResult("skew-join", launch.seconds, launch.counters,
                              task_count=launch.n_blocks))

    skew_output = int(np.sum(wl.cr[skew_idx] * wl.cs[skew_idx]))
    return _analytic_result(
        "gsh", wl, phases, wl.output_count(),
        bits_pass1=bits1, bits_pass2=bits2,
        large_partitions=int(large.size),
        skewed_keys=int(skew_mask.sum()),
        skewed_output=skew_output,
        device=device.name,
    )


#: Registry mirroring :data:`repro.api.ALGORITHMS` for the analytic path.
ANALYTIC_EXECUTORS = {
    "cbase": analytic_cbase,
    "cbase-npj": analytic_npj,
    "csh": analytic_csh,
    "gbase": analytic_gbase,
    "gsh": analytic_gsh,
}


def analytic_run(algorithm: str, wl: AnalyticWorkload, **kwargs) -> JoinResult:
    """Run one algorithm's analytic executor by name."""
    try:
        executor = ANALYTIC_EXECUTORS[algorithm]
    except KeyError:
        raise WorkloadError(
            f"no analytic executor for {algorithm!r}") from None
    return executor(wl, **kwargs)
