"""Analysis: ground truth, verification, speedups, paper-scale analytics."""

from repro.analysis.analytic import (
    ANALYTIC_EXECUTORS,
    AnalyticWorkload,
    analytic_cbase,
    analytic_csh,
    analytic_gbase,
    analytic_gsh,
    analytic_npj,
    analytic_run,
    simulate_csh_detection,
)
from repro.analysis.model_check import CellCheck, ShapeCheck, check_against_table1
from repro.analysis.expected import (
    expected_output,
    expected_top_key_frequency,
    expected_zipf_output_count,
    output_share_of_top_keys,
)
from repro.analysis.speedup import (
    SweepPoint,
    max_speedup,
    parity_band,
    speedup,
    speedup_series,
)
from repro.analysis.verify import verify_agreement, verify_all, verify_result

__all__ = [
    "expected_output",
    "expected_zipf_output_count",
    "expected_top_key_frequency",
    "output_share_of_top_keys",
    "verify_result",
    "verify_agreement",
    "verify_all",
    "SweepPoint",
    "speedup",
    "speedup_series",
    "max_speedup",
    "parity_band",
    "AnalyticWorkload",
    "analytic_cbase",
    "analytic_npj",
    "analytic_csh",
    "analytic_gbase",
    "analytic_gsh",
    "analytic_run",
    "simulate_csh_detection",
    "ANALYTIC_EXECUTORS",
    "CellCheck",
    "ShapeCheck",
    "check_against_table1",
]
