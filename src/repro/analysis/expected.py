"""Ground-truth expectations for join outputs.

Provides exact output counts/checksums from materialized inputs, and
closed-form expectations for zipf workloads (used to sanity-check the
generators and to reason about paper-scale configurations without drawing
tuples).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.histogram import (
    KeyHistogram,
    join_output_checksum,
    join_output_count,
)
from repro.data.relation import JoinInput
from repro.data.zipf import zipf_probabilities


def expected_output(join_input: JoinInput) -> Tuple[int, int]:
    """Exact (count, checksum) of a materialized join input."""
    hr = KeyHistogram.from_relation(join_input.r)
    hs = KeyHistogram.from_relation(join_input.s)
    return (
        join_output_count(hr, hs),
        join_output_checksum(join_input.r, join_input.s),
    )


def expected_zipf_output_count(n_r: int, n_s: int, n_keys: int,
                               theta: float) -> float:
    """Expected equi-join cardinality of two independent zipf tables.

    E[output] = sum_k E[fR(k)] * E[fS(k)] + covariance terms; with
    independent multinomial draws the expectation is
    ``n_r * n_s * sum(p_k^2)`` plus a small ``min(n_r, n_s)``-order
    correction that we ignore — good to within a few percent for the
    paper's configurations.
    """
    p = zipf_probabilities(n_keys, theta)
    return float(n_r) * float(n_s) * float(np.sum(p * p))


def expected_top_key_frequency(n: int, n_keys: int, theta: float) -> float:
    """Expected number of tuples carrying the hottest key.

    At the paper's 32 M / zipf 1.0 configuration this evaluates to ~1.84 M,
    matching the paper's observation of "about 1.79 million tuples" sharing
    the most popular join key.
    """
    p = zipf_probabilities(n_keys, theta)
    return float(n) * float(p[0])


def output_share_of_top_keys(n_keys: int, theta: float, k: int) -> float:
    """Fraction of expected join output produced by the k hottest keys.

    The paper reports that at zipf 1.0 the 870 detected skewed keys cover
    ~99.6% of the join output; this function reproduces that calculation.
    """
    p = zipf_probabilities(n_keys, theta)
    squares = p * p
    k = min(k, n_keys)
    return float(squares[:k].sum() / squares.sum())
