"""Speedup calculations and sweep summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass
class SweepPoint:
    """One point of a parameter sweep: parameter value -> algorithm times."""

    parameter: float
    seconds: Dict[str, float]


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """How many times faster the improved time is than the baseline."""
    if improved_seconds <= 0:
        raise ConfigError("improved time must be positive")
    return baseline_seconds / improved_seconds


def speedup_series(points: Sequence[SweepPoint], baseline: str,
                   improved: str) -> List[Tuple[float, float]]:
    """(parameter, speedup) for each sweep point."""
    series = []
    for point in points:
        series.append((
            point.parameter,
            speedup(point.seconds[baseline], point.seconds[improved]),
        ))
    return series


def max_speedup(points: Sequence[SweepPoint], baseline: str, improved: str,
                parameter_range: Tuple[float, float] = None) -> Tuple[float, float]:
    """The (parameter, speedup) of the best improvement in a sweep.

    ``parameter_range`` restricts the search, mirroring the paper's "up to
    8.0x improvement for ... the zipf factor is 0.5-1.0" phrasing.
    """
    best = None
    for point in points:
        if parameter_range is not None:
            lo, hi = parameter_range
            if not lo <= point.parameter <= hi:
                continue
        s = speedup(point.seconds[baseline], point.seconds[improved])
        if best is None or s > best[1]:
            best = (point.parameter, s)
    if best is None:
        raise ConfigError("no sweep points in the requested range")
    return best


def parity_band(points: Sequence[SweepPoint], a: str, b: str,
                parameter_range: Tuple[float, float],
                tolerance: float = 0.5) -> bool:
    """True if the two algorithms stay within ``1 +- tolerance`` of each
    other across the range (the paper's low-skew comparability claim)."""
    for point in points:
        lo, hi = parameter_range
        if not lo <= point.parameter <= hi:
            continue
        ratio = point.seconds[a] / point.seconds[b]
        if not (1 - tolerance) <= ratio <= 1 / (1 - tolerance):
            return False
    return True
