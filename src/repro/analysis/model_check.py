"""Model-vs-paper comparison: systematic checks against Table I.

Given the harness' Table-I-style rows at paper scale, computes per-cell
model/paper ratios and the shape diagnostics this reproduction claims:
growth factors across the sweep, breakdown dominance, and the headline
speedups.  Used to produce EXPERIMENTS.md and to gate the paper-scale
benchmark run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.paper import TABLE1, TABLE1_THETAS
from repro.errors import ConfigError


@dataclass(frozen=True)
class CellCheck:
    """One (row, zipf) comparison between model and paper."""

    row: str
    theta: float
    paper_seconds: float
    model_seconds: float

    @property
    def ratio(self) -> float:
        """model / paper; 1.0 is a perfect match."""
        return self.model_seconds / self.paper_seconds


@dataclass
class ShapeCheck:
    """Summary of how well the model reproduces Table I's shape."""

    cells: List[CellCheck]

    def worst_ratio(self) -> float:
        """The largest deviation factor, max(ratio, 1/ratio) over cells."""
        return max(max(c.ratio, 1 / c.ratio) for c in self.cells)

    def median_ratio(self) -> float:
        """Median model/paper ratio over all cells."""
        ratios = sorted(c.ratio for c in self.cells)
        mid = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[mid]
        return 0.5 * (ratios[mid - 1] + ratios[mid])

    def cells_within(self, factor: float) -> float:
        """Fraction of cells whose deviation is below ``factor``."""
        if factor < 1:
            raise ConfigError("factor must be >= 1")
        good = sum(1 for c in self.cells
                   if max(c.ratio, 1 / c.ratio) <= factor)
        return good / len(self.cells)

    def growth_factor(self, rows: Dict[str, Dict[float, float]],
                      row: str) -> float:
        """value at zipf 1.0 / value at zipf 0.5 for one model row."""
        return rows[row][1.0] / rows[row][0.5]

    def report(self) -> str:
        """Human-readable per-cell comparison table."""
        lines = [
            f"{'row':<18}{'zipf':>6}{'paper':>12}{'model':>12}{'ratio':>8}",
            "-" * 56,
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.row:<18}{cell.theta:>6}"
                f"{cell.paper_seconds:>12.4g}{cell.model_seconds:>12.4g}"
                f"{cell.ratio:>8.2f}"
            )
        lines.append("-" * 56)
        lines.append(f"median ratio {self.median_ratio():.2f}, worst "
                     f"deviation {self.worst_ratio():.1f}x, "
                     f"{self.cells_within(3):.0%} of cells within 3x")
        return "\n".join(lines)


def check_against_table1(
    model_rows: Dict[str, Dict[float, float]],
    thetas: Sequence[float] = TABLE1_THETAS,
) -> ShapeCheck:
    """Compare harness rows (paper scale) against the paper's Table I."""
    cells = []
    for row, paper_values in TABLE1.items():
        if row not in model_rows:
            raise ConfigError(f"model rows missing {row!r}")
        for theta in thetas:
            cells.append(CellCheck(
                row=row,
                theta=theta,
                paper_seconds=paper_values[theta],
                model_seconds=model_rows[row][theta],
            ))
    return ShapeCheck(cells=cells)
