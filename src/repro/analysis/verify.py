"""Join-result verification."""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.expected import expected_output
from repro.data.relation import JoinInput
from repro.errors import VerificationError
from repro.exec.result import JoinResult, compare_results


def verify_result(result: JoinResult, join_input: JoinInput) -> None:
    """Raise :class:`VerificationError` unless the result is exact."""
    count, checksum = expected_output(join_input)
    if result.output_count != count:
        raise VerificationError(
            f"{result.algorithm}: output count {result.output_count} != "
            f"expected {count}"
        )
    if result.output_checksum != checksum:
        raise VerificationError(
            f"{result.algorithm}: output checksum "
            f"{result.output_checksum:#x} != expected {checksum:#x}"
        )


def verify_agreement(results: Iterable[JoinResult]) -> None:
    """Raise unless all results agree on (count, checksum)."""
    results = list(results)
    message = compare_results(results)
    if message is not None:
        raise VerificationError(message)


def verify_all(results: Iterable[JoinResult],
               join_input: JoinInput) -> List[JoinResult]:
    """Verify each result against ground truth and mutual agreement."""
    results = list(results)
    for result in results:
        verify_result(result, join_input)
    verify_agreement(results)
    return results
