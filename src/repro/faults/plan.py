"""Fault plans: which fault fires where, deterministically.

A :class:`FaultSpec` names one fault to inject: its class (``kind``), the
injection point it triggers at, and which hit of that point it targets
(``occurrence``; ``repeat`` makes it fire on that many *consecutive* hits,
which is how a spec defeats bounded retry).  A :class:`FaultPlan` is an
immutable bag of specs; :func:`activate_plan` installs one ambiently so
instrumented layers (thread pool, GPU simulator, serializers) see it
through the per-run :class:`~repro.faults.scope.FaultScope` without any
plumbing.  :func:`seeded_plan` derives a full sweep — one spec per fault
class per algorithm, occurrences drawn from ``random.Random(seed)`` — so
``repro chaos --seed 42`` is reproducible bit for bit.

Injection points:

========== ==========================================================
``task``    one partition-pair / probe-segment task (worker crash)
``kernel``  one :meth:`GPUSimulator.launch` (abort or OOM)
``phase``   one CPU thread-pool phase execution (abort, re-run)
``capacity`` a hash-table / sub-list build (overflow, regrow/re-split)
``detect``  CSH's sampling skew detector (counter overflow, regrow)
``split``   GSH's skew-split phase (overflow, Gbase-style fallback)
``artifact`` a JSONL artifact append (torn write, truncated line)
``store-write`` one chunk-store write (torn write, ENOSPC)
``store-read``  one chunk-store read (corrupt chunk, slow I/O)
========== ==========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError

WORKER_CRASH = "worker-crash"
KERNEL_ABORT = "kernel-abort"
KERNEL_OOM = "kernel-oom"
CAPACITY_OVERFLOW = "capacity-overflow"
ARTIFACT_CORRUPTION = "artifact-corruption"
SLOW = "slow"
TORN_WRITE = "torn-write"
ENOSPC = "enospc"
CORRUPT_CHUNK = "corrupt-chunk"
IO_SLOW = "io-slow"

#: Disk fault classes injected at the chunk-store boundary (the spill
#: plane).  Excluded from :func:`kinds_for` like ``slow``: their points
#: only exist when a run actually spills, so the generic pipeline sweep
#: would record no injection for them; ``repro chaos --spill`` and
#: :func:`seeded_spill_plan` own them instead.
DISK_FAULT_KINDS = (TORN_WRITE, ENOSPC, CORRUPT_CHUNK, IO_SLOW)

FAULT_KINDS = (WORKER_CRASH, KERNEL_ABORT, KERNEL_OOM, CAPACITY_OVERFLOW,
               ARTIFACT_CORRUPTION, SLOW) + DISK_FAULT_KINDS

#: Injection point probed before every chunk-store write / after every
#: chunk-store read.  Two separate points so a write-class spec (torn
#: write, ENOSPC) can never be consumed by a read hit and vice versa —
#: :meth:`FaultSpec.matches` only checks point + hit number.
STORE_WRITE_POINT = "store-write"
STORE_READ_POINT = "store-read"

INJECTION_POINTS = ("task", "kernel", "phase", "capacity", "detect", "split",
                    "artifact", "slow", STORE_WRITE_POINT, STORE_READ_POINT)

#: Simulated seconds a ``slow`` spec delays its morsel when the spec
#: does not say otherwise.
DEFAULT_SLOW_SECONDS = 0.05

#: Simulated seconds an ``io-slow`` spec charges to one chunk read.
DEFAULT_IO_SLOW_SECONDS = 0.02

#: Algorithms whose kernels run on the GPU simulator.
GPU_ALGORITHM_NAMES = ("gbase", "gsh")

#: Default sweep targets: the paper's four joins (the cbase-npj baseline is
#: exercised separately as the fallback target).
DEFAULT_CHAOS_ALGORITHMS = ("cbase", "csh", "gbase", "gsh")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: kind + point + which hit it targets."""

    kind: str
    point: str
    #: 1-based hit index of the injection point that triggers the fault.
    occurrence: int = 1
    #: Number of consecutive hits (from ``occurrence``) that fail.
    repeat: int = 1
    #: Restrict the spec to one algorithm's runs (None = any run).
    algorithm: Optional[str] = None
    #: For ``slow`` specs: the simulated delay charged to the morsel.
    seconds: float = DEFAULT_SLOW_SECONDS

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.point not in INJECTION_POINTS:
            raise ConfigError(
                f"unknown injection point {self.point!r}; expected one of "
                f"{INJECTION_POINTS}")
        if self.occurrence < 1:
            raise ConfigError("occurrence is 1-based and must be >= 1")
        if self.repeat < 1:
            raise ConfigError("repeat must be >= 1")
        if not (self.seconds >= 0):
            raise ConfigError(
                f"seconds must be >= 0, got {self.seconds!r}")

    def matches(self, algorithm: str, point: str, hit: int) -> bool:
        """True if this spec fires on hit number ``hit`` of ``point``."""
        if self.point != point:
            return False
        if self.algorithm is not None and self.algorithm != algorithm:
            return False
        return self.occurrence <= hit < self.occurrence + self.repeat

    def label(self) -> str:
        """Compact human-readable form."""
        target = f"{self.algorithm}:" if self.algorithm else ""
        times = f"x{self.repeat}" if self.repeat > 1 else ""
        delay = (f"+{self.seconds:g}s" if self.kind in (SLOW, IO_SLOW)
                 else "")
        return (f"{target}{self.kind}@{self.point}"
                f"#{self.occurrence}{times}{delay}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs, applied together to a run."""

    specs: Tuple[FaultSpec, ...] = ()
    name: str = "plan"

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def for_algorithm(self, algorithm: str) -> Tuple[FaultSpec, ...]:
        """Specs that can fire during ``algorithm``'s run."""
        return tuple(s for s in self.specs
                     if s.algorithm in (None, algorithm))

    def first_match(self, algorithm: str, point: str,
                    hit: int) -> Optional[FaultSpec]:
        """The first spec firing on this hit of ``point``, if any."""
        for spec in self.specs:
            if spec.matches(algorithm, point, hit):
                return spec
        return None


EMPTY_PLAN = FaultPlan((), name="empty")


def spec_to_dict(spec: FaultSpec) -> Dict:
    """JSON-compatible dict form of one spec (the serve wire format)."""
    data: Dict[str, object] = {
        "kind": spec.kind,
        "point": spec.point,
        "occurrence": spec.occurrence,
        "repeat": spec.repeat,
    }
    if spec.algorithm is not None:
        data["algorithm"] = spec.algorithm
    if spec.kind in (SLOW, IO_SLOW):
        data["seconds"] = spec.seconds
    return data


def spec_from_dict(data: Dict) -> FaultSpec:
    """Rebuild a spec from its dict form, with typed validation.

    Unknown keys raise :class:`ConfigError` rather than being ignored, so
    a misspelled field in a serve request cannot silently disarm the
    fault it meant to inject.
    """
    if not isinstance(data, dict):
        raise ConfigError(
            f"fault spec must be an object, got {type(data).__name__}")
    allowed = {"kind", "point", "occurrence", "repeat", "algorithm",
               "seconds"}
    unknown = set(data) - allowed
    if unknown:
        raise ConfigError(
            f"unknown fault spec field(s): {sorted(unknown)}",
            allowed=sorted(allowed))
    try:
        return FaultSpec(
            kind=data["kind"],
            point=data["point"],
            occurrence=int(data.get("occurrence", 1)),
            repeat=int(data.get("repeat", 1)),
            algorithm=data.get("algorithm"),
            seconds=float(data.get("seconds", DEFAULT_SLOW_SECONDS)),
        )
    except KeyError as exc:
        raise ConfigError(
            f"fault spec is missing required field {exc.args[0]!r}"
        ) from None


def plan_from_dicts(specs: Sequence[Dict], name: str = "request") -> FaultPlan:
    """Build a plan from a list of spec dicts (a serve request's payload)."""
    return FaultPlan(tuple(spec_from_dict(s) for s in specs), name=name)


def injection_point(algorithm: str, kind: str) -> str:
    """The natural injection point of a fault class for an algorithm.

    Worker crashes hit individual tasks everywhere.  Kernel aborts/OOM hit
    GPU launches; on CPU algorithms the equivalent is a whole-phase abort.
    Capacity overflow hits the structure each algorithm actually depends
    on: join-task hash tables (cbase), the global table (cbase-npj), the
    sampling detector (csh), GPU sub-lists (gbase), the skew split (gsh).
    """
    if kind == WORKER_CRASH:
        return "task"
    if kind in (KERNEL_ABORT, KERNEL_OOM):
        return "kernel" if algorithm in GPU_ALGORITHM_NAMES else "phase"
    if kind == CAPACITY_OVERFLOW:
        return {"csh": "detect", "gsh": "split"}.get(algorithm, "capacity")
    if kind == ARTIFACT_CORRUPTION:
        return "artifact"
    if kind == SLOW:
        return "slow"
    if kind in (TORN_WRITE, ENOSPC):
        return STORE_WRITE_POINT
    if kind in (CORRUPT_CHUNK, IO_SLOW):
        return STORE_READ_POINT
    raise ConfigError(f"unknown fault kind {kind!r}")


def kinds_for(algorithm: str) -> Tuple[str, ...]:
    """Fault classes applicable to an algorithm (OOM is GPU-only).

    ``slow`` is deliberately absent: its injection point only exists on
    the serve engine's morsel loop (deadline/cancellation testing), so a
    pipeline chaos sweep would record no injection for it and fail the
    exact-recovery contract.  The :data:`DISK_FAULT_KINDS` are absent for
    the same reason — their store points only exist when a run spills;
    ``repro chaos --spill`` sweeps them via :func:`seeded_spill_plan`.
    """
    if algorithm in GPU_ALGORITHM_NAMES:
        return (WORKER_CRASH, KERNEL_ABORT, KERNEL_OOM, CAPACITY_OVERFLOW,
                ARTIFACT_CORRUPTION)
    return (WORKER_CRASH, KERNEL_ABORT, CAPACITY_OVERFLOW,
            ARTIFACT_CORRUPTION)

#: Occurrence ranges per injection point that every algorithm is guaranteed
#: to reach on the chaos workloads (>= 2 partition pairs, >= 2 phases,
#: >= 3 kernel launches); single-shot points pin occurrence to 1.
_MAX_OCCURRENCE: Dict[str, int] = {
    "task": 2,
    "kernel": 3,
    "phase": 2,
    "capacity": 1,
    "detect": 1,
    "split": 1,
    "artifact": 1,
    "slow": 1,
    # A spilled chaos run writes and reads at least two chunks (the
    # harness sizes the budget and chunk bytes to guarantee it).
    STORE_WRITE_POINT: 2,
    STORE_READ_POINT: 2,
}


def seeded_plan(
    seed: int,
    algorithms: Sequence[str] = DEFAULT_CHAOS_ALGORITHMS,
) -> FaultPlan:
    """Deterministic sweep plan: one spec per fault class per algorithm.

    Occurrences are drawn from ``random.Random(seed)`` within per-point
    safe ranges, so different seeds hit different tasks/kernels/phases
    while the same seed always produces the identical plan.
    """
    rng = random.Random(seed)
    specs = []
    for algorithm in algorithms:
        for kind in kinds_for(algorithm):
            point = injection_point(algorithm, kind)
            occurrence = rng.randint(1, _MAX_OCCURRENCE[point])
            specs.append(FaultSpec(kind=kind, point=point,
                                   occurrence=occurrence,
                                   algorithm=algorithm))
    return FaultPlan(tuple(specs), name=f"seeded-{seed}")


#: Pipelines that route partition pairs through the spill plane (the
#: Balkesen-lineage CPU joins that partition before joining).
SPILL_ALGORITHM_NAMES = ("cbase", "csh")


def seeded_spill_plan(
    seed: int,
    algorithms: Sequence[str] = SPILL_ALGORITHM_NAMES,
) -> FaultPlan:
    """Deterministic disk-fault sweep: one spec per disk kind per
    algorithm, occurrences drawn within the store points' safe ranges.

    Every spec here uses ``repeat=1`` — a single fault the recovery
    ladder must absorb exactly.  The chaos harness adds its own
    ``repeat > max_retries`` specs for the ladder-exhaustion scenarios.
    """
    rng = random.Random(seed)
    specs = []
    for algorithm in algorithms:
        for kind in DISK_FAULT_KINDS:
            point = injection_point(algorithm, kind)
            occurrence = rng.randint(1, _MAX_OCCURRENCE[point])
            specs.append(FaultSpec(
                kind=kind, point=point, occurrence=occurrence,
                algorithm=algorithm,
                seconds=(DEFAULT_IO_SLOW_SECONDS if kind == IO_SLOW
                         else DEFAULT_SLOW_SECONDS),
            ))
    return FaultPlan(tuple(specs), name=f"seeded-spill-{seed}")
