"""The shared bounded-retry engine.

Every task-shaped recovery site — CPU partition-pair join tasks, the
no-partition join's probe segments, GPU join-pair block building — runs
through :func:`run_task_with_recovery`: injected faults for the task are
consumed *before* the functional work executes (so a crashed attempt never
writes partial output and retried tasks cannot double-count tuples), while
organic :class:`CapacityError` failures raised by the work itself are
retried with a grown structure (the ``attempt`` number passed to the runner
increases, and runners size tables as ``base << attempt``).  Each failed
attempt is charged ``crash_cost_fraction`` of the task's cost plus
exponential backoff; exhausting ``max_retries`` raises
:class:`UnrecoveredFaultError` carrying the episode's
:class:`FailureReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CapacityError, UnrecoveredFaultError, WorkerCrashError
from repro.exec.counters import OpCounters
from repro.faults.plan import CAPACITY_OVERFLOW, WORKER_CRASH
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import FaultScope


def scale_counters(counters: OpCounters, fraction: float) -> OpCounters:
    """Fractionally scale counters (wasted-attempt accounting).

    ``output_tuples`` is zeroed: a crashed attempt's output is discarded,
    so wasted work pays compute and memory cost but never contributes
    logical output — retried tasks cannot double-count tuples.
    """
    scaled = OpCounters(**{key: int(value * fraction)
                           for key, value in counters.as_dict().items()})
    scaled.output_tuples = 0
    return scaled


@dataclass
class FaultEpisode:
    """Accumulated failures of one task before it finally succeeded."""

    retries: int = 0
    injected_retries: int = 0
    kind: Optional[str] = None
    point: Optional[str] = None
    backoffs: List[float] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    context: Dict[str, object] = field(default_factory=dict)

    @property
    def backoff_seconds(self) -> float:
        return sum(self.backoffs)


def consume_injected_faults(
    scope: FaultScope,
    points: Sequence[str],
    phase: str = "",
    **context,
) -> FaultEpisode:
    """Probe the injection points for one task and absorb what fires.

    Probes repeat until no spec fires (each probe is one "attempt" the
    simulated worker loses), so a spec with ``repeat`` beyond the policy's
    ``max_retries`` exhausts the budget here and raises
    :class:`UnrecoveredFaultError`.
    """
    policy = scope.policy
    episode = FaultEpisode(context=dict(context))
    while True:
        spec = None
        for point in points:
            spec = scope.fire(point, **context)
            if spec is not None:
                break
        if spec is None:
            return episode
        episode.retries += 1
        episode.injected_retries += 1
        episode.kind = spec.kind
        episode.point = spec.point
        episode.errors.append(f"injected {spec.kind} ({spec.label()})")
        episode.backoffs.append(policy.backoff_seconds(episode.retries))
        if episode.retries > policy.max_retries:
            report = scope.record(FailureReport(
                kind=spec.kind, point=spec.point, algorithm=scope.algorithm,
                phase=phase or current_phase_name(), action="abort",
                recovered=False, injected=True, retries=episode.retries,
                backoff_seconds=episode.backoff_seconds,
                error=episode.errors[-1], context=dict(episode.context),
            ))
            raise UnrecoveredFaultError(
                f"{spec.kind} at {spec.point} exhausted "
                f"{policy.max_retries} retries", report=report, **context)


def append_partial_phases(result, tracer) -> None:
    """Salvage phase results of an aborted run into ``result.phases``.

    After a fault escapes a pipeline, root spans that already priced work
    (explicitly finished, or carrying child kernel spans — including the
    aborted kernel's wasted time) are appended to the result's phase list
    with an ``aborted`` detail, so a fallback run's trace still sums to the
    result total.  Spans with no time to report are skipped.
    """
    for span in tracer.spans[len(result.phases):]:
        if span.finished:
            span.details.setdefault("aborted", 1.0)
            result.phases.append(span.phase_result)


@dataclass
class TaskOutcome:
    """Result of one task run through the recovery engine."""

    value: object
    #: Counters of the successful attempt only (never double-counted).
    counters: OpCounters
    #: Wasted-work counters of each failed attempt, schedule as extra tasks.
    wasted: List[OpCounters]
    #: Simulated backoff per failed attempt, seconds.
    backoffs: List[float]
    #: Recovered-episode report (already recorded), if any retries happened.
    report: Optional[FailureReport] = None

    @property
    def retries(self) -> int:
        return len(self.wasted)


def run_task_with_recovery(
    runner: Callable[[OpCounters, int], object],
    scope: FaultScope,
    points: Sequence[str] = ("capacity", "task"),
    phase: str = "",
    **context,
) -> TaskOutcome:
    """Run one task under the scope's plan and policy.

    ``runner(counters, attempt)`` executes the task functionally into fresh
    ``counters``; ``attempt`` starts at the number of already-absorbed
    injected failures, so capacity-overflow retries see a larger structure.
    Organic :class:`CapacityError` / :class:`WorkerCrashError` raises are
    retried with backoff; success after retries records one recovered
    :class:`FailureReport` on the scope.
    """
    policy = scope.policy
    phase = phase or current_phase_name()
    episode = consume_injected_faults(scope, points, phase=phase, **context)
    injected = episode.injected_retries > 0
    attempt = episode.injected_retries
    organic_wasted: List[OpCounters] = []
    while True:
        counters = OpCounters()
        try:
            value = runner(counters, attempt)
            break
        except (WorkerCrashError, CapacityError) as exc:
            episode.retries += 1
            episode.kind = (WORKER_CRASH if isinstance(exc, WorkerCrashError)
                            else CAPACITY_OVERFLOW)
            episode.point = episode.point or (
                "task" if isinstance(exc, WorkerCrashError) else "capacity")
            episode.errors.append(str(exc))
            episode.context.update(getattr(exc, "context", {}))
            episode.backoffs.append(policy.backoff_seconds(episode.retries))
            organic_wasted.append(
                scale_counters(counters, policy.crash_cost_fraction))
            if episode.retries > policy.max_retries:
                report = scope.record(FailureReport(
                    kind=episode.kind, point=episode.point,
                    algorithm=scope.algorithm, phase=phase, action="abort",
                    recovered=False, injected=injected,
                    retries=episode.retries,
                    backoff_seconds=episode.backoff_seconds,
                    error=str(exc), context=dict(episode.context),
                ))
                raise UnrecoveredFaultError(
                    str(exc), report=report,
                    **getattr(exc, "context", {})) from exc
            attempt += 1
    if episode.retries == 0:
        return TaskOutcome(value=value, counters=counters, wasted=[],
                           backoffs=[])
    # Injected failures land mid-task: each wasted attempt costs the same
    # fraction of the (eventually successful) task's measured work.
    wasted = [scale_counters(counters, policy.crash_cost_fraction)
              for _ in range(episode.injected_retries)] + organic_wasted
    action = "regrow" if episode.kind == CAPACITY_OVERFLOW else "retry"
    report = scope.record(FailureReport(
        kind=episode.kind, point=episode.point or "task",
        algorithm=scope.algorithm, phase=phase, action=action,
        recovered=True, injected=injected, retries=episode.retries,
        backoff_seconds=episode.backoff_seconds,
        error=episode.errors[-1] if episode.errors else "",
        context=dict(episode.context),
    ))
    return TaskOutcome(value=value, counters=counters, wasted=wasted,
                       backoffs=episode.backoffs, report=report)
