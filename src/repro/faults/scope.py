"""Per-run fault scope: ambient injection state and report collection.

A pipeline ``run()`` opens one :class:`FaultScope` (via :func:`fault_scope`)
next to its tracer.  The scope snapshots the ambient plan and policy, counts
hits of every injection point, answers :meth:`FaultScope.fire` queries from
instrumented layers, and collects the run's :class:`FailureReport` list —
which the pipeline attaches to ``JoinResult.faults``.  Code probing for
faults never needs a None check: :func:`current_fault_scope` returns a
:class:`NullFaultScope` (never fires, drops reports) when no scope is
active, mirroring the ``NullTracer`` idiom.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro.faults.plan import EMPTY_PLAN, FaultPlan, FaultSpec
from repro.faults.policy import RecoveryPolicy, current_policy
from repro.faults.report import FailureReport, count_fault_metrics

_ACTIVE_PLAN: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_active_fault_plan", default=None)


def current_plan() -> FaultPlan:
    """The ambient fault plan (empty when none installed)."""
    plan = _ACTIVE_PLAN.get()
    return plan if plan is not None else EMPTY_PLAN


@contextmanager
def activate_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan for the block."""
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


class FaultScope:
    """Injection and recovery state of one pipeline run."""

    def __init__(self, algorithm: str, plan: Optional[FaultPlan] = None,
                 policy: Optional[RecoveryPolicy] = None):
        self.algorithm = algorithm
        self.plan = plan if plan is not None else current_plan()
        self.policy = policy if policy is not None else current_policy()
        self.reports: List[FailureReport] = []
        self._hits: Dict[str, int] = {}

    def fire(self, point: str, **_context) -> Optional[FaultSpec]:
        """Count one hit of ``point``; return the spec that fires, if any.

        Every probe counts, including probes during retries — which is how
        a spec with ``repeat > 1`` makes consecutive attempts fail and a
        spec with ``repeat = 1`` lets the first retry succeed.
        """
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        return self.plan.first_match(self.algorithm, point, hit)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been probed this run."""
        return self._hits.get(point, 0)

    def record(self, report: FailureReport) -> FailureReport:
        """Collect a report and mirror it into the live metrics registry."""
        self.reports.append(report)
        count_fault_metrics(report)
        return report


class NullFaultScope(FaultScope):
    """Scope used outside any run: never fires, retains nothing."""

    def __init__(self):
        super().__init__(algorithm="", plan=EMPTY_PLAN)

    def fire(self, point: str, **_context) -> Optional[FaultSpec]:
        return None

    def record(self, report: FailureReport) -> FailureReport:
        return report


_ACTIVE_SCOPE: ContextVar[Optional[FaultScope]] = ContextVar(
    "repro_active_fault_scope", default=None)


def current_fault_scope() -> FaultScope:
    """The active scope, or a throwaway :class:`NullFaultScope`."""
    scope = _ACTIVE_SCOPE.get()
    if scope is not None:
        return scope
    return NullFaultScope()


@contextmanager
def fault_scope(algorithm: str, plan: Optional[FaultPlan] = None,
                policy: Optional[RecoveryPolicy] = None
                ) -> Iterator[FaultScope]:
    """Open a fresh fault scope for one pipeline run."""
    scope = FaultScope(algorithm, plan=plan, policy=policy)
    token = _ACTIVE_SCOPE.set(scope)
    try:
        yield scope
    finally:
        _ACTIVE_SCOPE.reset(token)
