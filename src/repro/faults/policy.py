"""Recovery policies: how much retrying, regrowing, and falling back.

A :class:`RecoveryPolicy` is the single knob set consulted by every
recovery site — the thread-pool task engine, the GPU kernel relauncher, the
capacity regrow loops, and the pipeline fallback ladders.  Policies are
immutable; :func:`activate_policy` installs one ambiently (contextvar, same
idiom as the tracer) and :func:`current_policy` reads it back, defaulting
to :data:`DEFAULT_RECOVERY_POLICY`.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded-retry / backoff / fallback parameters."""

    #: Retries granted to one fault episode before it is declared
    #: unrecovered (the first attempt is not a retry).
    max_retries: int = 3
    #: Simulated backoff before the first retry, seconds.
    backoff_base_seconds: float = 1e-4
    #: Exponential backoff multiplier per further retry.
    backoff_factor: float = 2.0
    #: Fraction of a crashed task's cost charged as wasted work: the crash
    #: is assumed to land mid-task, so half the work is repeated on average.
    crash_cost_fraction: float = 0.5
    #: Capacity multiplier applied when regrowing an overflowed structure
    #: (and divisor when re-splitting an oversized GPU sub-list).
    regrow_factor: int = 2
    #: GPU pipeline that exhausts kernel retries falls back to cbase-npj.
    gpu_cpu_fallback: bool = True
    #: GSH skew-split failure falls back to Gbase sub-list decomposition.
    gsh_sublist_fallback: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.backoff_base_seconds < 0:
            raise ConfigError("backoff_base_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.crash_cost_fraction <= 1.0:
            raise ConfigError("crash_cost_fraction must be in [0, 1]")
        if self.regrow_factor < 2:
            raise ConfigError("regrow_factor must be >= 2")

    def backoff_seconds(self, retry: int) -> float:
        """Simulated backoff before the ``retry``-th retry (1-based)."""
        if retry < 1:
            return 0.0
        return self.backoff_base_seconds * self.backoff_factor ** (retry - 1)


DEFAULT_RECOVERY_POLICY = RecoveryPolicy()

_ACTIVE_POLICY: ContextVar[Optional[RecoveryPolicy]] = ContextVar(
    "repro_active_recovery_policy", default=None)


def current_policy() -> RecoveryPolicy:
    """The ambient recovery policy (default policy when none installed)."""
    policy = _ACTIVE_POLICY.get()
    return policy if policy is not None else DEFAULT_RECOVERY_POLICY


@contextmanager
def activate_policy(policy: RecoveryPolicy) -> Iterator[RecoveryPolicy]:
    """Install ``policy`` as the ambient recovery policy for the block."""
    token = _ACTIVE_POLICY.set(policy)
    try:
        yield policy
    finally:
        _ACTIVE_POLICY.reset(token)
