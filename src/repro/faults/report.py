"""Structured failure reports.

Every fault episode — injected or organic, recovered or not — becomes one
:class:`FailureReport`: what failed (kind + injection point), where
(algorithm + phase), what the recovery layer did about it (action, retries,
backoff), and the structured error context.  Pipelines attach the reports to
``JoinResult.faults``; :func:`count_fault_metrics` mirrors each report into
the run's metrics registry so the ``faults.*`` counters of an exported trace
always agree with the report list — an invariant that
:func:`verify_result_faults` (behind ``repro trace --check``) enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.trace import current_tracer

REPORT_FORMAT_VERSION = 1

#: Counter names mirrored into the metrics registry per report.
INJECTED_COUNTER = "faults.injected"
RECOVERED_COUNTER = "faults.recovered"
UNRECOVERED_COUNTER = "faults.unrecovered"
RETRIES_COUNTER = "faults.retries"


@dataclass
class FailureReport:
    """One fault episode and how the run handled it."""

    #: Fault class, one of :data:`repro.faults.plan.FAULT_KINDS`.
    kind: str
    #: Injection point that produced the episode (``task``, ``kernel``, ...).
    point: str
    #: Algorithm whose run saw the fault.
    algorithm: str
    #: Pipeline phase (root span name) active when the fault fired.
    phase: str = ""
    #: What recovery did: ``retry``, ``regrow``, ``re-split``, ``re-run``,
    #: ``relaunch``, ``rewrite``, ``fallback:<target>``, or ``abort``.
    action: str = ""
    recovered: bool = False
    #: True when the episode came from an injected :class:`FaultSpec`
    #: (False for organic failures the recovery layer also handles).
    injected: bool = True
    retries: int = 0
    #: Total simulated backoff charged to the schedule, seconds.
    backoff_seconds: float = 0.0
    #: ``str()`` of the triggering error, if any.
    error: str = ""
    #: Structured error context (partition id, capacity, observed size...).
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-compatible dict form (context values coerced to scalars)."""
        return {
            "report_format_version": REPORT_FORMAT_VERSION,
            "kind": self.kind,
            "point": self.point,
            "algorithm": self.algorithm,
            "phase": self.phase,
            "action": self.action,
            "recovered": self.recovered,
            "injected": self.injected,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "error": self.error,
            "context": {key: _jsonable(value)
                        for key, value in self.context.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FailureReport":
        """Rebuild a report from its dict form."""
        return cls(
            kind=data["kind"],
            point=data["point"],
            algorithm=data["algorithm"],
            phase=data.get("phase", ""),
            action=data.get("action", ""),
            recovered=bool(data.get("recovered", False)),
            injected=bool(data.get("injected", True)),
            retries=int(data.get("retries", 0)),
            backoff_seconds=float(data.get("backoff_seconds", 0.0)),
            error=data.get("error", ""),
            context=dict(data.get("context", {})),
        )

    def summary_line(self) -> str:
        """One-line human-readable form for CLI output."""
        outcome = "recovered" if self.recovered else "UNRECOVERED"
        origin = "injected" if self.injected else "organic"
        extra = f" retries={self.retries}" if self.retries else ""
        return (f"{self.algorithm}/{self.phase or '?'}: {origin} {self.kind} "
                f"at {self.point} -> {outcome} ({self.action}){extra}")


def _jsonable(value):
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if hasattr(value, "__int__") and not isinstance(value, float):
        return int(value)
    if isinstance(value, float):
        return value
    return str(value)


def current_phase_name() -> str:
    """Name of the outermost open span — the pipeline phase label."""
    tracer = current_tracer()
    stack = getattr(tracer, "_stack", [])
    return stack[0].name if stack else ""


def count_fault_metrics(report: FailureReport, metrics=None) -> None:
    """Mirror one report into the metrics registry (live tracer)."""
    if metrics is None:
        metrics = current_tracer().metrics
    if report.injected:
        metrics.counter(INJECTED_COUNTER).inc()
    if report.recovered:
        metrics.counter(RECOVERED_COUNTER).inc()
    else:
        metrics.counter(UNRECOVERED_COUNTER).inc()
    metrics.counter(f"faults.kind.{report.kind}").inc()
    if report.retries:
        metrics.counter(RETRIES_COUNTER).inc(report.retries)


def bump_trace_counter(trace_metrics: Dict, name: str, amount: int) -> None:
    """Bump a counter in a frozen TraceRecord metrics snapshot.

    Used for faults discovered after a run's trace was recorded (e.g. a
    corrupted artifact found at export time), so the snapshot stays
    consistent with ``result.faults``.
    """
    if amount == 0:
        return
    entry = trace_metrics.setdefault(name, {"kind": "counter", "value": 0})
    entry["value"] = int(entry.get("value", 0)) + amount


def attach_posthoc_report(result, report: FailureReport) -> None:
    """Append a post-run report to a result and patch its trace metrics."""
    result.faults.append(report)
    trace = getattr(result, "trace", None)
    if trace is None:
        return
    if report.injected:
        bump_trace_counter(trace.metrics, INJECTED_COUNTER, 1)
    bump_trace_counter(
        trace.metrics,
        RECOVERED_COUNTER if report.recovered else UNRECOVERED_COUNTER, 1)
    bump_trace_counter(trace.metrics, f"faults.kind.{report.kind}", 1)
    bump_trace_counter(trace.metrics, RETRIES_COUNTER, report.retries)


def _counter_value(trace_metrics: Dict, name: str) -> int:
    entry = trace_metrics.get(name)
    if not isinstance(entry, dict):
        return 0
    return int(entry.get("value", 0))


def verify_result_faults(result) -> Optional[str]:
    """Check a JoinResult's failure reports for internal consistency.

    Returns ``None`` when (a) every report round-trips through its dict
    form and (b) the trace's ``faults.*`` counters agree with the report
    list; otherwise a human-readable description of the first problem.
    A result with no reports and no fault counters passes trivially.
    """
    reports: List[FailureReport] = list(getattr(result, "faults", []) or [])
    algorithm = getattr(result, "algorithm", "?")
    for i, report in enumerate(reports):
        rebuilt = FailureReport.from_dict(report.to_dict())
        if rebuilt.to_dict() != report.to_dict():
            return (f"{algorithm}: failure report #{i} does not round-trip "
                    f"through its serialized form")
    trace = getattr(result, "trace", None)
    if trace is None:
        if reports:
            return (f"{algorithm}: {len(reports)} failure report(s) but no "
                    "trace to carry the fault counters")
        return None
    injected = sum(1 for r in reports if r.injected)
    recovered = sum(1 for r in reports if r.recovered)
    unrecovered = sum(1 for r in reports if not r.recovered)
    retries = sum(r.retries for r in reports)
    expected = {
        INJECTED_COUNTER: injected,
        RECOVERED_COUNTER: recovered,
        UNRECOVERED_COUNTER: unrecovered,
        RETRIES_COUNTER: retries,
    }
    for name, want in expected.items():
        have = _counter_value(trace.metrics, name)
        if have != want:
            return (f"{algorithm}: trace counter {name} is {have} but the "
                    f"{len(reports)} failure report(s) imply {want}")
    return None
