"""Deterministic fault injection and recovery.

The fault plane has four layers:

* :mod:`repro.faults.plan` — what to inject: :class:`FaultSpec` /
  :class:`FaultPlan`, the seeded sweep builder, and the fault-class ->
  injection-point mapping.
* :mod:`repro.faults.policy` — how to recover: bounded retries, backoff,
  regrow factors, and the fallback switches.
* :mod:`repro.faults.scope` — per-run state: hit counting, spec matching,
  and :class:`FailureReport` collection, ambient via
  :func:`current_fault_scope`.
* :mod:`repro.faults.recovery` — the shared retry engine used by every
  task-shaped recovery site.

:mod:`repro.faults.chaos` (imported lazily by the CLI to avoid an import
cycle with the algorithm registry) sweeps a seeded plan over the pipelines
and verifies output correctness under every fault.
"""

from repro.faults.plan import (
    ARTIFACT_CORRUPTION,
    CAPACITY_OVERFLOW,
    DEFAULT_CHAOS_ALGORITHMS,
    DEFAULT_SLOW_SECONDS,
    EMPTY_PLAN,
    FAULT_KINDS,
    GPU_ALGORITHM_NAMES,
    INJECTION_POINTS,
    KERNEL_ABORT,
    KERNEL_OOM,
    SLOW,
    WORKER_CRASH,
    FaultPlan,
    FaultSpec,
    injection_point,
    kinds_for,
    seeded_plan,
)
from repro.faults.policy import (
    DEFAULT_RECOVERY_POLICY,
    RecoveryPolicy,
    activate_policy,
    current_policy,
)
from repro.faults.recovery import (
    FaultEpisode,
    TaskOutcome,
    consume_injected_faults,
    run_task_with_recovery,
    scale_counters,
)
from repro.faults.report import (
    FailureReport,
    attach_posthoc_report,
    count_fault_metrics,
    current_phase_name,
    verify_result_faults,
)
from repro.faults.scope import (
    FaultScope,
    NullFaultScope,
    activate_plan,
    current_fault_scope,
    current_plan,
    fault_scope,
)

__all__ = [
    "ARTIFACT_CORRUPTION",
    "CAPACITY_OVERFLOW",
    "DEFAULT_CHAOS_ALGORITHMS",
    "DEFAULT_RECOVERY_POLICY",
    "DEFAULT_SLOW_SECONDS",
    "EMPTY_PLAN",
    "FAULT_KINDS",
    "FaultEpisode",
    "FailureReport",
    "FaultPlan",
    "FaultScope",
    "FaultSpec",
    "GPU_ALGORITHM_NAMES",
    "INJECTION_POINTS",
    "KERNEL_ABORT",
    "KERNEL_OOM",
    "NullFaultScope",
    "RecoveryPolicy",
    "SLOW",
    "TaskOutcome",
    "WORKER_CRASH",
    "activate_plan",
    "activate_policy",
    "attach_posthoc_report",
    "consume_injected_faults",
    "count_fault_metrics",
    "current_fault_scope",
    "current_phase_name",
    "current_plan",
    "current_policy",
    "fault_scope",
    "injection_point",
    "kinds_for",
    "run_task_with_recovery",
    "scale_counters",
    "seeded_plan",
    "verify_result_faults",
]
