"""The chaos harness behind ``repro chaos``.

Sweeps a seeded :class:`~repro.faults.plan.FaultPlan` over the four join
pipelines: every spec runs in isolation (one fault per run, so a failure
is attributable), and each run must end in one of exactly two states —

* **recovered**: the run completes and its output is identical to the
  fault-free baseline (count + order-independent checksum), with the fault
  recorded on ``JoinResult.faults`` and mirrored into the trace metrics
  (checked by :func:`~repro.faults.report.verify_result_faults`) and the
  trace still summing to the reported total; or
* **typed failure**: the run raises a :class:`~repro.errors.ReproError`
  subclass carrying the episode's :class:`FailureReport` — never a bare
  traceback.

Artifact-corruption specs exercise the serialization plane instead: a torn
JSONL append (simulated crash mid-write) must be detected by the tolerant
loader, repaired by an atomic rewrite, and recorded as a post-hoc report.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.data.relation import JoinInput
from repro.errors import ArtifactCorruptionError, ReproError
from repro.exec.result import JoinResult
from repro.faults.plan import (
    ARTIFACT_CORRUPTION,
    DEFAULT_CHAOS_ALGORITHMS,
    FaultPlan,
    FaultSpec,
    seeded_plan,
)
from repro.faults.policy import RecoveryPolicy, activate_policy, current_policy
from repro.faults.report import (
    FailureReport,
    attach_posthoc_report,
    verify_result_faults,
)
from repro.faults.scope import activate_plan, fault_scope
from repro.obs.trace import verify_result_trace


@dataclass
class ChaosCase:
    """Outcome of one injected fault against one algorithm."""

    algorithm: str
    spec: FaultSpec
    ok: bool
    #: "recovered", "degraded", "fallback", "typed-error", or "repaired"
    #: (artifact specs); failures carry the reason in ``detail``.
    outcome: str
    detail: str = ""
    reports: List[FailureReport] = field(default_factory=list)

    def summary_line(self) -> str:
        status = "ok " if self.ok else "FAIL"
        line = (f"[{status}] {self.spec.label():<42} -> {self.outcome}")
        if self.detail:
            line += f"  ({self.detail})"
        return line


@dataclass
class ChaosOutcome:
    """Everything one chaos sweep observed."""

    seed: int
    plan: FaultPlan
    baselines: Dict[str, JoinResult]
    cases: List[ChaosCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def n_failed(self) -> int:
        return sum(1 for case in self.cases if not case.ok)

    def render(self) -> str:
        lines = [f"chaos sweep: seed={self.seed} "
                 f"specs={len(self.plan)} algorithms="
                 f"{sorted(self.baselines)}"]
        for case in self.cases:
            lines.append("  " + case.summary_line())
        injected = sum(
            sum(1 for r in case.reports if r.injected)
            for case in self.cases)
        recovered = sum(
            sum(1 for r in case.reports if r.recovered)
            for case in self.cases)
        lines.append(
            f"{len(self.cases) - self.n_failed}/{len(self.cases)} cases ok; "
            f"{injected} injected fault(s), {recovered} recovered episode(s)")
        return "\n".join(lines)


def _result_checks(result: JoinResult, baseline: JoinResult) -> Optional[str]:
    """All invariants a completed faulted run must satisfy."""
    if not result.matches(baseline):
        return (f"output diverged: count {result.output_count} vs "
                f"{baseline.output_count}, checksum "
                f"{result.output_checksum:#x} vs "
                f"{baseline.output_checksum:#x}")
    if not any(r.injected for r in result.faults):
        return "run completed but no injected fault was recorded"
    error = verify_result_faults(result)
    if error is not None:
        return error
    return verify_result_trace(result)


def _classify(result: JoinResult) -> str:
    if result.meta.get("fallback"):
        return f"fallback:{result.meta['fallback']}"
    if result.meta.get("degraded"):
        return f"degraded:{result.meta['degraded']}"
    return "recovered"


def run_spec(algorithm: str, spec: FaultSpec, join_input: JoinInput,
             baseline: JoinResult,
             policy: Optional[RecoveryPolicy] = None) -> ChaosCase:
    """Run one pipeline with exactly one fault spec active."""
    from repro.api import make_join  # local import: api imports the pipelines

    plan = FaultPlan((spec,), name=f"chaos-{spec.label()}")
    with activate_plan(plan), activate_policy(policy or current_policy()):
        try:
            result = make_join(algorithm).run(join_input)
        except ReproError as exc:
            report = getattr(exc, "report", None)
            if report is None:
                return ChaosCase(
                    algorithm, spec, ok=False, outcome="typed-error",
                    detail=f"{type(exc).__name__} carries no FailureReport: "
                           f"{exc}")
            return ChaosCase(algorithm, spec, ok=True, outcome="typed-error",
                             detail=type(exc).__name__, reports=[report])
        except Exception as exc:  # noqa: BLE001 - the contract under test
            return ChaosCase(
                algorithm, spec, ok=False, outcome="bare-exception",
                detail=f"{type(exc).__name__}: {exc}")
    error = _result_checks(result, baseline)
    return ChaosCase(algorithm, spec, ok=error is None,
                     outcome=_classify(result), detail=error or "",
                     reports=list(result.faults))


def run_artifact_spec(algorithm: str, spec: FaultSpec,
                      baseline: JoinResult,
                      artifact_dir: Path) -> ChaosCase:
    """Exercise the torn-append / tolerant-load / atomic-rewrite path."""
    from repro.exec.serialize import (
        append_results_jsonl,
        results_from_jsonl_file,
        results_to_jsonl,
    )

    path = Path(artifact_dir) / f"{algorithm}-chaos.jsonl"
    if path.exists():
        path.unlink()
    append_results_jsonl([baseline], path)  # one intact line
    plan = FaultPlan((spec,), name=f"chaos-{spec.label()}")
    reports: List[FailureReport] = []
    with activate_plan(plan), fault_scope(algorithm) as scope:
        try:
            append_results_jsonl([baseline], path)
        except ArtifactCorruptionError as exc:
            if exc.report is None:
                return ChaosCase(
                    algorithm, spec, ok=False, outcome="typed-error",
                    detail="ArtifactCorruptionError carries no report")
            reports.extend(scope.reports)
        else:
            return ChaosCase(
                algorithm, spec, ok=False, outcome="no-injection",
                detail="artifact fault did not fire on append")
    # Recovery: tolerant load skips the torn trailing line (with a
    # warning), then the artifact is rewritten atomically and reloaded
    # strictly — the repaired file must round-trip every surviving record.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        loaded = results_from_jsonl_file(path, tolerant=True)
    if not any(issubclass(w.category, RuntimeWarning) for w in caught):
        return ChaosCase(algorithm, spec, ok=False, outcome="repaired",
                         detail="tolerant loader did not warn on torn line")
    if len(loaded) != 1 or not loaded[0].matches(baseline):
        return ChaosCase(algorithm, spec, ok=False, outcome="repaired",
                         detail=f"tolerant load returned {len(loaded)} "
                                "record(s) or a diverged record")
    tmp = path.with_suffix(".tmp")
    tmp.write_text(results_to_jsonl(loaded), encoding="utf-8")
    os.replace(tmp, path)
    repaired = results_from_jsonl_file(path)  # strict: must parse clean
    recovery = FailureReport(
        kind=ARTIFACT_CORRUPTION, point="artifact", algorithm=algorithm,
        action="rewrite", recovered=True, injected=True,
        error="torn trailing line dropped; artifact rewritten atomically",
        context={"path": str(path), "records_kept": len(repaired)},
    )
    attach_posthoc_report(repaired[0], recovery)
    reports.append(recovery)
    error = verify_result_faults(repaired[0])
    if error is not None:
        return ChaosCase(algorithm, spec, ok=False, outcome="repaired",
                         detail=error)
    if not repaired[0].matches(baseline):
        return ChaosCase(algorithm, spec, ok=False, outcome="repaired",
                         detail="repaired record diverged from baseline")
    return ChaosCase(algorithm, spec, ok=True, outcome="repaired",
                     reports=reports)


def run_chaos(
    join_input: JoinInput,
    seed: int = 42,
    algorithms: Sequence[str] = DEFAULT_CHAOS_ALGORITHMS,
    policy: Optional[RecoveryPolicy] = None,
    artifact_dir: Optional[Path] = None,
) -> ChaosOutcome:
    """Run the full seeded sweep: every fault class against every algorithm.

    Baselines run fault-free first; each spec then runs in isolation
    against its algorithm and is checked for exact recovery (or a typed,
    report-carrying error).  Deterministic for a given (seed, join_input).
    """
    from repro.api import make_join  # local import: api imports the pipelines

    plan = seeded_plan(seed, algorithms)
    baselines: Dict[str, JoinResult] = {}
    for algorithm in algorithms:
        baseline = make_join(algorithm).run(join_input)
        if baseline.faults:
            raise ReproError(
                f"fault-free baseline for {algorithm} recorded "
                f"{len(baseline.faults)} fault report(s)")
        baselines[algorithm] = baseline
    outcome = ChaosOutcome(seed=seed, plan=plan, baselines=baselines)
    own_tmp = None
    if artifact_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        artifact_dir = Path(own_tmp.name)
    try:
        for spec in plan.specs:
            algorithm = spec.algorithm
            if spec.kind == ARTIFACT_CORRUPTION:
                case = run_artifact_spec(algorithm, spec,
                                         baselines[algorithm],
                                         Path(artifact_dir))
            else:
                case = run_spec(algorithm, spec, join_input,
                                baselines[algorithm], policy=policy)
            outcome.cases.append(case)
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return outcome
