"""Workload generation: relations, zipf tables, graphs, histograms."""

from repro.data.generators import (
    constant_key_input,
    input_from_frequencies,
    sequential_input,
    uniform_input,
)
from repro.data.graph import (
    EdgeTable,
    count_two_hop_paths,
    power_law_graph,
    two_hop_join_input,
)
from repro.data.histogram import KeyHistogram, join_output_checksum, join_output_count
from repro.data.io import (
    load_join_input,
    load_relation,
    save_join_input,
    save_relation,
)
from repro.data.relation import JoinInput, Relation
from repro.data.sales import SalesWorkload, generate_sales
from repro.data.stream import (
    stream_sales_lineitems_input,
    stream_uniform_input,
    stream_zipf_input,
)
from repro.data.zipf import ZipfWorkload, zipf_probabilities, zipf_rank_counts_approx

__all__ = [
    "Relation",
    "JoinInput",
    "KeyHistogram",
    "join_output_count",
    "join_output_checksum",
    "ZipfWorkload",
    "zipf_probabilities",
    "zipf_rank_counts_approx",
    "uniform_input",
    "sequential_input",
    "constant_key_input",
    "input_from_frequencies",
    "EdgeTable",
    "power_law_graph",
    "two_hop_join_input",
    "count_two_hop_paths",
    "save_relation",
    "load_relation",
    "save_join_input",
    "load_join_input",
    "SalesWorkload",
    "generate_sales",
    "stream_sales_lineitems_input",
    "stream_uniform_input",
    "stream_zipf_input",
]
