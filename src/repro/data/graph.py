"""Graph-analysis workloads: the paper's motivating use case.

The introduction motivates skewed joins with graph analytics: *"The vertex
degrees of real-world graphs often exhibit power-law distributions...
join operations on graphs often see highly skewed join keys."*

This module generates power-law graphs (Chung-Lu style expected-degree
model) and converts them into edge-table join inputs.  Joining the edge
table with itself on ``dst = src`` enumerates length-2 paths — the join
whose key column is exactly the power-law degree distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import JoinInput, Relation
from repro.errors import WorkloadError
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, SeedLike, make_rng


@dataclass
class EdgeTable:
    """A directed edge list stored as two vertex columns."""

    src: np.ndarray
    dst: np.ndarray

    def __post_init__(self):
        self.src = np.asarray(self.src, dtype=KEY_DTYPE)
        self.dst = np.asarray(self.dst, dtype=KEY_DTYPE)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise WorkloadError("edge columns must be equal-length 1-D arrays")

    def __len__(self) -> int:
        return int(self.src.size)

    @property
    def n_vertices(self) -> int:
        """Number of vertices (max id + 1)."""
        if len(self) == 0:
            return 0
        return int(max(self.src.max(), self.dst.max())) + 1

    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex."""
        return np.bincount(self.src, minlength=self.n_vertices)

    def in_degrees(self) -> np.ndarray:
        """In-degree per vertex."""
        return np.bincount(self.dst, minlength=self.n_vertices)


def power_law_graph(n_vertices: int, n_edges: int, exponent: float = 2.1,
                    seed: SeedLike = 0) -> EdgeTable:
    """Generate a directed power-law graph (Chung-Lu expected degrees).

    Vertex v gets weight (v+1) ** (-1/(exponent-1)); edge endpoints are
    drawn independently proportional to the weights, so both in- and
    out-degree follow a power law with the given exponent.
    """
    if n_vertices <= 0 or n_edges < 0:
        raise WorkloadError("graph sizes must be positive")
    if exponent <= 1.0:
        raise WorkloadError("power-law exponent must exceed 1")
    rng = make_rng(seed)
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    cumulative = np.cumsum(probs)
    cumulative[-1] = 1.0
    vertex_ids = rng.permutation(n_vertices).astype(KEY_DTYPE)
    src = vertex_ids[np.searchsorted(cumulative, rng.random(n_edges), side="right")]
    dst = vertex_ids[np.searchsorted(cumulative, rng.random(n_edges), side="right")]
    return EdgeTable(src=src, dst=dst)


def two_hop_join_input(edges: EdgeTable, seed: SeedLike = 0) -> JoinInput:
    """Self-join input enumerating 2-hop paths: R.dst = S.src.

    R carries (key=dst, payload=src) and S carries (key=src, payload=dst),
    so each output pair (r_payload, s_payload) is one path a -> b -> c.
    """
    rng = make_rng(seed)
    r = Relation(edges.dst.copy(), edges.src.astype(PAYLOAD_DTYPE), name="edges_by_dst")
    s = Relation(edges.src.copy(), edges.dst.astype(PAYLOAD_DTYPE), name="edges_by_src")
    __ = rng  # seed kept for interface symmetry; no randomness needed here
    return JoinInput(r=r, s=s, meta={"generator": "two_hop",
                                     "n_edges": len(edges)})


def count_two_hop_paths(edges: EdgeTable) -> int:
    """Ground truth: number of length-2 paths = sum_v in_deg(v)*out_deg(v)."""
    n = edges.n_vertices
    indeg = np.bincount(edges.dst, minlength=n).astype(object)
    outdeg = np.bincount(edges.src, minlength=n).astype(object)
    return int(np.sum(indeg * outdeg))
