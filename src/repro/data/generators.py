"""Additional workload generators beyond the paper's zipf tables.

These cover the unit/property-test space (uniform, sequential, constant,
hand-written histograms) and the example applications.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.relation import JoinInput, Relation
from repro.errors import WorkloadError
from repro.types import KEY_DTYPE, SeedLike, make_rng


def uniform_input(n_r: int, n_s: int, n_keys: Optional[int] = None,
                  seed: SeedLike = 0) -> JoinInput:
    """Uniformly distributed keys shared by both tables."""
    if n_keys is None:
        n_keys = max(n_r, n_s, 1)
    rng = make_rng(seed)
    r = Relation.from_keys(
        rng.integers(0, n_keys, size=n_r, dtype=np.uint64).astype(KEY_DTYPE),
        seed=rng, name="R")
    s = Relation.from_keys(
        rng.integers(0, n_keys, size=n_s, dtype=np.uint64).astype(KEY_DTYPE),
        seed=rng, name="S")
    return JoinInput(r=r, s=s, meta={"generator": "uniform", "n_keys": n_keys})


def sequential_input(n: int, seed: SeedLike = 0) -> JoinInput:
    """Primary-key/foreign-key style input: R keys 0..n-1, S a shuffle."""
    rng = make_rng(seed)
    r_keys = np.arange(n, dtype=KEY_DTYPE)
    s_keys = rng.permutation(n).astype(KEY_DTYPE)
    return JoinInput(
        r=Relation.from_keys(r_keys, seed=rng, name="R"),
        s=Relation.from_keys(s_keys, seed=rng, name="S"),
        meta={"generator": "sequential"},
    )


def constant_key_input(n_r: int, n_s: int, key: int = 7,
                       seed: SeedLike = 0) -> JoinInput:
    """Degenerate full-skew input: every tuple shares one key.

    The join output is the full cartesian product — the extreme point of the
    paper's skew axis and a stress test for the skew-handling paths.
    """
    rng = make_rng(seed)
    r = Relation.from_keys(np.full(n_r, key, dtype=KEY_DTYPE), seed=rng, name="R")
    s = Relation.from_keys(np.full(n_s, key, dtype=KEY_DTYPE), seed=rng, name="S")
    return JoinInput(r=r, s=s, meta={"generator": "constant", "key": key})


def input_from_frequencies(
    r_freqs: Sequence[int],
    s_freqs: Sequence[int],
    keys: Optional[Sequence[int]] = None,
    seed: SeedLike = 0,
    shuffle: bool = True,
) -> JoinInput:
    """Build an input with exactly the given per-key frequencies.

    ``r_freqs[i]`` and ``s_freqs[i]`` are the number of occurrences of key
    ``keys[i]`` (default: key i) in R and S respectively.  Useful for
    hand-constructed skew scenarios in tests.
    """
    r_freqs = np.asarray(r_freqs, dtype=np.int64)
    s_freqs = np.asarray(s_freqs, dtype=np.int64)
    if r_freqs.shape != s_freqs.shape:
        raise WorkloadError("r_freqs and s_freqs must have equal length")
    if np.any(r_freqs < 0) or np.any(s_freqs < 0):
        raise WorkloadError("frequencies must be non-negative")
    if keys is None:
        key_arr = np.arange(r_freqs.size, dtype=KEY_DTYPE)
    else:
        key_arr = np.asarray(keys, dtype=KEY_DTYPE)
        if key_arr.size != r_freqs.size:
            raise WorkloadError("keys must match the frequency arrays")
        if np.unique(key_arr).size != key_arr.size:
            raise WorkloadError("keys must be unique")
    rng = make_rng(seed)
    r_keys = np.repeat(key_arr, r_freqs)
    s_keys = np.repeat(key_arr, s_freqs)
    if shuffle:
        r_keys = rng.permutation(r_keys)
        s_keys = rng.permutation(s_keys)
    return JoinInput(
        r=Relation.from_keys(r_keys, seed=rng, name="R"),
        s=Relation.from_keys(s_keys, seed=rng, name="S"),
        meta={"generator": "frequencies"},
    )
