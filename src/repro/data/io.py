"""Persistence for relations and join inputs (.npz archives).

Lets users generate a workload once and reuse it across runs or share it
between machines — the workflow the paper's own experiments imply (fixed
generated tables swept over algorithms).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.data.relation import JoinInput, Relation
from repro.errors import WorkloadError

_FORMAT_KEY = "repro_format"
_FORMAT_VERSION = 1


def save_relation(rel: Relation, path: Union[str, os.PathLike]) -> None:
    """Write one relation to a compressed .npz archive."""
    np.savez_compressed(
        path,
        **{
            _FORMAT_KEY: np.int64(_FORMAT_VERSION),
            "kind": np.bytes_(b"relation"),
            "name": np.bytes_(rel.name.encode()),
            "keys": rel.keys,
            "payloads": rel.payloads,
        },
    )


def load_relation(path: Union[str, os.PathLike]) -> Relation:
    """Read a relation written by :func:`save_relation`."""
    with np.load(path) as data:
        _check_format(data, b"relation", path)
        return Relation(
            data["keys"],
            data["payloads"],
            name=bytes(data["name"]).decode(),
        )


def save_join_input(join_input: JoinInput,
                    path: Union[str, os.PathLike]) -> None:
    """Write a full join input (both tables) to one archive."""
    meta_keys = sorted(str(k) for k in join_input.meta)
    meta_blob = "\n".join(
        f"{k}={join_input.meta[k]!r}" for k in meta_keys
    )
    np.savez_compressed(
        path,
        **{
            _FORMAT_KEY: np.int64(_FORMAT_VERSION),
            "kind": np.bytes_(b"join_input"),
            "r_name": np.bytes_(join_input.r.name.encode()),
            "r_keys": join_input.r.keys,
            "r_payloads": join_input.r.payloads,
            "s_name": np.bytes_(join_input.s.name.encode()),
            "s_keys": join_input.s.keys,
            "s_payloads": join_input.s.payloads,
            "meta": np.bytes_(meta_blob.encode()),
        },
    )


def load_join_input(path: Union[str, os.PathLike]) -> JoinInput:
    """Read a join input written by :func:`save_join_input`.

    The meta mapping is restored as informational strings only.
    """
    with np.load(path) as data:
        _check_format(data, b"join_input", path)
        meta = {}
        blob = bytes(data["meta"]).decode()
        for line in blob.splitlines():
            if "=" in line:
                key, _, value = line.partition("=")
                meta[key] = value
        return JoinInput(
            r=Relation(data["r_keys"], data["r_payloads"],
                       name=bytes(data["r_name"]).decode()),
            s=Relation(data["s_keys"], data["s_payloads"],
                       name=bytes(data["s_name"]).decode()),
            meta=meta,
        )


def _check_format(data, expected_kind: bytes, path) -> None:
    if _FORMAT_KEY not in data:
        raise WorkloadError(f"{path} is not a repro archive")
    if int(data[_FORMAT_KEY]) != _FORMAT_VERSION:
        raise WorkloadError(
            f"{path}: unsupported archive version {int(data[_FORMAT_KEY])}"
        )
    if bytes(data["kind"]) != expected_kind:
        raise WorkloadError(
            f"{path}: expected a {expected_kind.decode()} archive, found "
            f"{bytes(data['kind']).decode()}"
        )
