"""Key-frequency histograms.

Histograms are the backbone of the analytic paper-scale path
(:mod:`repro.analysis.analytic`): the exact operation counts of every join
algorithm in this library are functions of the per-key frequencies in R and
S, so a histogram is all that is needed to reproduce the paper's 32 M and
560 M tuple experiments without materializing the tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.relation import Relation
from repro.errors import WorkloadError

_U64_MASK = (1 << 64) - 1


@dataclass
class KeyHistogram:
    """Sorted unique keys with their occurrence counts."""

    keys: np.ndarray
    counts: np.ndarray

    def __post_init__(self):
        self.keys = np.asarray(self.keys, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.keys.shape != self.counts.shape or self.keys.ndim != 1:
            raise WorkloadError("histogram keys/counts must be equal-length 1-D")
        if self.keys.size > 1 and not np.all(np.diff(self.keys.astype(np.int64)) > 0):
            order = np.argsort(self.keys, kind="stable")
            self.keys = self.keys[order]
            self.counts = self.counts[order]
            if np.any(np.diff(self.keys.astype(np.int64)) == 0):
                raise WorkloadError("histogram keys must be unique")
        if np.any(self.counts < 0):
            raise WorkloadError("histogram counts must be non-negative")

    @property
    def total(self) -> int:
        """Total number of tuples represented."""
        return int(self.counts.sum())

    @property
    def distinct(self) -> int:
        """Number of distinct keys."""
        return int(self.keys.size)

    @staticmethod
    def from_relation(rel: Relation) -> "KeyHistogram":
        """Build from a relation's key column."""
        keys, counts = np.unique(rel.keys, return_counts=True)
        return KeyHistogram(keys.astype(np.uint64), counts)

    @staticmethod
    def from_keys(keys: np.ndarray) -> "KeyHistogram":
        """Build from a raw key array."""
        uniq, counts = np.unique(np.asarray(keys), return_counts=True)
        return KeyHistogram(uniq.astype(np.uint64), counts)

    def count_of(self, key: int) -> int:
        """Occurrences of one key (0 if absent)."""
        idx = np.searchsorted(self.keys, np.uint64(key))
        if idx < self.keys.size and self.keys[idx] == np.uint64(key):
            return int(self.counts[idx])
        return 0

    def top_k(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """The k most frequent keys and their counts, descending."""
        if k <= 0:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
        k = min(k, self.keys.size)
        order = np.argsort(self.counts, kind="stable")[::-1][:k]
        return self.keys[order], self.counts[order]

    def align_with(self, other: "KeyHistogram") -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Intersect two histograms on keys.

        Returns (shared_keys, counts_in_self, counts_in_other).
        """
        shared, idx_self, idx_other = np.intersect1d(
            self.keys, other.keys, assume_unique=True, return_indices=True
        )
        return shared, self.counts[idx_self], other.counts[idx_other]


def join_output_count(hist_r: KeyHistogram, hist_s: KeyHistogram) -> int:
    """Exact equi-join output cardinality: sum over keys of fR(k) * fS(k)."""
    _, cr, cs = hist_r.align_with(hist_s)
    return int(np.sum(cr.astype(object) * cs.astype(object)))


def join_output_checksum(r: Relation, s: Relation) -> int:
    """Ground-truth checksum: sum over matched pairs of rpay * spay mod 2**64.

    Computed per key in closed form: checksum_k = (sum R payloads with key k)
    * (sum S payloads with key k); works because multiplication distributes
    over addition modulo 2**64.
    """
    checksum = 0
    r_keys, r_inv = np.unique(r.keys, return_inverse=True)
    s_keys, s_inv = np.unique(s.keys, return_inverse=True)
    r_sums = np.zeros(r_keys.size, dtype=np.uint64)
    s_sums = np.zeros(s_keys.size, dtype=np.uint64)
    np.add.at(r_sums, r_inv, r.payloads.astype(np.uint64))
    np.add.at(s_sums, s_inv, s.payloads.astype(np.uint64))
    shared, idx_r, idx_s = np.intersect1d(
        r_keys, s_keys, assume_unique=True, return_indices=True
    )
    prods = r_sums[idx_r] * s_sums[idx_s]  # wraps mod 2**64, as intended
    checksum = int(np.sum(prods, dtype=np.uint64))
    return checksum & _U64_MASK
