"""A skewed sales schema (TPC-H-flavoured) for realistic join workloads.

Real sales data is skewed the same way graphs are: a few large accounts
place most orders, and a few popular products dominate line items.  This
module generates a small star schema with zipf-distributed foreign keys,
giving the examples and tests PK-FK joins whose probe side is skewed —
the second real-world scenario (after graphs) where skew-conscious joins
earn their keep.

Schema:

* ``customers``  — primary key per customer; payload = region id.
* ``orders``     — FK ``customer``, payload = order value in cents.
* ``line_items`` — FK ``order``, payload = product id (itself zipf).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import JoinInput, Relation
from repro.data.zipf import zipf_probabilities
from repro.errors import WorkloadError
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, SeedLike, make_rng

#: Default skew of the customer -> orders relationship.
DEFAULT_CUSTOMER_SKEW = 0.9

#: Default skew of the product popularity distribution.
DEFAULT_PRODUCT_SKEW = 1.0


@dataclass
class SalesWorkload:
    """A generated star schema."""

    customers: Relation
    orders: Relation
    line_items: Relation
    #: Order id column aligned with ``line_items`` rows.
    n_regions: int

    def orders_with_customers(self) -> JoinInput:
        """Join input for orders ⋈ customers (R = customers PK side)."""
        return JoinInput(r=self.customers, s=self.orders,
                         meta={"generator": "sales",
                               "join": "orders-customers"})

    def line_items_with_orders(self) -> JoinInput:
        """Join input for line_items ⋈ orders (R = orders PK side).

        R keys are order ids (the orders' row index), S keys are the line
        items' order FKs.
        """
        order_pk = Relation(
            np.arange(len(self.orders), dtype=KEY_DTYPE),
            self.orders.payloads,
            name="orders_pk",
        )
        return JoinInput(r=order_pk, s=self.line_items,
                         meta={"generator": "sales",
                               "join": "lineitems-orders"})


def _zipf_draw(rng: np.random.Generator, n: int, domain: int,
               theta: float) -> np.ndarray:
    probs = zipf_probabilities(domain, theta)
    cumulative = np.cumsum(probs)
    cumulative[-1] = 1.0
    ranks = np.searchsorted(cumulative, rng.random(n), side="right")
    # Shuffle rank -> id so hot keys are not the smallest ids.
    ids = rng.permutation(domain).astype(KEY_DTYPE)
    return ids[ranks]


def generate_sales(
    n_customers: int = 10_000,
    n_orders: int = 100_000,
    n_line_items: int = 400_000,
    customer_skew: float = DEFAULT_CUSTOMER_SKEW,
    product_skew: float = DEFAULT_PRODUCT_SKEW,
    n_products: int = 1_000,
    n_regions: int = 25,
    seed: SeedLike = 0,
) -> SalesWorkload:
    """Generate the full schema with zipf-skewed foreign keys."""
    if min(n_customers, n_orders, n_line_items, n_products, n_regions) <= 0:
        raise WorkloadError("all table sizes must be positive")
    rng = make_rng(seed)

    customers = Relation(
        np.arange(n_customers, dtype=KEY_DTYPE),
        rng.integers(0, n_regions, n_customers,
                     dtype=np.uint32).astype(PAYLOAD_DTYPE),
        name="customers",
    )
    orders = Relation(
        _zipf_draw(rng, n_orders, n_customers, customer_skew),
        rng.integers(100, 100_000, n_orders,
                     dtype=np.uint32).astype(PAYLOAD_DTYPE),
        name="orders",
    )
    line_items = Relation(
        # Orders with more line items: FK also zipf over order ids.
        _zipf_draw(rng, n_line_items, n_orders, customer_skew / 2),
        _zipf_draw(rng, n_line_items, n_products,
                   product_skew).astype(PAYLOAD_DTYPE),
        name="line_items",
    )
    return SalesWorkload(
        customers=customers,
        orders=orders,
        line_items=line_items,
        n_regions=n_regions,
    )
