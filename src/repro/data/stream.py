"""Streaming workload generators: relations written chunk-by-chunk.

The bulk generators (:meth:`ZipfWorkload.generate`, ``uniform_input``,
``generate_sales``) materialize full columns before anything reaches
disk.  The functions here produce the *same tuples* directly into the
on-disk relation format (:mod:`repro.store.relations`) one chunk at a
time, so peak memory during generation is O(domain + chunk), never
O(table).

Bit-identity discipline
-----------------------

``stream_zipf_input`` and ``stream_uniform_input`` are **bit-identical**
to their bulk counterparts for the same seed.  This works because every
random draw they make is chunk-splittable in numpy's Generator:
``rng.random(n)`` and ``rng.integers(..., dtype=uint64)`` consume whole
64-bit words per element, so drawing ``n`` values in chunks yields the
same stream as one bulk call.  The streamed writers replay the bulk
generators' draw order exactly (zipf: R keys, S keys, R payloads,
S payloads; uniform: R keys, R payloads, S keys, S payloads).

``stream_sales_lineitems_input`` is its own reference: the bulk sales
generator draws bounded ``uint32`` integers, which numpy buffers across
calls (chunked != bulk), so the streamed variant redefines payload
draws as ``uint64`` and documents its draw order below.  It is
deterministic in ``(seed, sizes)`` and independent of the chunk size —
the property the tests pin.

Generation state that is O(key domain) — zipf interval tables, the
rank-to-key permutation — stays in memory, exactly as in the bulk path;
only the O(table) columns stream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from repro.data.sales import DEFAULT_CUSTOMER_SKEW, DEFAULT_PRODUCT_SKEW
from repro.data.zipf import ZipfWorkload, zipf_probabilities
from repro.errors import WorkloadError
from repro.store.relations import (
    RelationStreamWriter,
    resolve_stream_chunk_tuples,
)
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, SeedLike, make_rng


def _chunk_sizes(n: int, chunk: int) -> Iterator[int]:
    pos = 0
    while pos < n:
        m = min(chunk, n - pos)
        yield m
        pos += m


def stream_zipf_input(
    directory: Union[str, Path],
    n_r: int,
    n_s: int,
    theta: float,
    n_keys: Optional[int] = None,
    seed: SeedLike = 0,
    codec: Optional[str] = None,
    chunk_tuples: Optional[int] = None,
) -> Path:
    """Write a zipf join input to disk, bit-identical to the bulk path.

    ``open_join_input(directory)`` then yields relations whose columns
    equal ``ZipfWorkload(n_r, n_s, theta, n_keys, seed).generate()``
    exactly.  Returns the manifest path.
    """
    if n_r <= 0 or n_s <= 0:
        raise WorkloadError("streamed relations must be non-empty")
    workload = ZipfWorkload(n_r=n_r, n_s=n_s, theta=theta,
                            n_keys=n_keys, seed=seed)
    chunk = resolve_stream_chunk_tuples(chunk_tuples)
    writer = RelationStreamWriter(directory, codec=codec)
    r_keys = writer.column("r", "R", "keys", KEY_DTYPE)
    s_keys = writer.column("s", "S", "keys", KEY_DTYPE)
    r_pays = writer.column("r", "R", "payloads", PAYLOAD_DTYPE)
    s_pays = writer.column("s", "S", "payloads", PAYLOAD_DTYPE)
    # Replay generate()'s draw order with the workload's own rng and
    # interval-search procedure (same-package access to its internals).
    rng = workload._rng
    for m in _chunk_sizes(n_r, chunk):
        r_keys.append(workload._draw_keys(m, rng))
    for m in _chunk_sizes(n_s, chunk):
        s_keys.append(workload._draw_keys(m, rng))
    for m in _chunk_sizes(n_r, chunk):
        r_pays.append(rng.integers(0, 2**32, size=m,
                                   dtype=np.uint64).astype(PAYLOAD_DTYPE))
    for m in _chunk_sizes(n_s, chunk):
        s_pays.append(rng.integers(0, 2**32, size=m,
                                   dtype=np.uint64).astype(PAYLOAD_DTYPE))
    return writer.finish(meta={"theta": workload.theta,
                               "n_keys": workload.n_keys,
                               "generator": "zipf"})


def stream_uniform_input(
    directory: Union[str, Path],
    n_r: int,
    n_s: int,
    n_keys: Optional[int] = None,
    seed: SeedLike = 0,
    codec: Optional[str] = None,
    chunk_tuples: Optional[int] = None,
) -> Path:
    """Write a uniform join input to disk, bit-identical to the bulk path.

    Matches :func:`repro.data.generators.uniform_input` draw for draw
    (R keys, R payloads, S keys, S payloads).  Returns the manifest path.
    """
    if n_r <= 0 or n_s <= 0:
        raise WorkloadError("streamed relations must be non-empty")
    if n_keys is None:
        n_keys = max(n_r, n_s, 1)
    chunk = resolve_stream_chunk_tuples(chunk_tuples)
    rng = make_rng(seed)
    writer = RelationStreamWriter(directory, codec=codec)
    r_keys = writer.column("r", "R", "keys", KEY_DTYPE)
    r_pays = writer.column("r", "R", "payloads", PAYLOAD_DTYPE)
    s_keys = writer.column("s", "S", "keys", KEY_DTYPE)
    s_pays = writer.column("s", "S", "payloads", PAYLOAD_DTYPE)
    for m in _chunk_sizes(n_r, chunk):
        r_keys.append(rng.integers(0, n_keys, size=m,
                                   dtype=np.uint64).astype(KEY_DTYPE))
    for m in _chunk_sizes(n_r, chunk):
        r_pays.append(rng.integers(0, 2**32, size=m,
                                   dtype=np.uint64).astype(PAYLOAD_DTYPE))
    for m in _chunk_sizes(n_s, chunk):
        s_keys.append(rng.integers(0, n_keys, size=m,
                                   dtype=np.uint64).astype(KEY_DTYPE))
    for m in _chunk_sizes(n_s, chunk):
        s_pays.append(rng.integers(0, 2**32, size=m,
                                   dtype=np.uint64).astype(PAYLOAD_DTYPE))
    return writer.finish(meta={"generator": "uniform", "n_keys": n_keys})


def stream_sales_lineitems_input(
    directory: Union[str, Path],
    n_orders: int = 100_000,
    n_line_items: int = 400_000,
    customer_skew: float = DEFAULT_CUSTOMER_SKEW,
    product_skew: float = DEFAULT_PRODUCT_SKEW,
    n_products: int = 1_000,
    seed: SeedLike = 0,
    codec: Optional[str] = None,
    chunk_tuples: Optional[int] = None,
) -> Path:
    """Write the sales ``line_items ⋈ orders`` input to disk, streamed.

    Draw order (its own reference discipline — see the module
    docstring): order-id permutation, product-id permutation, then
    chunked R payloads (order values), S keys (order FKs via interval
    search), S payloads (product FKs via interval search).  Every
    chunked draw is ``rng.random`` or ``uint64`` integers, so the
    result is independent of the chunk size.  Returns the manifest path.
    """
    if min(n_orders, n_line_items, n_products) <= 0:
        raise WorkloadError("all streamed table sizes must be positive")
    chunk = resolve_stream_chunk_tuples(chunk_tuples)
    rng = make_rng(seed)
    # O(domain) generator state, as in the bulk path.
    order_ids = rng.permutation(n_orders).astype(KEY_DTYPE)
    product_ids = rng.permutation(n_products).astype(KEY_DTYPE)
    order_cum = np.cumsum(zipf_probabilities(n_orders, customer_skew / 2))
    order_cum[-1] = 1.0
    product_cum = np.cumsum(zipf_probabilities(n_products, product_skew))
    product_cum[-1] = 1.0
    writer = RelationStreamWriter(directory, codec=codec)
    r_keys = writer.column("r", "orders_pk", "keys", KEY_DTYPE)
    r_pays = writer.column("r", "orders_pk", "payloads", PAYLOAD_DTYPE)
    s_keys = writer.column("s", "line_items", "keys", KEY_DTYPE)
    s_pays = writer.column("s", "line_items", "payloads", PAYLOAD_DTYPE)
    pos = 0
    for m in _chunk_sizes(n_orders, chunk):
        r_keys.append(np.arange(pos, pos + m, dtype=KEY_DTYPE))
        pos += m
    for m in _chunk_sizes(n_orders, chunk):
        r_pays.append(rng.integers(100, 100_000, size=m,
                                   dtype=np.uint64).astype(PAYLOAD_DTYPE))
    for m in _chunk_sizes(n_line_items, chunk):
        ranks = np.searchsorted(order_cum, rng.random(m), side="right")
        s_keys.append(order_ids[ranks])
    for m in _chunk_sizes(n_line_items, chunk):
        ranks = np.searchsorted(product_cum, rng.random(m), side="right")
        s_pays.append(product_ids[ranks].astype(PAYLOAD_DTYPE))
    return writer.finish(meta={"generator": "sales-stream",
                               "join": "lineitems-orders"})


GENERATORS = {
    "zipf": stream_zipf_input,
    "uniform": stream_uniform_input,
    "sales": stream_sales_lineitems_input,
}
