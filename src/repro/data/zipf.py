"""Zipf-distributed join workloads, generated exactly as in the paper.

Section V-A of the paper: *"we generate an array of intervals for a given
zipf factor.  Each array element stores an interval whose length corresponds
to the probability of the element in the zipf distribution.  Then we
randomly assign a unique key to each interval.  After that, for each input
tuple, we generate a random number, and search it in the interval array...
we model highly skewed cases by using the same interval array and unique key
array for both table R and table S."*

:class:`ZipfWorkload` reproduces that procedure literally (cumulative
interval array + ``searchsorted``), including the shared interval/key arrays
across R and S.  For paper-scale analysis (32 M and 560 M tuples) the module
can also produce per-rank count histograms without materializing tuples.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.histogram import KeyHistogram
from repro.data.relation import JoinInput, Relation
from repro.errors import WorkloadError
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, SeedLike, make_rng

#: LRU bound on the (n_keys, theta) table cache; each entry holds two
#: float64 arrays of n_keys elements.
_ZIPF_CACHE_MAX = 64

_zipf_cache: "OrderedDict[Tuple[int, float], Tuple[np.ndarray, np.ndarray]]" \
    = OrderedDict()
_zipf_cache_hits = 0
_zipf_cache_misses = 0


def _zipf_tables(n_keys: int, theta: float) -> Tuple[np.ndarray, np.ndarray]:
    """The (pmf, cumulative-interval) pair for one (n_keys, theta), cached.

    Building these is O(n_keys) in float64 and dominated the cost of
    instantiating workloads in tests and the diff grid, where the same
    handful of (n, theta) shapes recur constantly.  Cached arrays are
    returned read-only and shared between callers; anything needing to
    mutate must copy.
    """
    global _zipf_cache_hits, _zipf_cache_misses
    if n_keys <= 0:
        raise WorkloadError(f"n_keys must be positive, got {n_keys}")
    if theta < 0:
        raise WorkloadError(f"zipf factor must be non-negative, got {theta}")
    key = (int(n_keys), float(theta))
    cached = _zipf_cache.get(key)
    if cached is not None:
        _zipf_cache_hits += 1
        _zipf_cache.move_to_end(key)
        return cached
    _zipf_cache_misses += 1
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-theta)
    probs = weights / weights.sum()
    intervals = np.cumsum(probs)
    intervals[-1] = 1.0  # guard against float round-off
    probs.setflags(write=False)
    intervals.setflags(write=False)
    _zipf_cache[key] = (probs, intervals)
    while len(_zipf_cache) > _ZIPF_CACHE_MAX:
        _zipf_cache.popitem(last=False)
    return probs, intervals


def zipf_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the table cache (diagnostics, tests)."""
    return {"hits": _zipf_cache_hits, "misses": _zipf_cache_misses,
            "size": len(_zipf_cache), "max_size": _ZIPF_CACHE_MAX}


def clear_zipf_cache() -> None:
    """Drop every cached table and reset the counters."""
    global _zipf_cache_hits, _zipf_cache_misses
    _zipf_cache.clear()
    _zipf_cache_hits = 0
    _zipf_cache_misses = 0


def zipf_probabilities(n_keys: int, theta: float) -> np.ndarray:
    """Zipf pmf over ranks 1..n_keys: p_i proportional to 1 / i**theta.

    ``theta = 0`` degenerates to the uniform distribution, matching the
    paper's zipf-factor-0 configuration.  The returned array is a shared,
    read-only cache entry; copy before mutating.
    """
    return _zipf_tables(n_keys, theta)[0]


@dataclass
class ZipfWorkload:
    """A pair of equal-schema tables with zipf-distributed join keys.

    Parameters mirror the paper's workload: both tables draw keys from the
    *same* interval array and the *same* shuffled unique-key array, which is
    what makes high zipf factors produce matching heavy hitters on both
    sides of the join.
    """

    n_r: int
    n_s: int
    theta: float
    n_keys: Optional[int] = None
    seed: SeedLike = 0
    _probs: np.ndarray = field(init=False, repr=False)
    _intervals: np.ndarray = field(init=False, repr=False)
    _key_of_rank: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.n_r < 0 or self.n_s < 0:
            raise WorkloadError("table sizes must be non-negative")
        if self.n_keys is None:
            # The paper's tables have as many candidate keys as tuples.
            self.n_keys = max(self.n_r, self.n_s, 1)
        if self.n_keys > 2**32:
            raise WorkloadError("key domain exceeds the 4-byte key space")
        rng = make_rng(self.seed)
        # Interval array: cumulative right edges of per-rank intervals.
        # Both arrays come from the shared read-only table cache.
        self._probs, self._intervals = _zipf_tables(self.n_keys, self.theta)
        # Randomly assign a unique key to each interval.
        self._key_of_rank = rng.permutation(self.n_keys).astype(KEY_DTYPE)
        self._rng = rng

    @property
    def probabilities(self) -> np.ndarray:
        """Per-rank probabilities (rank 1 first)."""
        return self._probs

    def key_for_rank(self, rank: int) -> int:
        """The unique key assigned to a 1-based zipf rank."""
        if not 1 <= rank <= self.n_keys:
            raise WorkloadError(f"rank {rank} out of range 1..{self.n_keys}")
        return int(self._key_of_rank[rank - 1])

    def _draw_keys(self, n: int, rng: np.random.Generator,
                   chunk: int = 1 << 23) -> np.ndarray:
        """Draw n keys by the paper's interval-search procedure."""
        out = np.empty(n, dtype=KEY_DTYPE)
        pos = 0
        while pos < n:
            m = min(chunk, n - pos)
            u = rng.random(m)
            ranks = np.searchsorted(self._intervals, u, side="right")
            out[pos:pos + m] = self._key_of_rank[ranks]
            pos += m
        return out

    def generate(self, payload_seed: SeedLike = None) -> JoinInput:
        """Materialize the R and S relations."""
        rng = self._rng
        pay_rng = make_rng(payload_seed) if payload_seed is not None else rng
        r_keys = self._draw_keys(self.n_r, rng)
        s_keys = self._draw_keys(self.n_s, rng)
        r = Relation(
            r_keys,
            pay_rng.integers(0, 2**32, size=self.n_r, dtype=np.uint64).astype(PAYLOAD_DTYPE),
            name="R",
        )
        s = Relation(
            s_keys,
            pay_rng.integers(0, 2**32, size=self.n_s, dtype=np.uint64).astype(PAYLOAD_DTYPE),
            name="S",
        )
        return JoinInput(r=r, s=s, meta={
            "theta": self.theta, "n_keys": self.n_keys, "generator": "zipf",
        })

    def sample_rank_counts(self, n: int, rng: Optional[np.random.Generator] = None,
                           chunk: int = 1 << 23) -> np.ndarray:
        """Draw n tuples and return per-rank counts, without keeping keys.

        This is the exact distribution of a materialized table's histogram
        and is what the paper-scale analytic path consumes.
        """
        rng = rng or self._rng
        counts = np.zeros(self.n_keys, dtype=np.int64)
        pos = 0
        while pos < n:
            m = min(chunk, n - pos)
            u = rng.random(m)
            # Sorting the draws makes the interval search cache friendly
            # (~15x faster at paper scale); the per-rank counts are
            # distributionally identical since only counts are kept.
            u.sort()
            ranks = np.searchsorted(self._intervals, u, side="right")
            counts += np.bincount(ranks, minlength=self.n_keys)
            pos += m
        return counts

    def histograms(self) -> Tuple[KeyHistogram, KeyHistogram]:
        """Sampled key histograms for R and S (paper-scale friendly)."""
        cr = self.sample_rank_counts(self.n_r)
        cs = self.sample_rank_counts(self.n_s)
        keys = self._key_of_rank.astype(np.uint64)
        order = np.argsort(keys, kind="stable")
        return (
            KeyHistogram(keys[order], cr[order]),
            KeyHistogram(keys[order], cs[order]),
        )


def zipf_rank_counts_approx(
    n_tuples: int,
    n_keys: int,
    theta: float,
    seed: SeedLike = 0,
    exact_head: int = 1 << 20,
) -> np.ndarray:
    """Per-rank counts for very large workloads (e.g. 560 M tuples).

    The hottest ``exact_head`` ranks are sampled exactly (Poisson
    approximation to their multinomial counts, excellent for small per-key
    probabilities); the tail ranks receive their expected counts rounded
    stochastically.  Skew behaviour is driven entirely by the head, so this
    preserves every quantity the analytic executors consume while keeping
    memory linear in ``n_keys`` only for one int64 array.
    """
    probs = zipf_probabilities(n_keys, theta)
    rng = make_rng(seed)
    counts = np.zeros(n_keys, dtype=np.int64)
    head = min(exact_head, n_keys)
    counts[:head] = rng.poisson(probs[:head] * n_tuples)
    if head < n_keys:
        expected_tail = probs[head:] * n_tuples
        floor = np.floor(expected_tail)
        frac = expected_tail - floor
        counts[head:] = floor.astype(np.int64) + (rng.random(n_keys - head) < frac)
    return counts
