"""Relations: the paper's narrow <4-byte key, 4-byte payload> tables.

A :class:`Relation` is a pair of equal-length ``uint32`` columns.  All join
algorithms in this library consume and produce relations in this layout,
matching the workload of the paper's Section III/V (32 M tuples of
4 B key + 4 B payload per table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, TUPLE_BYTES, SeedLike, make_rng


@dataclass
class Relation:
    """A column-oriented table of (key, payload) tuples."""

    keys: np.ndarray
    payloads: np.ndarray
    name: str = "rel"

    def __post_init__(self):
        self.keys = np.ascontiguousarray(self.keys, dtype=KEY_DTYPE)
        self.payloads = np.ascontiguousarray(self.payloads, dtype=PAYLOAD_DTYPE)
        if self.keys.ndim != 1 or self.payloads.ndim != 1:
            raise WorkloadError("relation columns must be 1-D arrays")
        if self.keys.shape != self.payloads.shape:
            raise WorkloadError(
                f"column length mismatch: {self.keys.size} keys vs "
                f"{self.payloads.size} payloads"
            )

    def __len__(self) -> int:
        return int(self.keys.size)

    @property
    def nbytes(self) -> int:
        """Size of the relation in bytes (8 bytes per tuple)."""
        return len(self) * TUPLE_BYTES

    def take(self, index: np.ndarray) -> "Relation":
        """Return a new relation of the tuples at the given positions."""
        return Relation(self.keys[index], self.payloads[index], name=self.name)

    def slice(self, start: int, stop: int) -> "Relation":
        """Return a zero-copy view of tuples in [start, stop)."""
        return Relation(self.keys[start:stop], self.payloads[start:stop],
                        name=self.name)

    def concat(self, other: "Relation") -> "Relation":
        """Return a new relation with the tuples of both inputs."""
        return Relation(
            np.concatenate([self.keys, other.keys]),
            np.concatenate([self.payloads, other.payloads]),
            name=self.name,
        )

    @staticmethod
    def empty(name: str = "rel") -> "Relation":
        """An empty instance."""
        return Relation(
            np.empty(0, dtype=KEY_DTYPE), np.empty(0, dtype=PAYLOAD_DTYPE), name=name
        )

    @staticmethod
    def from_keys(keys: np.ndarray, seed: SeedLike = None,
                  name: str = "rel") -> "Relation":
        """Build a relation with the given keys and random payloads."""
        keys = np.asarray(keys, dtype=KEY_DTYPE)
        rng = make_rng(seed)
        payloads = rng.integers(0, 2**32, size=keys.size, dtype=np.uint64)
        return Relation(keys, payloads.astype(PAYLOAD_DTYPE), name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(name={self.name!r}, n={len(self)})"


@dataclass
class JoinInput:
    """A pair of relations to be joined on their key columns."""

    r: Relation
    s: Relation
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.r) == 0 or len(self.s) == 0:
            # Empty inputs are allowed; joins of empty relations are empty.
            pass

    def swapped(self) -> "JoinInput":
        """Return the same input with R and S exchanged."""
        return JoinInput(r=self.s, s=self.r, meta=dict(self.meta))
