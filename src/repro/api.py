"""High-level convenience API.

``join(r, s, algorithm="csh")`` runs any of the five pipelines on a pair of
relations and returns a :class:`repro.exec.result.JoinResult`.  The
per-algorithm classes remain available for configured runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.core.csh import CSHConfig, CSHJoin
from repro.core.gsh import GSHConfig, GSHJoin
from repro.cpu.no_partition_join import NoPartitionConfig, NoPartitionJoin
from repro.cpu.radix_join import CbaseConfig, CbaseJoin
from repro.data.relation import JoinInput, Relation
from repro.errors import ConfigError
from repro.exec.result import JoinResult
from repro.gpu.gbase import GbaseConfig, GbaseJoin

#: Registry of algorithm name -> (pipeline class, config class).
ALGORITHMS = {
    "cbase": (CbaseJoin, CbaseConfig),
    "cbase-npj": (NoPartitionJoin, NoPartitionConfig),
    "csh": (CSHJoin, CSHConfig),
    "gbase": (GbaseJoin, GbaseConfig),
    "gsh": (GSHJoin, GSHConfig),
}

#: Algorithms that run on the CPU substrate / the GPU simulator.
CPU_ALGORITHMS = ("cbase", "cbase-npj", "csh")
GPU_ALGORITHMS = ("gbase", "gsh")


def make_join(algorithm: str, config=None):
    """Instantiate a pipeline by name, optionally with a config object."""
    try:
        cls, config_cls = ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    if config is None:
        return cls()
    if not isinstance(config, config_cls):
        raise ConfigError(
            f"{algorithm} expects a {config_cls.__name__}, got "
            f"{type(config).__name__}"
        )
    return cls(config)


def join(
    r: Union[Relation, JoinInput],
    s: Optional[Relation] = None,
    algorithm: str = "csh",
    config=None,
) -> JoinResult:
    """Join two relations on their key columns with the named algorithm.

    Accepts either two relations or a prepared :class:`JoinInput`.
    """
    if isinstance(r, JoinInput):
        join_input = r
        if s is not None:
            raise ConfigError("pass either a JoinInput or two relations")
    else:
        if s is None:
            raise ConfigError("a second relation is required")
        join_input = JoinInput(r=r, s=s)
    return make_join(algorithm, config).run(join_input)


def run_all(join_input: JoinInput,
            algorithms=tuple(ALGORITHMS)) -> Dict[str, JoinResult]:
    """Run several algorithms on the same input (results keyed by name)."""
    return {name: make_join(name).run(join_input) for name in algorithms}
