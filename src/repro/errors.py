"""Exception hierarchy for the repro library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An algorithm or device configuration is invalid."""


class WorkloadError(ReproError):
    """A workload specification is invalid (bad sizes, probabilities, ...)."""


class ExecutionError(ReproError):
    """An executor reached an inconsistent internal state."""


class VerificationError(ReproError):
    """A join result failed verification against the expected output."""


class CapacityError(ReproError):
    """A fixed-capacity structure (hash table, buffer) cannot hold its input."""
