"""Exception hierarchy for the repro library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Errors carry
optional structured context (``partition=3, capacity=4096, observed=9000``)
alongside the message: the keyword arguments land in ``exc.context`` and are
appended to ``str(exc)``, which gives recovery code and failure reports
machine-readable fields instead of string parsing.
"""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``**context`` attaches structured fields to the error; they are kept in
    :attr:`context` and rendered after the message.
    """

    def __init__(self, message: str = "", **context):
        super().__init__(message)
        self.message = message
        self.context: Dict[str, object] = context

    def __str__(self) -> str:
        if not self.context:
            return self.message
        fields = ", ".join(
            f"{key}={value!r}" for key, value in sorted(self.context.items())
        )
        return f"{self.message} [{fields}]"


class ConfigError(ReproError):
    """An algorithm or device configuration is invalid."""


class WorkloadError(ReproError):
    """A workload specification is invalid (bad sizes, probabilities, ...)."""


class ExecutionError(ReproError):
    """An executor reached an inconsistent internal state."""


class VerificationError(ReproError):
    """A join result failed verification against the expected output."""


class CapacityError(ReproError):
    """A fixed-capacity structure (hash table, buffer) cannot hold its input."""


class WorkerCrashError(ExecutionError):
    """A simulated worker thread died mid-task (fault injection)."""


class KernelAbortError(ExecutionError):
    """A simulated kernel launch (or CPU phase execution) aborted."""


class KernelOOMError(CapacityError):
    """A simulated kernel launch exhausted device memory."""


class ArtifactCorruptionError(ReproError):
    """A serialized artifact is truncated or otherwise corrupted.

    Like :class:`UnrecoveredFaultError`, carries the episode's
    :class:`~repro.faults.report.FailureReport` in :attr:`report` when the
    corruption came from the injection plane.
    """

    def __init__(self, message: str = "", report: Optional[object] = None,
                 **context):
        super().__init__(message, **context)
        self.report = report


class BaselineError(ReproError):
    """A benchmark baseline is missing, unreadable, or schema-incompatible.

    Raised by the bench comparator instead of surfacing raw ``OSError`` /
    ``json.JSONDecodeError`` / ``KeyError`` stack traces.  The message
    always says how to repair the state (usually: re-record the baseline
    with ``repro bench --record``); machine-readable specifics (path,
    found/expected schema version) live in :attr:`ReproError.context`.
    """


class ServeError(ReproError):
    """A join-service request cannot be satisfied (unknown relation,
    unknown version, malformed request body)."""


class AdmissionError(ServeError):
    """The join service refused a request under admission control.

    Raised when the server is saturated (in-flight and queue limits both
    reached) or when a request's probe side exceeds its morsel budget.
    The structured context carries the limits that were hit, so clients
    can back off or shrink the request instead of parsing prose.
    """


class ProtocolError(ServeError):
    """A serve-protocol message is malformed (bad JSON, missing fields,
    or an unsupported protocol version)."""


class DeadlineExceeded(ServeError):
    """A request's ``deadline_ms`` budget ran out mid-flight.

    Raised cooperatively at morsel/kernel checkpoints, never by killing
    the task: the structured context carries the partial progress at the
    moment the budget expired (``morsels_completed``, ``elapsed_ms``,
    ``deadline_ms``, partial ``count``/``checksum``) so clients can
    decide whether to retry with a larger budget.
    """


class RequestCancelled(ServeError):
    """A request was cancelled cooperatively before it finished.

    The cancellation reason (client disconnect, server drain) is in the
    structured context; like :class:`DeadlineExceeded`, the error fires
    at the next checkpoint rather than by interrupting compute.
    """


class CircuitOpen(ServeError):
    """The build circuit for a ``(relation_id, version)`` key is open.

    After N consecutive cold-build failures the cache stops attempting
    the build and sheds requests for the key immediately with this
    error; after the decay window one trial request is admitted
    (half-open) and a success closes the circuit again.  The context
    carries the key, the consecutive failure count, and the seconds
    until the next half-open trial.
    """


class WorkerPoolExhausted(ExecutionError):
    """The parallel worker pool's respawn budget is spent.

    The pool has already healed as many dead workers as its budget
    allows; remaining morsels complete inline and subsequent phases
    degrade to the vector path with a one-time warning.
    """


class SpillError(ReproError):
    """The out-of-core spill plane failed durably.

    Raised when the chunk store exhausts its recovery ladder (retry →
    re-spill to a fresh chunk → degrade to in-RAM) on a write, or when a
    spilled chunk fails checksum validation on every read attempt.  Like
    :class:`UnrecoveredFaultError`, carries the episode's
    :class:`~repro.faults.report.FailureReport` in :attr:`report` so the
    chaos harness and resume driver never parse messages.
    """

    def __init__(self, message: str = "", report: Optional[object] = None,
                 **context):
        super().__init__(message, **context)
        self.report = report


class UnrecoveredFaultError(ReproError):
    """A fault exhausted its recovery budget.

    Carries the :class:`~repro.faults.report.FailureReport` describing the
    fault episode in :attr:`report`, so callers (fallback ladders, the chaos
    harness) never have to parse the message.
    """

    def __init__(self, message: str = "", report: Optional[object] = None,
                 **context):
        super().__init__(message, **context)
        self.report = report
