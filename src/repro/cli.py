"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``    — join one generated workload with one or all algorithms.
  ``--spill-dir`` / ``--memory-budget`` engage the crash-safe
  out-of-core spill plane (bit-identical to the in-RAM path);
  ``--resume DIR`` finishes an interrupted spilled run from its
  durable manifest + checkpoint ledger.  ``--stream DIR`` runs
  out-of-core end to end: the workload is streamed into an on-disk
  relation store chunk by chunk and joined with columns paging in
  lazily instead of ever materializing in RAM.
* ``sweep``  — Figure-4-style zipf sweep.
* ``bench``  — regenerate one of the paper's tables/figures, or record /
  compare executed wall-time snapshots (the CI regression gate).
  ``--oocore`` records/compares the out-of-core scale tier instead: a
  dataset larger than the memory budget is streamed to disk and joined
  on every backend in a fresh measurement child, asserting
  bit-identical answers with peak RSS under the budget.
* ``diff``   — backend differential (scalar vs vector vs parallel)
  across the full algorithm x dataset grid (exit 1 on any divergence).
  ``--spill`` runs the spill column instead: every backend re-joins
  each dataset under a forced memory budget and must match the in-RAM
  reference exactly.  ``--oocore`` runs the out-of-core column: every
  dataset is streamed to a (compressed) on-disk relation store and
  every backend re-joins it with columns paging in lazily.
* ``trace``  — per-phase breakdown traces: run-and-render, export to
  JSONL, re-render saved artifacts, and consistency-check phase sums.
* ``chaos``  — seeded fault-injection sweep: every fault class against
  every algorithm, verifying exact recovery or a typed failure.
  ``--serve`` points the storm at the daemon instead: concurrent
  clients with seeded fault scripts (crashes, slow morsels, deadlines,
  circuit-opening build failures, mid-stream disconnects), asserting
  every request ends bit-identical or with a typed error and the
  daemon's post-sweep health is green — the serve-chaos CI job.
  ``--spill`` points the storm at the out-of-core plane instead:
  seeded disk faults (torn writes, ENOSPC, corrupt chunks, slow IO),
  ladder exhaustion, and a SIGKILL-and-resume sweep, asserting every
  scenario ends bit-identical after recovery/resume or with a typed
  error — the spill-chaos CI job.  All chaos modes exit nonzero when
  any scenario breaks its contract.
* ``serve``  — join-as-a-service daemon: NDJSON protocol over a local
  socket, hot LRU cache of built hash tables, admission control,
  streamed probe chunks, per-request deadlines, a circuit-breaking
  build cache, and graceful SIGTERM drain.  ``--smoke`` runs the
  end-to-end serving scenario (daemon + client, overlapping requests,
  injected fault) in-process and exits — the serve-smoke CI job.
  ``--planner auto`` lets the adaptive planner pick each request's
  backend and learn from every answer.
* ``plan``   — the adaptive planner's explain mode: sketch a workload,
  print the full candidate table (every algorithm x backend x workers
  point with its predicted cost), the constraints, and the chosen
  point.  ``--execute`` runs the pick (bit-identical to forcing the
  same configuration by hand) and learns from the realized walls;
  ``--gate`` measures planner regret against the observed-best
  candidate over the diff grid — the plan-gate CI job.  ``repro run
  --auto`` is the one-shot form: plan, execute, learn.

Examples::

    python -m repro run --theta 1.0 --tuples 262144 --algorithm csh
    python -m repro run --theta 0.9 --all --counters
    python -m repro sweep --tuples 1048576 --analytic
    python -m repro bench table1
    python -m repro bench --record --tag seed
    python -m repro bench --compare BENCH_seed.json --json gate.json
    python -m repro run --backend parallel --theta 1.0 --tuples 262144
    python -m repro diff --tuples 4096
    python -m repro diff --backends vector,parallel
    python -m repro trace --algorithm gsh --theta 1.0 --tuples 65536
    python -m repro trace --all --out traces.jsonl --check
    python -m repro trace --load traces.jsonl --check
    python -m repro chaos --seed 42 --tuples 8192 --theta 1.0
    python -m repro chaos --serve --seed 7 --clients 4 --requests 20
    python -m repro run --tuples 262144 --memory-budget 1048576 \
        --spill-dir /tmp/spill --algorithm cbase
    python -m repro run --resume /tmp/spill
    python -m repro diff --spill --tuples 2048
    python -m repro run --stream /tmp/oocore --tuples 262144 --theta 0.5
    python -m repro diff --oocore --tuples 2048
    python -m repro bench --oocore --record --tag seed
    python -m repro bench --oocore --compare BENCH_oocore_seed.json
    python -m repro chaos --spill --seed 42 --artifact-dir chaos-art
    python -m repro serve --port 7654 --trace-out serve-trace.jsonl
    python -m repro serve --smoke --trace-out smoke-trace.jsonl
    python -m repro serve --port 7654 --planner auto
    python -m repro diff --served --tuples 2048
    python -m repro plan --theta 1.0 --tuples 65536
    python -m repro plan --tuples 65536 --execute --json plan.json
    python -m repro plan --gate --tuples 20000 --out plan-artifacts
    python -m repro run --auto --theta 1.0 --tuples 262144
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import ALGORITHMS, make_join, run_all
from repro.analysis.analytic import ANALYTIC_EXECUTORS, AnalyticWorkload
from repro.analysis.verify import verify_all
from repro.bench.experiments import (
    run_detection,
    run_figure1,
    run_figure4,
    run_scaleup,
    run_table1,
)
from repro.bench.tables import render_series
from repro.bench.regression import (
    DEFAULT_BENCH_SEED,
    DEFAULT_BENCH_THETA,
    DEFAULT_REGRESSION_THRESHOLD,
    DEFAULT_REPEATS,
    bench_path,
    compare_benches,
    comparison_to_dict,
    load_bench,
    record_bench,
    save_bench,
)
from repro.bench.oocore import (
    DEFAULT_OOCORE_N_S,
    compare_oocore_benches,
    load_oocore_bench,
    oocore_bench_path,
    record_oocore_bench,
    render_oocore,
    save_oocore_bench,
)
from repro.data.io import load_join_input, save_join_input
from repro.data.stream import stream_zipf_input
from repro.data.zipf import ZipfWorkload
from repro.errors import BaselineError, ReproError
from repro.exec.backend import (
    BACKENDS,
    BACKEND_ENV,
    current_backend,
    use_backend,
    validate_backend,
)
from repro.exec.differential import (
    differential_matrix,
    oocore_differential,
    render_differential,
    spill_differential,
)
from repro.exec.report import comparison_report, result_report
from repro.exec.serialize import append_results_jsonl, results_from_jsonl_file
from repro.faults.chaos import run_chaos
from repro.faults.plan import DEFAULT_CHAOS_ALGORITHMS
from repro.faults.report import verify_result_faults
from repro.obs import render_trace, verify_result_trace
from repro.plan import verify_result_plan
from repro.serve.admission import AdmissionController, DEFAULT_MORSEL_TUPLES
from repro.serve.cache import (
    DEFAULT_CACHE_ENTRIES,
    DEFAULT_CIRCUIT_RESET_SECONDS,
    DEFAULT_CIRCUIT_THRESHOLD,
)
from repro.serve.chaos import run_serve_chaos
from repro.serve.diff import served_differential
from repro.serve.engine import ServeEngine
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.server import DEFAULT_DRAIN_SECONDS, DEFAULT_HOST, ServeServer
from repro.serve.smoke import run_smoke
from repro.store import (
    CODEC_ENV,
    MEMORY_BUDGET_ENV,
    PAGE_CACHE_ENV,
    SPILL_DIR_ENV,
    dataset_bytes,
    open_join_input,
    open_spill_session,
    resume_run,
    write_run_state,
)
from repro.store.chaos import run_spill_chaos

BENCH_COMMANDS = {
    "fig1": run_figure1,
    "fig4": run_figure4,
    "table1": run_table1,
    "scaleup": run_scaleup,
    "detection": run_detection,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skew-conscious hash joins (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="join one generated workload")
    run_p.add_argument("--tuples", "-n", type=int, default=1 << 17,
                       help="tuples per table (default 131072)")
    run_p.add_argument("--theta", "-t", type=float, default=0.9,
                       help="zipf factor (default 0.9)")
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument("--algorithm", "-a", choices=sorted(ALGORITHMS),
                       default=None,
                       help="algorithm to run (default csh)")
    run_p.add_argument("--all", action="store_true",
                       help="run every algorithm and compare")
    run_p.add_argument("--auto", action="store_true",
                       help="let the adaptive planner choose the "
                            "(algorithm, backend, workers) point; "
                            "bit-identical to forcing the same "
                            "configuration by hand, and the realized "
                            "walls feed the planner's learned "
                            "corrections (mutually exclusive with "
                            "--algorithm/--backend/--all)")
    run_p.add_argument("--counters", action="store_true",
                       help="print the operation counters")
    run_p.add_argument("--analytic", action="store_true",
                       help="use the histogram-driven paper-scale path")
    run_p.add_argument("--load", metavar="FILE",
                       help="join a saved .npz workload instead of "
                            "generating one")
    run_p.add_argument("--save", metavar="FILE",
                       help="save the generated workload to a .npz file")
    run_p.add_argument("--backend", choices=BACKENDS,
                       help="execution backend for this run (default: "
                            f"${BACKEND_ENV}, else vector)")
    run_p.add_argument("--memory-budget", type=int, metavar="BYTES",
                       help="resident-bytes budget for the partitioned "
                            "join inputs; partitions beyond it spill to "
                            "the durable chunk store (default: "
                            f"${MEMORY_BUDGET_ENV}, else no spilling)")
    run_p.add_argument("--spill-dir", metavar="DIR",
                       help="directory for spilled chunks, the manifest, "
                            "and the checkpoint ledger (default: "
                            f"${SPILL_DIR_ENV}, else an ephemeral temp "
                            "dir); a named dir makes the run resumable")
    run_p.add_argument("--spill-strict", action="store_true",
                       help="treat the memory budget as hard: an "
                            "unwritable chunk is a typed SpillError "
                            "instead of degrading back to RAM")
    run_p.add_argument("--resume", metavar="DIR",
                       help="finish the interrupted spilled run recorded "
                            "in DIR (revalidates chunks, discards torn "
                            "ledger tails, re-runs only unfinished "
                            "partition pairs)")
    run_p.add_argument("--stream", metavar="DIR",
                       help="run out-of-core: stream the zipf workload "
                            "into an on-disk relation store at DIR "
                            "chunk by chunk (an existing store there is "
                            "reused), then join it with columns paging "
                            "in lazily instead of materializing in RAM; "
                            f"${CODEC_ENV} picks the chunk codec and "
                            f"${PAGE_CACHE_ENV} the per-column segment "
                            "cache depth")

    sweep_p = sub.add_parser("sweep", help="zipf sweep across algorithms")
    sweep_p.add_argument("--tuples", "-n", type=int, default=1 << 16)
    sweep_p.add_argument("--seed", type=int, default=42)
    sweep_p.add_argument("--analytic", action="store_true")
    sweep_p.add_argument("--thetas", type=str,
                         default="0,0.25,0.5,0.75,1.0",
                         help="comma-separated zipf factors")

    bench_p = sub.add_parser(
        "bench",
        help="regenerate a paper experiment, or record/compare executed "
             "wall-time snapshots")
    bench_p.add_argument("experiment", nargs="?",
                         choices=sorted(BENCH_COMMANDS),
                         help="paper experiment to regenerate (omit when "
                              "using --record/--compare)")
    bench_p.add_argument("--record", action="store_true",
                         help="execute the bench matrix and write "
                              "BENCH_<tag>.json")
    bench_p.add_argument("--compare", metavar="BASELINE",
                         help="record a candidate under the baseline's "
                              "settings and gate it (exit 1 on regression)")
    bench_p.add_argument("--tag", default="candidate",
                         help="snapshot tag for --record (default "
                              "'candidate' -> BENCH_candidate.json)")
    bench_p.add_argument("--dir", default=".",
                         help="directory for --record output (default .)")
    bench_p.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                         help="runs per (algorithm, backend) case "
                              f"(default {DEFAULT_REPEATS})")
    bench_p.add_argument("--threshold", type=float,
                         default=DEFAULT_REGRESSION_THRESHOLD,
                         help="fractional wall-time regression that fails "
                              "--compare (default 0.25)")
    bench_p.add_argument("--spill", action="store_true",
                         help="with --record: capture the spilled scale "
                              "tier — every run executes under a forced "
                              "memory budget through the on-disk chunk "
                              "store (--compare inherits the baseline's "
                              "spill settings automatically)")
    bench_p.add_argument("--save-candidate", metavar="FILE",
                         help="also write the --compare candidate snapshot "
                              "to FILE (the CI artifact)")
    bench_p.add_argument("--json", metavar="FILE", dest="json_out",
                         help="with --compare: also write the machine-"
                              "readable comparison (verdict, per-phase "
                              "deltas, speedups) to FILE")
    bench_p.add_argument("--auto", action="store_true",
                         help="attach the adaptive planner to --record/"
                              "--compare: every case gains predicted-vs-"
                              "realized planner cost columns (surfaced "
                              "by --compare --json when present)")
    bench_p.add_argument("--oocore", action="store_true",
                         help="record/compare the out-of-core scale tier "
                              "instead: stream a dataset larger than the "
                              "memory budget to disk, join it on every "
                              "backend in a fresh measurement child, and "
                              "assert bit-identical answers with peak "
                              "RSS under the budget "
                              "(BENCH_oocore_<tag>.json)")
    bench_p.add_argument("--oocore-tuples", type=int, metavar="N",
                         help="with --oocore --record: probe-side tuple "
                              "count for the tier (default "
                              f"{DEFAULT_OOCORE_N_S}); smaller values "
                              "make a CI smoke leg, the default is the "
                              "committed seed scale")

    diff_p = sub.add_parser(
        "diff", help="scalar-vs-vector differential across all algorithms")
    diff_p.add_argument("--tuples", "-n", type=int, default=1 << 11,
                        help="tuples per table (default 2048)")
    diff_p.add_argument("--seed", type=int, default=42)
    diff_p.add_argument("--algorithms", type=str, default="",
                        help="comma-separated subset (default: all)")
    diff_p.add_argument("--backends", type=str, default="",
                        help="comma-separated backends to compare, first "
                             "one is the reference (default: all of "
                             f"{','.join(BACKENDS)})")
    diff_p.add_argument("--served", action="store_true",
                        help="run the served-vs-direct leg instead: diff "
                             "cached, morsel-streamed serve answers "
                             "against direct pipeline runs (plus the "
                             "cold/warm structural contract)")
    diff_p.add_argument("--spill", action="store_true",
                        help="run the spill column instead: every "
                             "backend re-joins each dataset under a "
                             "forced memory budget and must match the "
                             "in-RAM reference bit for bit")
    diff_p.add_argument("--oocore", action="store_true",
                        help="run the out-of-core column instead: every "
                             "dataset is streamed to an on-disk relation "
                             "store (compressed on the skewed case) and "
                             "every backend re-joins it with columns "
                             "paging in lazily, which must match the "
                             "in-RAM reference bit for bit")

    trace_p = sub.add_parser(
        "trace", help="render per-phase breakdown traces")
    trace_p.add_argument("--tuples", "-n", type=int, default=1 << 16,
                         help="tuples per table (default 65536)")
    trace_p.add_argument("--theta", "-t", type=float, default=0.9,
                         help="zipf factor (default 0.9)")
    trace_p.add_argument("--seed", type=int, default=42)
    trace_p.add_argument("--algorithm", "-a", choices=sorted(ALGORITHMS),
                         default="csh")
    trace_p.add_argument("--all", action="store_true",
                         help="trace every algorithm")
    trace_p.add_argument("--load", metavar="FILE",
                         help="render traces from a JSONL artifact instead "
                              "of running")
    trace_p.add_argument("--out", metavar="FILE",
                         help="append the traced results to a JSONL "
                              "artifact")
    trace_p.add_argument("--check", action="store_true",
                         help="verify each trace's phase sums against the "
                              "reported total (exit 1 on mismatch)")
    trace_p.add_argument("--no-metrics", action="store_true",
                         help="omit the metrics block from the rendering")

    chaos_p = sub.add_parser(
        "chaos", help="seeded fault-injection sweep across the pipelines")
    chaos_p.add_argument("--tuples", "-n", type=int, default=1 << 13,
                         help="tuples per table (default 8192)")
    chaos_p.add_argument("--theta", "-t", type=float, default=1.0,
                         help="zipf factor (default 1.0 — heavy skew)")
    chaos_p.add_argument("--seed", type=int, default=42,
                         help="seed for both the workload and the fault "
                              "plan (default 42)")
    chaos_p.add_argument("--algorithms", type=str,
                         default=",".join(DEFAULT_CHAOS_ALGORITHMS),
                         help="comma-separated algorithms to sweep "
                              "(default: cbase,csh,gbase,gsh)")
    chaos_p.add_argument("--serve", action="store_true",
                         help="run the chaos-under-load storm against an "
                              "in-process daemon instead of the pipelines "
                              "(exit 0 = every request bit-identical or "
                              "typed, daemon healthy afterwards)")
    chaos_p.add_argument("--clients", type=int, default=4,
                         help="concurrent clients for --serve (default 4)")
    chaos_p.add_argument("--requests", type=int, default=20,
                         help="probe requests spread across the --serve "
                              "clients (default 20)")
    chaos_p.add_argument("--health-out", metavar="FILE",
                         help="with --serve: write the post-storm health "
                              "payload and check ledger to a JSON artifact")
    chaos_p.add_argument("--spill", action="store_true",
                         help="run the disk-fault + SIGKILL/resume sweep "
                              "against the out-of-core spill plane "
                              "instead (exit 0 = every scenario ends "
                              "bit-identical after recovery/resume or "
                              "with a typed error)")
    chaos_p.add_argument("--artifact-dir", metavar="DIR",
                         help="with --spill: copy each sweep's manifest, "
                              "checkpoint ledger, and the check ledger "
                              "JSON into DIR (the CI artifact)")

    serve_p = sub.add_parser(
        "serve", help="run the join-as-a-service daemon")
    serve_p.add_argument("--host", default=DEFAULT_HOST,
                         help=f"bind address (default {DEFAULT_HOST})")
    serve_p.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral, printed "
                              "on startup)")
    serve_p.add_argument("--cache-entries", type=int,
                         default=DEFAULT_CACHE_ENTRIES,
                         help="LRU bound on cached build-side hash tables "
                              f"(default {DEFAULT_CACHE_ENTRIES})")
    serve_p.add_argument("--max-inflight", type=int, default=8,
                         help="concurrent requests executing (default 8)")
    serve_p.add_argument("--max-queue", type=int, default=16,
                         help="requests allowed to wait beyond the "
                              "in-flight bound (default 16)")
    serve_p.add_argument("--max-morsels", type=int, default=4096,
                         help="per-request morsel budget; larger probes "
                              "are refused (default 4096)")
    serve_p.add_argument("--morsel-tuples", type=int,
                         default=DEFAULT_MORSEL_TUPLES,
                         help="tuples per streamed probe chunk "
                              f"(default {DEFAULT_MORSEL_TUPLES})")
    serve_p.add_argument("--drain-seconds", type=float,
                         default=DEFAULT_DRAIN_SECONDS,
                         help="grace in-flight probes get on SIGTERM/"
                              "shutdown before cooperative cancellation "
                              f"(default {DEFAULT_DRAIN_SECONDS:g})")
    serve_p.add_argument("--circuit-threshold", type=int,
                         default=DEFAULT_CIRCUIT_THRESHOLD,
                         help="consecutive cold-build failures that open a "
                              "relation's circuit "
                              f"(default {DEFAULT_CIRCUIT_THRESHOLD})")
    serve_p.add_argument("--circuit-reset-seconds", type=float,
                         default=DEFAULT_CIRCUIT_RESET_SECONDS,
                         help="seconds an open circuit waits before "
                              "admitting a half-open trial build "
                              f"(default {DEFAULT_CIRCUIT_RESET_SECONDS:g})")
    serve_p.add_argument("--trace-out", metavar="FILE",
                         help="append every completed probe's JoinResult "
                              "(trace + metrics + fault reports) to a "
                              "JSONL artifact")
    serve_p.add_argument("--smoke", action="store_true",
                         help="run the end-to-end smoke scenario against "
                              "an in-process daemon and exit (0 = all "
                              "checks passed)")
    serve_p.add_argument("--tuples", "-n", type=int, default=1 << 12,
                         help="tuples per side for --smoke (default 4096)")
    serve_p.add_argument("--theta", "-t", type=float, default=1.0,
                         help="zipf factor for --smoke (default 1.0)")
    serve_p.add_argument("--seed", type=int, default=42,
                         help="workload seed for --smoke (default 42)")
    serve_p.add_argument("--planner", choices=("off", "auto"),
                         default="off",
                         help="'auto' lets the adaptive planner pick each "
                              "request's backend from the npj cost model "
                              "and learn serve-specific corrections from "
                              "every answer; answers stay bit-identical "
                              "(default off)")

    plan_p = sub.add_parser(
        "plan",
        help="adaptive planner: explain candidate costs, execute the "
             "pick, or gate planner regret (CI)")
    plan_p.add_argument("--tuples", "-n", type=int, default=None,
                        help="tuples per table (default 65536; 20000 "
                             "with --gate)")
    plan_p.add_argument("--theta", "-t", type=float, default=0.9,
                        help="zipf factor (default 0.9)")
    plan_p.add_argument("--seed", type=int, default=42)
    plan_p.add_argument("--load", metavar="FILE",
                        help="plan a saved .npz workload instead of "
                             "generating one")
    plan_p.add_argument("--backends", type=str, default="",
                        help="comma-separated backends to consider "
                             "(default: all usable on this host)")
    plan_p.add_argument("--algorithms", type=str, default="",
                        help="comma-separated algorithms to consider "
                             "(default: all)")
    plan_p.add_argument("--max-workers", type=int, default=None,
                        help="cap on the parallel worker ladder "
                             "(default: the configured pool size)")
    plan_p.add_argument("--memory-budget", type=int, metavar="BYTES",
                        default=None,
                        help="memory-budget constraint: inputs beyond it "
                             "are only feasible on spill-capable "
                             f"algorithms (default: ${MEMORY_BUDGET_ENV})")
    plan_p.add_argument("--deadline-ms", type=float, default=None,
                        help="deadline constraint: candidates predicted "
                             "over this budget are marked infeasible")
    plan_p.add_argument("--corrections", metavar="FILE",
                        help="corrections file to load/learn "
                             "(default: $REPRO_PLAN_CORRECTIONS)")
    plan_p.add_argument("--learn", metavar="JSONL",
                        help="fold a JSONL trace artifact's planned runs "
                             "into the corrections before planning")
    plan_p.add_argument("--execute", action="store_true",
                        help="run the chosen point and learn from the "
                             "realized walls")
    plan_p.add_argument("--json", metavar="FILE", dest="json_out",
                        help="also write the candidate table as JSON")
    plan_p.add_argument("--gate", action="store_true",
                        help="run the regret gate over the diff grid: "
                             "measure every candidate, exit 1 if the "
                             "pick exceeds --regret-threshold times the "
                             "observed best, or if a planned run is not "
                             "bit-identical to the forced configuration")
    plan_p.add_argument("--gate-repeats", type=int, default=2,
                        help="measurement repeats per candidate in the "
                             "gate (default 2)")
    plan_p.add_argument("--regret-threshold", type=float, default=2.0,
                        help="regret factor the gate tolerates "
                             "(default 2.0)")
    plan_p.add_argument("--out", metavar="DIR",
                        help="with --gate: write plan-candidates.json "
                             "and regret-report.json artifacts to DIR")
    return parser


def _cmd_run(args) -> int:
    if args.resume:
        # The run state pins the backend and workload; CLI workload
        # flags are ignored on resume by design.
        result = resume_run(args.resume)
        print(result_report(result, counters=args.counters))
        return 0
    if args.auto:
        return _cmd_run_auto(args)
    if args.algorithm is None:
        args.algorithm = "csh"
    if args.backend:
        with use_backend(args.backend):
            args.backend = None
            return _cmd_run(args)
    if args.stream:
        return _cmd_run_stream(args)
    if args.analytic:
        wl = AnalyticWorkload.from_zipf(args.tuples, args.tuples,
                                        args.theta, seed=args.seed)
        if args.all:
            results = [ANALYTIC_EXECUTORS[name](wl)
                       for name in sorted(ALGORITHMS)]
            print(comparison_report(results, baseline="cbase"))
        else:
            print(result_report(ANALYTIC_EXECUTORS[args.algorithm](wl),
                                counters=args.counters))
        return 0
    if args.load:
        join_input = load_join_input(args.load)
    else:
        workload = ZipfWorkload(args.tuples, args.tuples, args.theta,
                                seed=args.seed)
        join_input = workload.generate()
    if args.save:
        save_join_input(join_input, args.save)
        print(f"workload saved to {args.save}")
    if args.all:
        if args.spill_dir or args.memory_budget is not None \
                or args.spill_strict:
            print("error: --all cannot be combined with the spill "
                  "options; spill one algorithm at a time",
                  file=sys.stderr)
            return 2
        results = run_all(join_input)
        verify_all(results.values(), join_input)
        print(comparison_report(list(results.values()), baseline="cbase"))
    else:
        with open_spill_session(
                args.spill_dir, args.memory_budget,
                strict=True if args.spill_strict else None) as session:
            if session is not None:
                # Durable run recipe first, so a crash at ANY later
                # point leaves a resumable directory behind.
                workload_state = (
                    {"kind": "file", "path": args.load} if args.load
                    else {"kind": "zipf", "n_r": args.tuples,
                          "n_s": args.tuples, "theta": args.theta,
                          "seed": args.seed})
                write_run_state(session.directory, {
                    "algorithm": args.algorithm,
                    "backend": current_backend(),
                    "budget_bytes": session.budget_bytes,
                    "strict": session.strict,
                    "chunk_bytes": session.chunk_bytes,
                    "codec": session.store.codec,
                    "workload": workload_state,
                })
            result = make_join(args.algorithm).run(join_input)
        print(result_report(result, counters=args.counters))
    return 0


def _cmd_run_stream(args) -> int:
    """``repro run --stream DIR``: join straight from a relation store."""
    from pathlib import Path

    if (args.all or args.analytic or args.load or args.save
            or args.spill_dir or args.spill_strict
            or args.memory_budget is not None):
        print("error: --stream joins one algorithm from its on-disk "
              "relation store; drop --all/--analytic/--load/--save and "
              "the spill-session options", file=sys.stderr)
        return 2
    directory = Path(args.stream)
    if not (directory / "manifest.json").exists():
        stream_zipf_input(directory, args.tuples, args.tuples,
                          args.theta, seed=args.seed)
        print(f"streamed zipf(theta={args.theta}) workload "
              f"({args.tuples} x {args.tuples} tuples) into {directory}")
    join_input, store = open_join_input(directory)
    try:
        result = make_join(args.algorithm).run(join_input)
    finally:
        store.close()
    print(f"out-of-core: {dataset_bytes(directory)} dataset bytes paged "
          f"lazily from {directory} (codec {store.codec})")
    print(result_report(result, counters=args.counters))
    return 0


def _cmd_run_auto(args) -> int:
    """``repro run --auto``: plan, execute the argmin, learn."""
    from repro.plan import Constraints, Planner

    if args.algorithm is not None or args.backend or args.all:
        print("error: --auto chooses the algorithm and backend itself; "
              "drop --algorithm/--backend/--all (force a configuration "
              "by hand to compare — the answers are bit-identical)",
              file=sys.stderr)
        return 2
    if args.analytic or args.spill_dir or args.spill_strict:
        print("error: --auto cannot be combined with --analytic or the "
              "spill-session options", file=sys.stderr)
        return 2
    if args.load:
        join_input = load_join_input(args.load)
    else:
        join_input = ZipfWorkload(args.tuples, args.tuples, args.theta,
                                  seed=args.seed).generate()
    if args.save:
        save_join_input(join_input, args.save)
        print(f"workload saved to {args.save}")
    overrides = {}
    if args.memory_budget is not None:
        overrides["memory_budget_bytes"] = args.memory_budget
    planner = Planner(constraints=Constraints.from_environment(**overrides))
    plan = planner.plan(join_input)
    if plan.chosen is None:
        print(plan.render())
        print("error: no feasible candidate under the constraints",
              file=sys.stderr)
        return 1
    result = planner.execute(join_input, plan)
    planner.learn(result)
    meta = result.meta["plan"]
    print(f"planned: {plan.chosen.point.label()} "
          f"(predicted {meta['predicted_wall_seconds']:.4f}s wall, "
          f"realized {meta['realized_wall_seconds']:.4f}s, "
          f"{meta['feasible']}/{meta['candidates']} candidates feasible)")
    print(result_report(result, counters=args.counters))
    return 0


def _cmd_sweep(args) -> int:
    thetas = [float(t) for t in args.thetas.split(",") if t.strip()]
    algorithms = sorted(ALGORITHMS)
    series = {alg: {} for alg in algorithms}
    for theta in thetas:
        if args.analytic:
            wl = AnalyticWorkload.from_zipf(args.tuples, args.tuples,
                                            theta, seed=args.seed)
            for alg in algorithms:
                series[alg][theta] = (
                    ANALYTIC_EXECUTORS[alg](wl).simulated_seconds)
        else:
            join_input = ZipfWorkload(args.tuples, args.tuples, theta,
                                      seed=args.seed).generate()
            results = run_all(join_input)
            for alg, res in results.items():
                series[alg][theta] = res.simulated_seconds
    print(render_series(series, thetas,
                        f"zipf sweep — {args.tuples} tuples per table"))
    return 0


def _cmd_bench(args) -> int:
    if args.record and args.compare:
        print("error: --record and --compare are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.oocore:
        return _cmd_bench_oocore(args)
    if args.oocore_tuples is not None:
        print("error: --oocore-tuples only applies with --oocore",
              file=sys.stderr)
        return 2
    planner = None
    if args.auto:
        from repro.plan import CorrectionStore, Planner
        planner = Planner(corrections=CorrectionStore())
    if args.record:
        spill_budget = None
        if args.spill:
            from repro.bench.runner import exec_bench_tuples
            n = exec_bench_tuples()
            spill_budget = max(12 * 2 * n // 4, 1)
        record = record_bench(args.tag, repeats=args.repeats,
                              spill_budget_bytes=spill_budget,
                              planner=planner)
        path = save_bench(record, bench_path(args.tag, args.dir))
        speedup = record.median_speedup()
        extra = (f", median vector speedup {speedup:.1f}x"
                 if speedup is not None else "")
        if record.spill_budget_bytes is not None:
            extra += (f", spilled tier under a "
                      f"{record.spill_budget_bytes}-byte budget")
        print(f"bench snapshot written to {path} "
              f"({record.n_tuples} tuples, {record.repeats} repeats{extra})")
        return 0
    if args.compare:
        try:
            baseline = load_bench(args.compare)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        candidate = record_bench(
            "candidate", n_tuples=baseline.n_tuples, theta=baseline.theta,
            seed=baseline.seed, repeats=args.repeats,
            backends=baseline.backends,
            algorithms=[c.algorithm for c in baseline.cases],
            spill_budget_bytes=baseline.spill_budget_bytes,
            planner=planner,
        )
        if args.save_candidate:
            save_bench(candidate, args.save_candidate)
        comparison = compare_benches(baseline, candidate,
                                     threshold=args.threshold)
        if args.json_out:
            import json
            from pathlib import Path
            out = Path(args.json_out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(comparison_to_dict(comparison),
                                      indent=2, sort_keys=True) + "\n",
                           encoding="utf-8")
            print(f"comparison JSON written to {out}")
        print(comparison.render())
        return 0 if comparison.ok else 1
    if args.experiment is None:
        print("error: give an experiment name, or --record / --compare",
              file=sys.stderr)
        return 2
    BENCH_COMMANDS[args.experiment]()
    return 0


def _cmd_bench_oocore(args) -> int:
    """``repro bench --oocore``: the out-of-core scale tier."""
    if args.spill or args.auto:
        print("error: --oocore cannot be combined with --spill/--auto",
              file=sys.stderr)
        return 2
    if args.record:
        n_s = (args.oocore_tuples if args.oocore_tuples is not None
               else DEFAULT_OOCORE_N_S)
        # Scale the build side with the probe side so a smoke-sized
        # tier keeps the seed tier's shape (and its skew behaviour).
        n_r = max(n_s >> 6, 1 << 10)
        record = record_oocore_bench(args.tag, n_r=n_r, n_s=n_s)
        path = save_oocore_bench(record,
                                 oocore_bench_path(args.tag, args.dir))
        print(render_oocore(record))
        print(f"oocore snapshot written to {path}")
        return 0 if not record.verify() else 1
    if args.compare:
        try:
            baseline = load_oocore_bench(args.compare)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        candidate = record_oocore_bench(
            "candidate", n_r=baseline.n_r, n_s=baseline.n_s,
            theta=baseline.theta, seed=baseline.seed,
            algorithm=baseline.algorithm, codec=baseline.codec,
            chunk_tuples=baseline.chunk_tuples,
            cache_segments=baseline.cache_segments,
            n_threads=baseline.n_threads,
            budget_bytes=baseline.budget_bytes,
            backends=[run.backend for run in baseline.runs])
        if args.save_candidate:
            save_oocore_bench(candidate, args.save_candidate)
        comparison = compare_oocore_benches(baseline, candidate,
                                            threshold=args.threshold)
        print(comparison.render())
        return 0 if comparison.ok else 1
    print("error: --oocore requires --record or --compare",
          file=sys.stderr)
    return 2


def _cmd_plan(args) -> int:
    from repro.plan import (
        Constraints,
        CorrectionStore,
        DEFAULT_GATE_TUPLES,
        Planner,
        corrections_path_from_env,
        run_plan_gate,
    )

    backends = tuple(b.strip() for b in args.backends.split(",")
                     if b.strip()) or None
    if backends:
        for backend in backends:
            validate_backend(backend)
    if args.gate:
        report = run_plan_gate(
            n_tuples=(args.tuples if args.tuples is not None
                      else DEFAULT_GATE_TUPLES),
            seed=args.seed,
            repeats=args.gate_repeats,
            threshold=args.regret_threshold,
            **({"backends": backends} if backends else {}),
            out_dir=args.out,
        )
        print(report.render())
        if args.out:
            print(f"artifacts written to {args.out}/plan-candidates.json "
                  f"and {args.out}/regret-report.json")
        return 0 if report.ok else 1

    algorithms = tuple(a.strip() for a in args.algorithms.split(",")
                       if a.strip()) or None
    overrides = {
        "backends": backends,
        "algorithms": algorithms,
        "max_workers": args.max_workers,
        "deadline_ms": args.deadline_ms,
    }
    if args.memory_budget is not None:
        overrides["memory_budget_bytes"] = args.memory_budget
    corrections = CorrectionStore(
        path=args.corrections if args.corrections
        else corrections_path_from_env())
    planner = Planner(corrections=corrections,
                      constraints=Constraints.from_environment(**overrides))
    if args.learn:
        n = corrections.learn_from_jsonl(args.learn)
        corrections.save()
        print(f"learned {n} phase observation(s) from {args.learn}")
    if args.load:
        join_input = load_join_input(args.load)
    else:
        n_tuples = args.tuples if args.tuples is not None else 1 << 16
        join_input = ZipfWorkload(n_tuples, n_tuples, args.theta,
                                  seed=args.seed).generate()
    plan = planner.plan(join_input)
    print(plan.render())
    if args.json_out:
        import json
        from pathlib import Path
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(plan.to_dict(), indent=2,
                                  sort_keys=True) + "\n", encoding="utf-8")
        print(f"candidate table written to {out}")
    if args.execute:
        if plan.chosen is None:
            print("error: cannot execute — no feasible candidate",
                  file=sys.stderr)
            return 1
        result = planner.execute(join_input, plan)
        planner.learn(result)
        print()
        print(result_report(result))
    return 0 if plan.chosen is not None else 1


def _cmd_diff(args) -> int:
    algorithms = ([a.strip() for a in args.algorithms.split(",") if a.strip()]
                  or None)
    if sum(1 for flag in (args.served, args.spill, args.oocore)
           if flag) > 1:
        print("error: --served, --spill, and --oocore are mutually "
              "exclusive", file=sys.stderr)
        return 2
    if args.served:
        reports = served_differential(n=args.tuples, seed=args.seed,
                                      algorithms=algorithms)
        print(render_differential(reports))
        return 0 if all(r.ok for r in reports) else 1
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if backends:
        for backend in backends:
            validate_backend(backend)
    if args.spill:
        reports = spill_differential(n=args.tuples, seed=args.seed,
                                     algorithms=algorithms,
                                     backends=tuple(backends) or BACKENDS)
        print(render_differential(reports))
        return 0 if all(r.ok for r in reports) else 1
    if args.oocore:
        reports = oocore_differential(n=args.tuples, seed=args.seed,
                                      algorithms=algorithms,
                                      backends=tuple(backends) or BACKENDS)
        print(render_differential(reports))
        return 0 if all(r.ok for r in reports) else 1
    reports = differential_matrix(n=args.tuples, seed=args.seed,
                                  algorithms=algorithms,
                                  backends=tuple(backends) or BACKENDS)
    print(render_differential(reports))
    return 0 if all(r.ok for r in reports) else 1


def _cmd_trace(args) -> int:
    if args.load:
        try:
            # Tolerant: a torn trailing line (crash mid-append) is skipped
            # with a warning rather than failing the whole artifact.
            results = results_from_jsonl_file(args.load, tolerant=True)
        except OSError as exc:
            print(f"error: cannot read {args.load}: {exc}", file=sys.stderr)
            return 1
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        join_input = ZipfWorkload(args.tuples, args.tuples, args.theta,
                                  seed=args.seed).generate()
        if args.all:
            results = list(run_all(join_input).values())
        else:
            results = [make_join(args.algorithm).run(join_input)]
    failures = []
    first = True
    for result in results:
        if not first:
            print()
        first = False
        if result.trace is None:
            print(f"trace: {result.algorithm}  (result carries no trace)")
        else:
            print(render_trace(result.trace, metrics=not args.no_metrics))
        if args.check:
            for error in (verify_result_trace(result),
                          verify_result_faults(result),
                          verify_result_plan(result)):
                if error is not None:
                    failures.append(error)
    if args.out and not args.load:
        n = append_results_jsonl(results, args.out)
        print(f"\n{n} trace record(s) appended to {args.out}")
    if args.check:
        print()
        if failures:
            for error in failures:
                print(f"TRACE CHECK FAILED: {error}")
            return 1
        print(f"trace check OK: {len(results)} result(s), every phase sum "
              "matches its reported total, every fault report is "
              "consistent with its trace counters, and every planned "
              "result's prediction bookkeeping holds")
    return 0


def _cmd_chaos(args) -> int:
    if args.serve and args.spill:
        print("error: --serve and --spill are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.spill:
        return run_spill_chaos(n=args.tuples, theta=args.theta,
                               seed=args.seed,
                               artifact_dir=args.artifact_dir)
    if args.serve:
        return run_serve_chaos(n=args.tuples, theta=args.theta,
                               seed=args.seed, clients=args.clients,
                               requests=args.requests,
                               health_out=args.health_out)
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    join_input = ZipfWorkload(args.tuples, args.tuples, args.theta,
                              seed=args.seed).generate()
    outcome = run_chaos(join_input, seed=args.seed, algorithms=algorithms)
    print(outcome.render())
    if not outcome.ok:
        print(f"\nCHAOS SWEEP FAILED: {outcome.n_failed} case(s) did not "
              "recover exactly or fail with a typed report")
        return 1
    return 0


def _cmd_serve(args) -> int:
    if args.smoke:
        return run_smoke(n=args.tuples, theta=args.theta, seed=args.seed,
                         trace_out=args.trace_out)
    import asyncio

    planner = None
    if args.planner == "auto":
        from repro.plan import ServeProbePlanner
        planner = ServeProbePlanner()
    engine = ServeEngine(
        cache_entries=args.cache_entries,
        planner=planner,
        admission=AdmissionController(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            max_morsels=args.max_morsels,
            morsel_tuples=args.morsel_tuples,
        ),
        circuit_threshold=args.circuit_threshold,
        circuit_reset_seconds=args.circuit_reset_seconds,
    )

    async def serve() -> None:
        import signal

        server = ServeServer(engine=engine, host=args.host, port=args.port,
                             trace_path=args.trace_out,
                             drain_seconds=args.drain_seconds)
        await server.start()
        # SIGTERM/SIGINT trigger the graceful drain: stop accepting,
        # give in-flight probes drain_seconds, then cancel them with
        # typed errors instead of dying mid-write.
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platform without signal handler support
        print(f"repro serve listening on {server.address} "
              f"(NDJSON protocol v{PROTOCOL_VERSION}, "
              f"cache {args.cache_entries} entries, "
              f"drain {args.drain_seconds:g}s)", flush=True)
        await server.serve_until_shutdown()
        await server.close()
        stats = engine.stats()
        print(f"repro serve: shutdown after {stats['completed']} completed "
              f"request(s), {stats['cache']['hits']} cache hit(s)")

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        return 130
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "plan":
            return _cmd_plan(args)
    except BrokenPipeError:  # output truncated by a closed pipe (| head)
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
