"""Simulated CPU thread pool.

The paper runs all CPU joins with 20 threads.  Python executes the
(numpy-vectorized) work in one process; this module reproduces the *timing
structure* of the multi-threaded original: work is decomposed into the same
per-thread segments or queue tasks as the real code, per-unit costs come
from the exact operation counters, and a phase's simulated time is the
makespan of its schedule.

Both phase pricers probe the active fault scope's ``phase`` injection
point: an injected phase abort (the CPU analogue of a kernel abort) is
recovered by re-running the phase — charging a ``crash_cost_fraction`` of
the makespan per wasted execution plus exponential backoff — until the
policy's retry budget runs out, at which point the phase raises
:class:`UnrecoveredFaultError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cpu.task_queue import ScheduleResult, greedy_schedule, static_makespan
from repro.errors import ConfigError, UnrecoveredFaultError
from repro.exec.counters import OpCounters
from repro.exec.cost_model import CPUCostModel, DEFAULT_CPU_COST_MODEL
from repro.faults.plan import KERNEL_ABORT
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope
from repro.obs.trace import current_tracer


@dataclass
class ThreadPool:
    """A pool of ``n_threads`` simulated workers with a shared cost model."""

    n_threads: int = 20
    cost_model: CPUCostModel = DEFAULT_CPU_COST_MODEL

    def __post_init__(self):
        if self.n_threads <= 0:
            raise ConfigError(f"n_threads must be positive, got {self.n_threads}")

    def static_phase_seconds(
        self,
        per_thread: Sequence[OpCounters],
        extra_seconds: Optional[Sequence[float]] = None,
    ) -> float:
        """Simulated time of a statically divided phase (slowest thread).

        ``extra_seconds`` adds per-thread costs the counters do not capture
        (e.g. wasted retry work of a crashed probe segment).
        """
        seconds = [self.cost_model.seconds(c) for c in per_thread]
        if extra_seconds is not None:
            if len(extra_seconds) != len(seconds):
                raise ConfigError(
                    f"extra_seconds must match per_thread: got "
                    f"{len(extra_seconds)} extras for {len(seconds)} threads"
                )
            seconds = [s + e for s, e in zip(seconds, extra_seconds)]
        makespan = static_makespan(seconds)
        metrics = current_tracer().metrics
        metrics.counter("threadpool.static_phases").inc()
        if makespan > 0:
            # Imbalance of the static split: idle worker-time fraction.
            busy = sum(seconds)
            capacity = makespan * max(len(seconds), 1)
            metrics.histogram("threadpool.idle_fraction").observe(
                max(0.0, 1.0 - busy / capacity)
            )
        return makespan + self._phase_recovery_seconds(makespan)

    def queue_phase_seconds(
        self,
        task_counters: Sequence[OpCounters],
        extra_task_seconds: Optional[Sequence[float]] = None,
    ) -> ScheduleResult:
        """Simulated time of a task-queue phase.

        ``extra_task_seconds`` lets callers add per-task costs the counters
        do not capture (none by default).  Each task also pays the cost
        model's fixed dispatch overhead.
        """
        costs: List[float] = [
            self.cost_model.task_seconds(c) for c in task_counters
        ]
        if extra_task_seconds is not None:
            if len(extra_task_seconds) != len(costs):
                raise ConfigError(
                    f"extra_task_seconds must match task_counters: got "
                    f"{len(extra_task_seconds)} extra costs for "
                    f"{len(costs)} tasks"
                )
            costs = [c + e for c, e in zip(costs, extra_task_seconds)]
        schedule = greedy_schedule(costs, self.n_threads)
        metrics = current_tracer().metrics
        metrics.counter("threadpool.queue_phases").inc()
        metrics.counter("threadpool.tasks_dispatched").inc(len(costs))
        if schedule.makespan > 0:
            metrics.histogram("threadpool.idle_fraction").observe(
                schedule.idle_fraction
            )
        overhead = self._phase_recovery_seconds(schedule.makespan)
        if overhead > 0:
            schedule = ScheduleResult(
                makespan=schedule.makespan + overhead,
                worker_finish=schedule.worker_finish,
                assignment=schedule.assignment,
            )
        return schedule

    def _phase_recovery_seconds(self, makespan: float) -> float:
        """Probe the ``phase`` injection point; absorb aborts by re-running.

        Returns the simulated overhead (wasted re-executions + backoff) to
        add to the phase makespan; raises :class:`UnrecoveredFaultError`
        once the retry budget is exhausted.
        """
        scope = current_fault_scope()
        policy = scope.policy
        retries = 0
        backoff_total = 0.0
        kind = KERNEL_ABORT
        while True:
            spec = scope.fire("phase")
            if spec is None:
                break
            retries += 1
            kind = spec.kind
            backoff_total += policy.backoff_seconds(retries)
            if retries > policy.max_retries:
                report = scope.record(FailureReport(
                    kind=kind, point="phase", algorithm=scope.algorithm,
                    phase=current_phase_name(), action="abort",
                    recovered=False, injected=True, retries=retries,
                    backoff_seconds=backoff_total,
                    error="phase re-execution budget exhausted",
                    context={"makespan_seconds": makespan},
                ))
                raise UnrecoveredFaultError(
                    f"phase abort exhausted {policy.max_retries} retries",
                    report=report)
        if retries == 0:
            return 0.0
        wasted = retries * policy.crash_cost_fraction * makespan
        scope.record(FailureReport(
            kind=kind, point="phase", algorithm=scope.algorithm,
            phase=current_phase_name(), action="re-run", recovered=True,
            injected=True, retries=retries, backoff_seconds=backoff_total,
            error="injected phase abort",
            context={"wasted_seconds": wasted},
        ))
        current_tracer().metrics.counter("threadpool.phase_retries").inc(
            retries)
        return wasted + backoff_total
