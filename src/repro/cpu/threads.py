"""Simulated CPU thread pool.

The paper runs all CPU joins with 20 threads.  Python executes the
(numpy-vectorized) work in one process; this module reproduces the *timing
structure* of the multi-threaded original: work is decomposed into the same
per-thread segments or queue tasks as the real code, per-unit costs come
from the exact operation counters, and a phase's simulated time is the
makespan of its schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cpu.task_queue import ScheduleResult, greedy_schedule, static_makespan
from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from repro.exec.cost_model import CPUCostModel, DEFAULT_CPU_COST_MODEL
from repro.obs.trace import current_tracer


@dataclass
class ThreadPool:
    """A pool of ``n_threads`` simulated workers with a shared cost model."""

    n_threads: int = 20
    cost_model: CPUCostModel = DEFAULT_CPU_COST_MODEL

    def __post_init__(self):
        if self.n_threads <= 0:
            raise ConfigError(f"n_threads must be positive, got {self.n_threads}")

    def static_phase_seconds(self, per_thread: Sequence[OpCounters]) -> float:
        """Simulated time of a statically divided phase (slowest thread)."""
        seconds = [self.cost_model.seconds(c) for c in per_thread]
        makespan = static_makespan(seconds)
        metrics = current_tracer().metrics
        metrics.counter("threadpool.static_phases").inc()
        if makespan > 0:
            # Imbalance of the static split: idle worker-time fraction.
            busy = sum(seconds)
            capacity = makespan * max(len(seconds), 1)
            metrics.histogram("threadpool.idle_fraction").observe(
                max(0.0, 1.0 - busy / capacity)
            )
        return makespan

    def queue_phase_seconds(
        self,
        task_counters: Sequence[OpCounters],
        extra_task_seconds: Optional[Sequence[float]] = None,
    ) -> ScheduleResult:
        """Simulated time of a task-queue phase.

        ``extra_task_seconds`` lets callers add per-task costs the counters
        do not capture (none by default).  Each task also pays the cost
        model's fixed dispatch overhead.
        """
        costs: List[float] = [
            self.cost_model.task_seconds(c) for c in task_counters
        ]
        if extra_task_seconds is not None:
            if len(extra_task_seconds) != len(costs):
                raise ConfigError(
                    f"extra_task_seconds must match task_counters: got "
                    f"{len(extra_task_seconds)} extra costs for "
                    f"{len(costs)} tasks"
                )
            costs = [c + e for c, e in zip(costs, extra_task_seconds)]
        schedule = greedy_schedule(costs, self.n_threads)
        metrics = current_tracer().metrics
        metrics.counter("threadpool.queue_phases").inc()
        metrics.counter("threadpool.tasks_dispatched").inc(len(costs))
        if schedule.makespan > 0:
            metrics.histogram("threadpool.idle_fraction").observe(
                schedule.idle_fraction
            )
        return schedule
