"""cbase-npj: the no-partition hash join baseline.

The paper also compares against "a no-partition join in the same code
repository" as Cbase.  It builds one global chained hash table over R in
parallel and probes it with S in parallel.  Because the table far exceeds
the CPU caches, every head fetch and chain step is an uncached random
memory access — which is why Figure 4a shows it as the worst performer.

cbase-npj is also the bottom rung of the fault-recovery fallback ladder (a
GPU pipeline that exhausts kernel retries lands here), so its own phases
are instrumented: the global build regrows its table on capacity overflow
and the probe segments retry on injected worker crashes, both with bounded
backoff charged to the phase makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.chained_table import ChainedHashTable
from repro.cpu.hashing import hash_keys, next_pow2
from repro.cpu.segments import split_segments
from repro.cpu.threads import ThreadPool
from repro.data.relation import JoinInput
from repro.errors import ConfigError
from repro.exec.backend import current_backend
from repro.exec.counters import OpCounters
from repro.exec.cost_model import CPUCostModel, DEFAULT_CPU_COST_MODEL
from repro.exec.output import DEFAULT_CAPACITY, JoinOutputBuffer, combine_summaries
from repro.exec.result import JoinResult
from repro.faults.recovery import run_task_with_recovery
from repro.faults.scope import current_fault_scope, fault_scope
from repro.obs.rss import peak_rss_bytes
from repro.obs.trace import Tracer, activate


@dataclass(frozen=True)
class NoPartitionConfig:
    """Tuning knobs for the no-partition join."""

    n_threads: int = 20
    output_capacity: int = DEFAULT_CAPACITY
    cost_model: CPUCostModel = DEFAULT_CPU_COST_MODEL

    def __post_init__(self):
        if self.n_threads <= 0:
            raise ConfigError("n_threads must be positive")


class NoPartitionJoin:
    """cbase-npj: global chained table, parallel build and probe."""

    name = "cbase-npj"

    def __init__(self, config: NoPartitionConfig = NoPartitionConfig()):
        self.config = config
        self.pool = ThreadPool(config.n_threads, config.cost_model)

    def run(self, join_input: JoinInput) -> JoinResult:
        """Execute cbase-npj: global build, then parallel probe."""
        cfg = self.config
        r, s = join_input.r, join_input.s
        result = JoinResult(
            algorithm=self.name, n_r=len(r), n_s=len(s),
            output_count=0, output_checksum=0,
            meta={"backend": current_backend()},
        )
        tracer = Tracer(self.name, algorithm=self.name,
                        n_r=len(r), n_s=len(s))
        metrics = tracer.metrics
        with activate(tracer), fault_scope(self.name) as faults:
            metrics.counter("join.tuples_scanned").inc(len(r) + len(s))

            with tracer.span("build", algo=self.name) as span:
                table, build_counters, overhead = self._build(r)
                per_thread = self._split_counters(build_counters, len(r),
                                                  cfg.n_threads)
                span.finish(
                    simulated_seconds=self.pool.static_phase_seconds(
                        per_thread,
                        extra_seconds=[overhead] * len(per_thread)),
                    counters=build_counters,
                )
            result.phases.append(span.phase_result)

            with tracer.span("probe", algo=self.name) as span:
                per_thread, extras, summaries, total = self._probe(table, s)
                span.finish(
                    simulated_seconds=self.pool.static_phase_seconds(
                        per_thread, extra_seconds=extras),
                    counters=total,
                )
            result.phases.append(span.phase_result)

        summary = combine_summaries(summaries)
        result.output_count = summary.count
        result.output_checksum = summary.checksum
        metrics.counter("join.output_tuples").inc(result.output_count)
        result.meta["peak_rss_bytes"] = peak_rss_bytes()
        result.faults = faults.reports
        result.trace = tracer.record()
        return result

    def _build(self, r):
        """Build the global table, regrowing on capacity overflow.

        Returns ``(table, counters, overhead_seconds)`` where the overhead
        is the per-thread cost of wasted build attempts plus backoff.
        """
        cfg = self.config
        scope = current_fault_scope()

        def run(counters: OpCounters, attempt: int):
            table = ChainedHashTable(
                next_pow2(max(len(r), 1)) << min(attempt, 8))
            table.build(r.keys, r.payloads, counters=counters,
                        random_access=True)
            return table

        outcome = run_task_with_recovery(run, scope, points=("capacity",),
                                         structure="global-chained-table")
        overhead = sum(
            cfg.cost_model.seconds(w) / cfg.n_threads for w in outcome.wasted
        ) + sum(outcome.backoffs)
        return outcome.value, outcome.counters, overhead

    @staticmethod
    def _split_counters(total: OpCounters, n: int, n_threads: int):
        """Distribute uniform per-tuple counters across thread segments."""
        if n == 0:
            return [OpCounters() for _ in range(n_threads)]
        per_thread = []
        for a, b in split_segments(n, n_threads):
            frac = (b - a) / n
            per_thread.append(OpCounters(
                **{k: int(round(v * frac)) for k, v in total.as_dict().items()}
            ))
        return per_thread

    def _probe(self, table: ChainedHashTable, s):
        """Probe S in per-thread segments against the global table.

        Each segment is one task for the recovery engine: an injected
        worker crash re-runs the segment, charging the wasted fraction and
        backoff as extra seconds on that segment's thread.

        A lazy (out-of-core) S streams through the same segments: each
        morsel is paged in and hashed on arrival, so residency stays at
        one segment's columns instead of the whole probe side.  Hashing
        is element-wise, which keeps the streamed probe bit-identical —
        counters, summaries, and simulated seconds all match the in-RAM
        run.
        """
        cfg = self.config
        scope = current_fault_scope()
        streaming = getattr(s, "is_lazy", False)
        hashes = None if streaming else hash_keys(s.keys)
        per_thread = []
        extras = []
        summaries = []
        total = OpCounters()
        for t, (a, b) in enumerate(split_segments(len(s), cfg.n_threads)):
            if streaming:
                seg_keys, seg_payloads = s.morsel(a, b)
                seg_hashes = hash_keys(seg_keys)
            else:
                seg_keys, seg_payloads = s.keys[a:b], s.payloads[a:b]
                seg_hashes = hashes[a:b]

            def run(counters: OpCounters, attempt: int, seg_keys=seg_keys,
                    seg_payloads=seg_payloads, seg_hashes=seg_hashes):
                # The probe dispatches on the ambient backend: batched
                # group-wise matching (vector) or the literal chain walk
                # (scalar).  Counters are identical either way; every
                # access against the global table is random (uncached).
                buf = JoinOutputBuffer(cfg.output_capacity)
                return table.probe(
                    seg_keys, seg_payloads, buf,
                    counters=counters, hashes=seg_hashes,
                    random_access=True,
                )

            outcome = run_task_with_recovery(run, scope, points=("task",),
                                             segment=t)
            extra = sum(
                cfg.cost_model.seconds(w) for w in outcome.wasted
            ) + sum(outcome.backoffs)
            per_thread.append(outcome.counters)
            extras.append(extra)
            summaries.append(outcome.value)
            total += outcome.counters
        return per_thread, extras, summaries, total
