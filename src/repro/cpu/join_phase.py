"""The CPU join phase: per-partition-pair chained-hash join tasks.

Both Cbase and CSH's NM-join run this phase: every (R partition, S
partition) pair becomes a task in a queue; a worker pops a task, builds a
chained hash table over the R partition, probes it with the S partition,
and writes matches to its output buffer.  The phase's simulated time is the
greedy task-queue makespan — which is where skewed partitions show up as
one dominating task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cpu.chained_table import ChainedHashTable
from repro.cpu.hashing import next_pow2
from repro.cpu.partition import PartitionedRelation
from repro.cpu.task_queue import ScheduleResult
from repro.cpu.threads import ThreadPool
from repro.exec.counters import OpCounters
from repro.exec.output import (
    DEFAULT_CAPACITY,
    JoinOutputBuffer,
    OutputSummary,
    combine_summaries,
)
from repro.faults.recovery import run_task_with_recovery
from repro.faults.report import current_phase_name
from repro.faults.scope import current_fault_scope
from repro.store.spill import current_spill_session


@dataclass
class JoinPhaseResult:
    """Outcome of a task-queued join phase."""

    summary: OutputSummary
    schedule: ScheduleResult
    task_counters: List[OpCounters] = field(default_factory=list)
    buffers: List[JoinOutputBuffer] = field(default_factory=list)

    @property
    def counters(self) -> OpCounters:
        """Total operation counters across all join tasks."""
        return OpCounters.sum(self.task_counters)

    @property
    def simulated_seconds(self) -> float:
        """Phase makespan on the simulated workers."""
        return self.schedule.makespan

    @property
    def task_count(self) -> int:
        """Number of join tasks executed."""
        return len(self.task_counters)


def join_partition_pairs(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    pool: ThreadPool,
    pairs: Optional[Sequence[int]] = None,
    output_capacity: int = DEFAULT_CAPACITY,
) -> JoinPhaseResult:
    """Join partition p of R with partition p of S for each selected p.

    ``pairs`` selects partition indices (default: all non-empty pairs).
    Tasks execute functionally in order; the simulated phase time is the
    greedy schedule of the measured per-task costs over the pool's workers,
    and each task's output lands in the buffer of its scheduled worker.

    Every task runs through the fault-recovery engine: injected worker
    crashes and capacity overflows are absorbed before the functional work
    executes (a retried task writes its output exactly once, so tuples are
    never double-counted), organic ``CapacityError`` raises retry with a
    table grown by one doubling per attempt, and every failed attempt plus
    its backoff is charged serially to the retried task's queue slot.
    """
    if part_r.fanout != part_s.fanout:
        raise ValueError(
            f"fanout mismatch: R has {part_r.fanout}, S has {part_s.fanout}"
        )
    if pairs is None:
        r_sizes = part_r.sizes()
        s_sizes = part_s.sizes()
        pairs = np.flatnonzero((r_sizes > 0) & (s_sizes > 0))
    scope = current_fault_scope()
    session = current_spill_session()
    phase_label = current_phase_name()
    buffers = [JoinOutputBuffer(output_capacity) for _ in range(pool.n_threads)]
    task_counters: List[OpCounters] = []
    extra_seconds: List[float] = []
    success_counters: List[OpCounters] = []
    task_summaries: List[OutputSummary] = []
    for i, p in enumerate(pairs):
        if session is not None:
            # Resume path: a pair already in the checkpoint ledger folds
            # its durable (count, checksum) straight into the summary —
            # order independence makes the skip exact in any order.
            done = session.pair_done(phase_label, int(p))
            if done is not None:
                task_summaries.append(done)
                continue
        buffer = buffers[i % len(buffers)]

        def run(counters: OpCounters, attempt: int, p=int(p), buffer=buffer):
            return join_one_pair(part_r, part_s, p, counters, buffer,
                                 growth=attempt)

        outcome = run_task_with_recovery(run, scope, partition=int(p))
        # A retry is serial on the retried task's own timeline: crashed
        # attempts and backoff delays are charged to the same queue slot as
        # the successful execution, never hidden as free parallel work.
        extra = sum(
            pool.cost_model.task_seconds(w) for w in outcome.wasted
        ) + sum(outcome.backoffs)
        task_counters.append(outcome.counters)
        extra_seconds.append(extra)
        success_counters.append(outcome.counters)
        task_summaries.append(outcome.value)
        if session is not None:
            # Fsync'd checkpoint: after this returns, a crash can no
            # longer lose the pair — resume will skip it.
            session.record_pair(phase_label, int(p), outcome.value)
    schedule = pool.queue_phase_seconds(task_counters, extra_seconds)
    summary = combine_summaries(task_summaries)
    return JoinPhaseResult(
        summary=summary,
        schedule=schedule,
        task_counters=success_counters,
        buffers=buffers,
    )


def join_one_pair(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    p: int,
    counters: OpCounters,
    buffer: JoinOutputBuffer,
    growth: int = 0,
) -> OutputSummary:
    """Build-and-probe one partition pair (one join task).

    ``growth`` doubles the hash-table bucket count that many times — the
    capacity-overflow recovery path rebuilds with a bigger table.
    """
    r_keys, r_pays = part_r.partition(p)
    s_keys, s_pays = part_s.partition(p)
    if r_keys.size == 0 or s_keys.size == 0:
        return OutputSummary()
    table = ChainedHashTable(next_pow2(max(r_keys.size, 1)) << min(growth, 8))
    table.build(r_keys, r_pays, hashes=part_r.partition_hashes(p),
                counters=counters)
    return table.probe(
        s_keys, s_pays, buffer, counters=counters,
        hashes=part_s.partition_hashes(p),
    )


def pair_output_counts(
    part_r: PartitionedRelation, part_s: PartitionedRelation
) -> np.ndarray:
    """Exact join output size of each partition pair (diagnostics)."""
    out = np.zeros(part_r.fanout, dtype=object)
    for p in range(part_r.fanout):
        r_keys, _ = part_r.partition(p)
        s_keys, _ = part_s.partition(p)
        if r_keys.size == 0 or s_keys.size == 0:
            out[p] = 0
            continue
        ru, rc = np.unique(r_keys, return_counts=True)
        su, sc = np.unique(s_keys, return_counts=True)
        shared, ir, i_s = np.intersect1d(ru, su, assume_unique=True,
                                         return_indices=True)
        out[p] = int(np.sum(rc[ir].astype(object) * sc[i_s].astype(object)))
    return out
