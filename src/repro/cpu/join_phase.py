"""The CPU join phase: per-partition-pair chained-hash join tasks.

Both Cbase and CSH's NM-join run this phase: every (R partition, S
partition) pair becomes a task in a queue; a worker pops a task, builds a
chained hash table over the R partition, probes it with the S partition,
and writes matches to its output buffer.  The phase's simulated time is the
greedy task-queue makespan — which is where skewed partitions show up as
one dominating task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cpu.chained_table import ChainedHashTable
from repro.cpu.hashing import next_pow2
from repro.cpu.partition import PartitionedRelation
from repro.cpu.task_queue import ScheduleResult
from repro.cpu.threads import ThreadPool
from repro.exec.counters import OpCounters
from repro.exec.output import (
    DEFAULT_CAPACITY,
    JoinOutputBuffer,
    OutputSummary,
    combine_summaries,
)


@dataclass
class JoinPhaseResult:
    """Outcome of a task-queued join phase."""

    summary: OutputSummary
    schedule: ScheduleResult
    task_counters: List[OpCounters] = field(default_factory=list)
    buffers: List[JoinOutputBuffer] = field(default_factory=list)

    @property
    def counters(self) -> OpCounters:
        """Total operation counters across all join tasks."""
        return OpCounters.sum(self.task_counters)

    @property
    def simulated_seconds(self) -> float:
        """Phase makespan on the simulated workers."""
        return self.schedule.makespan

    @property
    def task_count(self) -> int:
        """Number of join tasks executed."""
        return len(self.task_counters)


def join_partition_pairs(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    pool: ThreadPool,
    pairs: Optional[Sequence[int]] = None,
    output_capacity: int = DEFAULT_CAPACITY,
) -> JoinPhaseResult:
    """Join partition p of R with partition p of S for each selected p.

    ``pairs`` selects partition indices (default: all non-empty pairs).
    Tasks execute functionally in order; the simulated phase time is the
    greedy schedule of the measured per-task costs over the pool's workers,
    and each task's output lands in the buffer of its scheduled worker.
    """
    if part_r.fanout != part_s.fanout:
        raise ValueError(
            f"fanout mismatch: R has {part_r.fanout}, S has {part_s.fanout}"
        )
    if pairs is None:
        r_sizes = part_r.sizes()
        s_sizes = part_s.sizes()
        pairs = np.flatnonzero((r_sizes > 0) & (s_sizes > 0))
    buffers = [JoinOutputBuffer(output_capacity) for _ in range(pool.n_threads)]
    task_counters: List[OpCounters] = []
    task_summaries: List[OutputSummary] = []
    for p in pairs:
        counters = OpCounters()
        summary = join_one_pair(part_r, part_s, int(p), counters,
                                buffers[len(task_counters) % len(buffers)])
        task_counters.append(counters)
        task_summaries.append(summary)
    schedule = pool.queue_phase_seconds(task_counters)
    summary = combine_summaries(task_summaries)
    return JoinPhaseResult(
        summary=summary,
        schedule=schedule,
        task_counters=task_counters,
        buffers=buffers,
    )


def join_one_pair(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    p: int,
    counters: OpCounters,
    buffer: JoinOutputBuffer,
) -> OutputSummary:
    """Build-and-probe one partition pair (one join task)."""
    r_keys, r_pays = part_r.partition(p)
    s_keys, s_pays = part_s.partition(p)
    if r_keys.size == 0 or s_keys.size == 0:
        return OutputSummary()
    table = ChainedHashTable(next_pow2(max(r_keys.size, 1)))
    table.build(r_keys, r_pays, hashes=part_r.partition_hashes(p),
                counters=counters)
    return table.probe_grouped(
        s_keys, s_pays, buffer, counters=counters,
        hashes=part_s.partition_hashes(p),
    )


def pair_output_counts(
    part_r: PartitionedRelation, part_s: PartitionedRelation
) -> np.ndarray:
    """Exact join output size of each partition pair (diagnostics)."""
    out = np.zeros(part_r.fanout, dtype=object)
    for p in range(part_r.fanout):
        r_keys, _ = part_r.partition(p)
        s_keys, _ = part_s.partition(p)
        if r_keys.size == 0 or s_keys.size == 0:
            out[p] = 0
            continue
        ru, rc = np.unique(r_keys, return_counts=True)
        su, sc = np.unique(s_keys, return_counts=True)
        shared, ir, i_s = np.intersect1d(ru, su, assume_unique=True,
                                         return_indices=True)
        out[p] = int(np.sum(rc[ir].astype(object) * sc[i_s].astype(object)))
    return out
