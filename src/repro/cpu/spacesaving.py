"""Space-Saving (Misra-Gries) heavy-hitter summary.

An extension to the paper's sampling-based skew detection: a streaming
summary that scans the whole key column once with a fixed number of
counters and guarantees to report every key whose frequency exceeds
``n / capacity`` — no sampling variance, at the cost of touching every
tuple.  CSH can use it as a drop-in detector
(``CSHConfig(detector="spacesaving")``), trading a full scan for
deterministic recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.exec.counters import OpCounters


@dataclass
class HeavyHitter:
    """One reported key with its count bounds."""

    key: int
    count_lower: int
    count_upper: int


class SpaceSavingSummary:
    """Misra-Gries summary with ``capacity`` counters.

    Guarantees after a full pass over ``n`` keys: every key with true
    frequency > n / capacity is present, and each stored estimate
    overestimates by at most the minimum counter value.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._counts: Dict[int, int] = {}
        self._errors: Dict[int, int] = {}
        self.n_processed = 0

    def update(self, keys: np.ndarray,
               counters: OpCounters = None) -> None:
        """Fold a key batch into the summary.

        The batch is pre-aggregated (vectorized) and merged key by key,
        which is equivalent to per-tuple Space-Saving up to tie order and
        keeps the Python-level work proportional to distinct keys.
        """
        keys = np.asarray(keys, dtype=np.uint32)
        uniq, batch_counts = np.unique(keys, return_counts=True)
        for key, count in zip(uniq.tolist(), batch_counts.tolist()):
            self._insert(int(key), int(count))
        self.n_processed += int(keys.size)
        if counters is not None:
            counters.seq_tuple_reads += int(keys.size)
            counters.hash_ops += int(keys.size)
            counters.chain_steps += int(keys.size)  # summary lookup each
            counters.bytes_read += 8 * int(keys.size)

    def _insert(self, key: int, count: int) -> None:
        if key in self._counts:
            self._counts[key] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            return
        # Evict the minimum counter (Space-Saving replacement).
        victim = min(self._counts, key=self._counts.get)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + count
        self._errors[key] = floor

    def heavy_hitters(self, threshold: int) -> Tuple[np.ndarray, list]:
        """Keys whose *guaranteed* count meets the threshold.

        Returns (sorted key array, HeavyHitter details).  Using the lower
        bound (estimate - error) means no false positives above the
        threshold from eviction noise.
        """
        report = []
        for key, estimate in self._counts.items():
            lower = estimate - self._errors[key]
            if lower >= threshold:
                report.append(HeavyHitter(key=key, count_lower=lower,
                                          count_upper=estimate))
        report.sort(key=lambda h: h.key)
        keys = np.asarray([h.key for h in report], dtype=np.uint32)
        return keys, report

    def guarantee_threshold(self) -> float:
        """Smallest true frequency certain to be captured."""
        return self.n_processed / self.capacity


def streaming_skew_detection(
    keys: np.ndarray,
    min_frequency: float = 1e-4,
    counters: OpCounters = None,
    batch: int = 1 << 16,
) -> np.ndarray:
    """One-pass detection of keys with frequency >= ``min_frequency``.

    Sizes the summary at 2 / min_frequency counters so the report is both
    complete (no misses above the threshold) and precise (lower bounds
    filter eviction noise).
    """
    if not 0 < min_frequency < 1:
        raise ConfigError("min_frequency must be in (0, 1)")
    keys = np.asarray(keys, dtype=np.uint32)
    capacity = max(int(2.0 / min_frequency), 4)
    summary = SpaceSavingSummary(capacity)
    for start in range(0, keys.size, batch):
        summary.update(keys[start:start + batch], counters=counters)
    threshold = max(int(min_frequency * keys.size), 1)
    detected, _ = summary.heavy_hitters(threshold)
    return detected
