"""Cbase: the baseline CPU parallel radix join.

A from-scratch implementation of the radix join the paper baselines
against ([16], Balkesen et al., as described in the paper's Section II-B):

* **Partition phase** — two passes.  Pass 1 statically divides the input
  into per-thread segments; each thread scans twice (count, then copy) so
  partitioning is contention free.  Pass 2 treats every pass-1 partition as
  a task in a queue drained by the threads.
* **Skew handling** — partitions much larger than average are broken up
  with additional radix bits (which cannot separate same-key tuples), and
  the join-phase task queue dynamically balances task load.
* **Join phase** — every (R, S) partition pair is a task: build a chained
  hash table over the R partition, probe with the S partition, write
  matches to the worker's output buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cpu.join_phase import join_partition_pairs
from repro.cpu.partition import (
    choose_radix_bits,
    partition_pass,
    refine_pass,
)
from repro.cpu.hashing import hash_keys
from repro.cpu.threads import ThreadPool
from repro.data.relation import JoinInput
from repro.errors import ConfigError
from repro.exec.backend import current_backend
from repro.exec.counters import OpCounters
from repro.exec.cost_model import CPUCostModel, DEFAULT_CPU_COST_MODEL
from repro.exec.output import DEFAULT_CAPACITY
from repro.exec.result import JoinResult
from repro.faults.scope import fault_scope
from repro.obs.rss import peak_rss_bytes
from repro.obs.trace import Tracer, activate
from repro.store.spill import current_spill_session


@dataclass(frozen=True)
class CbaseConfig:
    """Tuning knobs for the Cbase radix join."""

    n_threads: int = 20
    #: Target tuples per final partition (cache-sized partitions).
    target_partition_tuples: int = 2048
    #: Explicit pass bit widths; None derives them from the target size.
    bits_pass1: Optional[int] = None
    bits_pass2: Optional[int] = None
    #: Split partitions larger than this multiple of the average size.
    split_factor: float = 4.0
    #: Extra radix bits used when splitting an oversized partition.
    split_bits: int = 2
    output_capacity: int = DEFAULT_CAPACITY
    cost_model: CPUCostModel = DEFAULT_CPU_COST_MODEL

    def __post_init__(self):
        if self.n_threads <= 0:
            raise ConfigError("n_threads must be positive")
        if self.split_factor <= 1.0:
            raise ConfigError("split_factor must exceed 1.0")
        if self.split_bits < 0:
            raise ConfigError("split_bits must be non-negative")

    def resolve_bits(self, n_tuples: int) -> Tuple[int, int]:
        """Radix bit widths for the partition passes."""
        if self.bits_pass1 is not None:
            return self.bits_pass1, self.bits_pass2 or 0
        return choose_radix_bits(n_tuples, self.target_partition_tuples)


class CbaseJoin:
    """The Cbase pipeline: partition (two passes + skew split), then join."""

    name = "cbase"

    def __init__(self, config: CbaseConfig = CbaseConfig()):
        self.config = config
        self.pool = ThreadPool(config.n_threads, config.cost_model)

    def run(self, join_input: JoinInput) -> JoinResult:
        """Execute the pipeline and return its JoinResult."""
        cfg = self.config
        r, s = join_input.r, join_input.s
        bits1, bits2 = cfg.resolve_bits(max(len(r), len(s)))
        result = JoinResult(
            algorithm=self.name, n_r=len(r), n_s=len(s),
            output_count=0, output_checksum=0,
            meta={"bits_pass1": bits1, "bits_pass2": bits2,
                  "backend": current_backend()},
        )

        tracer = Tracer(self.name, algorithm=self.name,
                        n_r=len(r), n_s=len(s))
        metrics = tracer.metrics
        with activate(tracer), fault_scope(self.name) as faults:
            metrics.counter("join.tuples_scanned").inc(len(r) + len(s))

            with tracer.span("partition", algo=self.name) as span:
                part_r, part_s, seconds, counters, details = (
                    self._partition_both(
                        r.keys, r.payloads, s.keys, s.payloads, bits1, bits2
                    )
                )
                span.finish(simulated_seconds=seconds, counters=counters,
                            **details)
            result.phases.append(span.phase_result)
            metrics.histogram("partition.sizes").observe_many(part_r.sizes())
            metrics.counter("skew.partitions_split").inc(
                int(details.get("split_partitions", 0))
            )

            # Out-of-core gate: with an ambient spill session, oversized
            # partition pairs move to the durable chunk store before the
            # join phase streams them back.  The spill span charges zero
            # simulated seconds and is deliberately NOT appended to
            # result.phases, so a spilled run keeps the exact phase
            # structure (and trace balance) of the in-RAM run.
            spill = current_spill_session()
            if spill is not None:
                with tracer.span("spill", algo=self.name) as span:
                    part_r, part_s = spill.spill_pair(part_r, part_s,
                                                      label="join")
                    span.finish(
                        simulated_seconds=0.0,
                        spilled_partitions=spill.spilled_partitions,
                    )

            with tracer.span("join", algo=self.name) as span:
                phase = join_partition_pairs(
                    part_r, part_s, self.pool,
                    output_capacity=cfg.output_capacity,
                )
                span.finish(
                    simulated_seconds=phase.simulated_seconds,
                    counters=phase.counters,
                    task_count=phase.task_count,
                    idle_fraction=phase.schedule.idle_fraction,
                )
            result.phases.append(span.phase_result)
            metrics.gauge("taskqueue.join_idle_fraction").set(
                phase.schedule.idle_fraction
            )

        result.output_count = phase.summary.count
        result.output_checksum = phase.summary.checksum
        result.meta["join_tasks"] = phase.task_count
        if spill is not None:
            spill.annotate(result)
        metrics.counter("join.output_tuples").inc(result.output_count)
        result.meta["peak_rss_bytes"] = peak_rss_bytes()
        result.faults = faults.reports
        result.trace = tracer.record()
        return result

    def _partition_both(self, r_keys, r_pays, s_keys, s_pays, bits1, bits2):
        """Partition R and S identically; returns aligned partitions.

        The simulated time adds the R and S passes sequentially, matching
        the original's one-table-at-a-time partition phase.
        """
        cfg = self.config
        seconds = 0.0
        counters = OpCounters()
        details = {}
        partitioned = []
        split_mask = None
        for label, keys, pays in (("r", r_keys, r_pays), ("s", s_keys, s_pays)):
            hashes = hash_keys(keys)
            pass1 = partition_pass(keys, pays, hashes, 0, bits1,
                                   cfg.n_threads)
            seconds += self.pool.static_phase_seconds(pass1.unit_counters)
            counters += pass1.total_counters
            current = pass1.partitioned
            if bits2 > 0:
                pass2 = refine_pass(current, bits1, bits2)
                schedule = self.pool.queue_phase_seconds(pass2.unit_counters)
                seconds += schedule.makespan
                counters += pass2.total_counters
                current = pass2.partitioned
            partitioned.append(current)
        part_r, part_s = partitioned

        # Skew handling: split oversized partitions (decided on R, the
        # build side) with extra radix bits, applied to both inputs so the
        # pair alignment is preserved.
        if cfg.split_bits > 0:
            r_sizes = part_r.sizes()
            avg = max(part_r.n / max(part_r.fanout, 1), 1.0)
            split_mask = r_sizes > cfg.split_factor * avg
            if np.any(split_mask):
                start_bit = bits1 + bits2
                refined = []
                for current in (part_r, part_s):
                    ref = refine_pass(current, start_bit, cfg.split_bits,
                                      refine_mask=split_mask)
                    schedule = self.pool.queue_phase_seconds(ref.unit_counters)
                    seconds += schedule.makespan
                    counters += ref.total_counters
                    refined.append(ref.partitioned)
                part_r, part_s = refined
                details["split_partitions"] = int(split_mask.sum())
        return part_r, part_s, seconds, counters, details
