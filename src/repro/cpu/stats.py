"""Partition and workload diagnostics.

Quantifies the phenomena the paper describes qualitatively: partition-size
imbalance, the share of tuples carried by heavy keys, and the theoretical
limit of radix splitting (no partition can shrink below its largest key's
multiplicity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.partition import PartitionedRelation
from repro.errors import WorkloadError


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics of one partitioned relation."""

    fanout: int
    n_tuples: int
    min_size: int
    max_size: int
    mean_size: float
    #: max partition size / mean partition size.
    imbalance: float
    #: Fraction of non-empty partitions.
    occupancy: float
    #: Coefficient of variation of partition sizes.
    cv: float


def partition_stats(partitioned: PartitionedRelation) -> PartitionStats:
    """Compute size statistics over a partitioned relation."""
    sizes = partitioned.sizes()
    if sizes.size == 0:
        raise WorkloadError("relation has no partitions")
    mean = float(sizes.mean())
    return PartitionStats(
        fanout=partitioned.fanout,
        n_tuples=partitioned.n,
        min_size=int(sizes.min()),
        max_size=int(sizes.max()),
        mean_size=mean,
        imbalance=float(sizes.max() / mean) if mean else 0.0,
        occupancy=float((sizes > 0).mean()),
        cv=float(sizes.std() / mean) if mean else 0.0,
    )


def heavy_key_share(keys: np.ndarray, top_k: int = 1) -> float:
    """Fraction of tuples carried by the ``top_k`` most frequent keys."""
    keys = np.asarray(keys)
    if keys.size == 0:
        return 0.0
    _, counts = np.unique(keys, return_counts=True)
    counts = np.sort(counts)[::-1]
    return float(counts[:max(top_k, 0)].sum() / keys.size)


def min_achievable_partition_size(keys: np.ndarray) -> int:
    """The multiplicity of the most frequent key.

    No radix refinement — however many bits — can produce a partition
    smaller than this, because tuples sharing a key share every hash bit
    (the paper's core observation about why splitting cannot fix skew).
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return 0
    _, counts = np.unique(keys, return_counts=True)
    return int(counts.max())


def skew_report(keys: np.ndarray, top_k: int = 5) -> str:
    """Short human-readable skew summary of a key column."""
    keys = np.asarray(keys)
    if keys.size == 0:
        return "empty key column"
    uniq, counts = np.unique(keys, return_counts=True)
    order = np.argsort(counts)[::-1]
    lines = [
        f"{keys.size} tuples, {uniq.size} distinct keys",
        f"heaviest keys cover {heavy_key_share(keys, top_k):.1%} of tuples:",
    ]
    for i in order[:top_k]:
        lines.append(f"  key {int(uniq[i])}: {int(counts[i])} tuples "
                     f"({counts[i] / keys.size:.2%})")
    return "\n".join(lines)
