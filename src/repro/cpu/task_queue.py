"""Task-queue scheduling simulation.

Cbase (and CSH's reuse of its machinery) balances load by pushing partition
tasks and join tasks into a queue from which worker threads repeatedly pop
the next task.  That behaviour is exactly a greedy list schedule: each task,
in queue order, starts on the worker that becomes free first.  The makespan
of that schedule *is* the phase's simulated time, and it is what exposes the
paper's core CPU finding — one skewed join task dominating the entire join
phase no matter how many workers are available.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError


@dataclass
class ScheduleResult:
    """Outcome of a simulated task-queue run."""

    makespan: float
    #: Finish time of each worker.
    worker_finish: np.ndarray
    #: Index of the worker that executed each task (queue order).
    assignment: np.ndarray

    @property
    def idle_fraction(self) -> float:
        """Fraction of total worker-time spent idle before the makespan."""
        if self.makespan == 0:
            return 0.0
        busy = float(self.worker_finish.sum())
        capacity = self.makespan * self.worker_finish.size
        return max(0.0, 1.0 - busy / capacity)


def greedy_schedule(task_seconds: Sequence[float], n_workers: int) -> ScheduleResult:
    """Simulate a FIFO task queue drained by ``n_workers`` workers.

    Tasks are taken in the given order; each goes to the worker with the
    earliest finish time (the worker that "pops the queue" first).  Returns
    the schedule makespan, per-worker finish times, and the assignment.
    """
    if n_workers <= 0:
        raise ConfigError(f"n_workers must be positive, got {n_workers}")
    costs = np.asarray(task_seconds, dtype=np.float64)
    if costs.ndim != 1:
        raise ConfigError("task_seconds must be a 1-D sequence")
    if np.any(costs < 0):
        raise ConfigError("task costs must be non-negative")
    finish = np.zeros(n_workers, dtype=np.float64)
    assignment = np.zeros(costs.size, dtype=np.int64)
    if costs.size == 0:
        return ScheduleResult(0.0, finish, assignment)
    # Heap of (finish_time, worker_id); ties broken by worker id, which makes
    # the simulation deterministic.
    heap: List = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    for i, cost in enumerate(costs):
        t, w = heapq.heappop(heap)
        t += float(cost)
        finish[w] = t
        assignment[i] = w
        heapq.heappush(heap, (t, w))
    return ScheduleResult(float(finish.max()), finish, assignment)


def makespan_bounds(task_seconds: Sequence[float], n_workers: int) -> tuple:
    """Classic lower/upper bounds for any list schedule.

    Returns ``(lower, upper)`` where lower = max(total / workers, max task)
    and upper = total / workers + max task.  Used by tests to sanity-check
    the greedy schedule and by the GPU scheduler's fast path.
    """
    costs = np.asarray(task_seconds, dtype=np.float64)
    if costs.size == 0:
        return 0.0, 0.0
    total = float(costs.sum())
    longest = float(costs.max())
    lower = max(total / n_workers, longest)
    upper = total / n_workers + longest
    return lower, upper


def static_makespan(per_worker_seconds: Sequence[float]) -> float:
    """Makespan of statically pre-assigned work: the slowest worker."""
    costs = np.asarray(per_worker_seconds, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    if np.any(costs < 0):
        raise ConfigError("worker costs must be non-negative")
    return float(costs.max())
