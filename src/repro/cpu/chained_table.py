"""Chained hash table — the join-phase workhorse of Cbase, cbase-npj, CSH.

The table stores entries in insertion order with an intrusive ``next``
chain per bucket, like the bucket-chained tables in the radix-join code the
paper baselines against.  Two probe implementations are provided:

* :meth:`ChainedHashTable.probe_lockstep` walks chains step by step for all
  probe tuples in lockstep — a literal rendition of the scalar algorithm,
  used at small scale to validate the fast path; and
* :meth:`ChainedHashTable.probe_grouped` computes the *identical* operation
  counts and output summary group-wise (every probe of bucket ``b`` walks
  ``len(chain(b))`` nodes and compares keys at each node; matches per key
  are cartesian products), which keeps Python-side work near-linear even
  under heavy skew.

Both report the same counters, so the cost model cannot tell them apart —
a property the test suite checks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cpu.hashing import bits_for, bucket_ids, hash_keys, next_pow2
from repro.errors import CapacityError
from repro.exec.backend import dispatch, is_vector
from repro.exec.cancel import checkpoint
from repro.exec.counters import OpCounters
from repro.exec.matching import emit_matches
from repro.exec.output import JoinOutputBuffer, OutputSummary

_U64_MASK = (1 << 64) - 1

#: Scalar-build entries between cooperative cancellation checkpoints.
_CHECKPOINT_STRIDE = 16384


class ChainedHashTable:
    """A bucket-chained hash table over (key, payload) entries."""

    def __init__(self, n_buckets: int):
        n_buckets = next_pow2(n_buckets)
        self.n_buckets = n_buckets
        self.bucket_bits = bits_for(n_buckets)
        self.heads = np.full(n_buckets, -1, dtype=np.int64)
        self.next = np.empty(0, dtype=np.int64)
        self.keys = np.empty(0, dtype=np.uint32)
        self.payloads = np.empty(0, dtype=np.uint32)
        self._chain_lengths = np.zeros(n_buckets, dtype=np.int64)
        self._built = False

    @property
    def n_entries(self) -> int:
        """Number of stored entries."""
        return int(self.keys.size)

    def _bucket_of(self, hashes: np.ndarray) -> np.ndarray:
        return bucket_ids(hashes, self.bucket_bits)

    def build(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        hashes: Optional[np.ndarray] = None,
        counters: Optional[OpCounters] = None,
        random_access: bool = False,
    ) -> None:
        """Insert all tuples (head insertion, preserving insertion order).

        ``random_access=True`` marks each head update as an uncached random
        memory access (the no-partition join's global table); partitioned
        joins leave it False because their tables are cache resident.
        """
        if self._built:
            raise CapacityError(
                "table already built; create a new table",
                structure="chained-hash-table", state="built",
                n_buckets=self.n_buckets, n_entries=self.n_entries,
            )
        keys = np.asarray(keys, dtype=np.uint32)
        payloads = np.asarray(payloads, dtype=np.uint32)
        n = keys.size
        if hashes is None:
            hashes = hash_keys(keys)
        b = self._bucket_of(hashes)
        checkpoint(structure="chained-hash-table", phase="build")
        if is_vector():
            nxt = self._build_links_parallel(b)
            if nxt is None:
                # Batch link construction: one stable sort recovers, per
                # bucket, the exact head-insertion chain the scalar loop
                # would build.
                order = np.argsort(b, kind="stable")
                sorted_b = b[order]
                nxt = np.full(n, -1, dtype=np.int64)
                if n > 1:
                    same = sorted_b[1:] == sorted_b[:-1]
                    nxt[order[1:][same]] = order[:-1][same]
                if n > 0:
                    is_last = np.empty(n, dtype=bool)
                    is_last[:-1] = sorted_b[:-1] != sorted_b[1:]
                    is_last[-1] = True
                    self.heads[sorted_b[is_last]] = order[is_last]
                    self._chain_lengths = np.bincount(
                        b, minlength=self.n_buckets)
        else:
            # Literal head insertion, one entry at a time; a deadline-
            # bearing request can abandon a huge scalar build between
            # strides instead of hanging to the end.
            nxt = np.full(n, -1, dtype=np.int64)
            heads = self.heads
            chains = self._chain_lengths
            for i, bucket in enumerate(b.tolist()):
                if not i % _CHECKPOINT_STRIDE:
                    checkpoint(structure="chained-hash-table",
                               phase="build", entry=i)
                nxt[i] = heads[bucket]
                heads[bucket] = i
                chains[bucket] += 1
        self.next = nxt
        self.keys = keys.copy()
        self.payloads = payloads.copy()
        self._built = True
        if counters is not None:
            counters.hash_ops += n
            counters.table_inserts += n
            counters.bytes_read += 8 * n
            counters.bytes_written += 12 * n  # entry + head pointer update
            if random_access:
                counters.random_accesses += n

    def _build_links_parallel(self, b: np.ndarray) -> Optional[np.ndarray]:
        """Segmented head-insertion links on the worker pool.

        Each worker builds the local chains of one contiguous segment of
        the build input; the driver then stitches segments together in
        index order (each segment's per-bucket first entry points at the
        previous segment's last entry), which reproduces the sequential
        head-insertion ``next``/``heads`` arrays exactly.  Returns None
        when the pool is not engaged (caller falls through to the
        single-shot vector construction).
        """
        from repro.cpu.segments import split_segments
        from repro.exec.parallel import SharedArena, morsel_pool

        n = b.size
        pool = morsel_pool(n)
        if pool is None:
            return None
        segments = split_segments(n, pool.n_workers)
        with SharedArena(use_shm=pool.uses_processes) as arena:
            b_ref = arena.share(b)
            nxt_view, nxt_ref = arena.empty(n, np.int64)
            nxt_view.fill(-1)
            results = pool.run("chain_links", [
                dict(buckets=b_ref, nxt=nxt_ref, a=a, b=hi)
                for (a, hi) in segments
            ])
            nxt = nxt_view.copy() if pool.uses_processes else nxt_view
        # Stitch: walk segments in index order; a bucket's first entry in
        # a segment chains to its last entry in the previous segments.
        prev_last = np.full(self.n_buckets, -1, dtype=np.int64)
        for uniq, first_idx, last_idx in results:
            if uniq.size == 0:
                continue
            nxt[first_idx] = prev_last[uniq]
            prev_last[uniq] = last_idx
        self.heads[:] = prev_last
        self._chain_lengths = np.bincount(b, minlength=self.n_buckets)
        return nxt

    def chain_length(self, bucket: int) -> int:
        """Entries chained in one bucket."""
        return int(self._chain_lengths[bucket])

    def max_chain_length(self) -> int:
        """Length of the longest bucket chain."""
        if self._chain_lengths.size == 0:
            return 0
        return int(self._chain_lengths.max())

    def probe(
        self,
        s_keys: np.ndarray,
        s_payloads: np.ndarray,
        buffer: JoinOutputBuffer,
        counters: Optional[OpCounters] = None,
        hashes: Optional[np.ndarray] = None,
        random_access: bool = False,
    ) -> OutputSummary:
        """Probe on the ambient backend.

        Vector and parallel select :meth:`probe_grouped` (group-wise batch
        expansion; under the parallel backend its match stats and pair
        expansion fan out over the worker pool), scalar selects
        :meth:`probe_lockstep` (the literal chain walk).  All report
        identical counters and output summaries, so backend choice never
        shows up in results — only in wall time.
        """
        impl = dispatch(self.probe_lockstep, self.probe_grouped)
        return impl(s_keys, s_payloads, buffer, counters=counters,
                    hashes=hashes, random_access=random_access)

    def probe_grouped(
        self,
        s_keys: np.ndarray,
        s_payloads: np.ndarray,
        buffer: JoinOutputBuffer,
        counters: Optional[OpCounters] = None,
        hashes: Optional[np.ndarray] = None,
        random_access: bool = False,
    ) -> OutputSummary:
        """Probe all S tuples; group-wise fast path with exact counters.

        Each probe of bucket ``b`` accounts ``len(chain(b))`` chain steps
        and key compares (a chained-table probe must walk the full chain).
        Matched pairs per key form cartesian products whose count and
        checksum are accumulated in closed form; real pairs are written to
        the ring buffer only while the expansion is small.
        """
        if not self._built:
            raise CapacityError(
                "probe before build",
                structure="chained-hash-table", state="unbuilt",
                n_buckets=self.n_buckets,
            )
        checkpoint(structure="chained-hash-table", phase="probe")
        s_keys = np.asarray(s_keys, dtype=np.uint32)
        s_payloads = np.asarray(s_payloads, dtype=np.uint32)
        ns = s_keys.size
        if hashes is None:
            hashes = hash_keys(s_keys)
        sb = self._bucket_of(hashes)
        steps = int(self._chain_lengths[sb].sum()) if ns else 0
        if counters is not None:
            counters.hash_ops += ns
            counters.seq_tuple_reads += ns
            counters.bytes_read += 8 * ns
            counters.chain_steps += steps
            counters.key_compares += steps
            if random_access:
                counters.random_accesses += steps + ns
        summary = emit_matches(
            self.keys, self.payloads, s_keys, s_payloads, buffer
        )
        if counters is not None:
            counters.output_tuples += summary.count
            counters.bytes_written += 8 * summary.count
        return summary

    def probe_lockstep(
        self,
        s_keys: np.ndarray,
        s_payloads: np.ndarray,
        buffer: JoinOutputBuffer,
        counters: Optional[OpCounters] = None,
        hashes: Optional[np.ndarray] = None,
        random_access: bool = False,
    ) -> OutputSummary:
        """Literal chain walk: all probes advance one chain node per round.

        Produces exactly the same counters and output summary as
        :meth:`probe_grouped` (validated by the test suite); used for
        small-scale verification only.
        """
        if not self._built:
            raise CapacityError(
                "probe before build",
                structure="chained-hash-table", state="unbuilt",
                n_buckets=self.n_buckets,
            )
        s_keys = np.asarray(s_keys, dtype=np.uint32)
        s_payloads = np.asarray(s_payloads, dtype=np.uint32)
        ns = s_keys.size
        if hashes is None:
            hashes = hash_keys(s_keys)
        cursor = (
            self.heads[self._bucket_of(hashes)].copy()
            if ns else np.empty(0, dtype=np.int64)
        )
        active = np.arange(ns)
        summary = OutputSummary()
        steps = 0
        while active.size:
            # One checkpoint per lockstep round: the scalar chain walk is
            # the slowest kernel, and under heavy skew a single morsel's
            # rounds dominate a request — this is where a deadline must
            # be able to fire.
            checkpoint(structure="chained-hash-table", phase="probe",
                       chain_steps=steps)
            alive = cursor[active] != -1
            active = active[alive]
            if active.size == 0:
                break
            cur = cursor[active]
            steps += active.size
            match = self.keys[cur] == s_keys[active]
            if np.any(match):
                r_pay = self.payloads[cur[match]]
                s_pay = s_payloads[active[match]]
                buffer.write_pairs(r_pay, s_pay)
                prod = r_pay.astype(np.uint64) * s_pay.astype(np.uint64)
                summary.add_pairs_sum(int(match.sum()),
                                      int(np.sum(prod, dtype=np.uint64)))
            cursor[active] = self.next[cur]
        if counters is not None:
            counters.hash_ops += ns
            counters.seq_tuple_reads += ns
            counters.bytes_read += 8 * ns
            counters.chain_steps += steps
            counters.key_compares += steps
            counters.output_tuples += summary.count
            counters.bytes_written += 8 * summary.count
            if random_access:
                counters.random_accesses += steps + ns
        return summary


# Backwards-compatible aliases for internal callers.
_emit_matches = emit_matches
