"""Static work division: equal-sized segments per thread.

The paper's Cbase "divides the input relation into equal-sized segments and
assigns the segments to threads" for the first partitioning pass.  This
module implements that split.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigError


def split_segments(n: int, n_threads: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``n_threads`` near-equal [start, stop) spans.

    Every thread gets either ``floor(n / n_threads)`` or one more element;
    empty segments are returned for threads beyond ``n`` so callers can
    keep per-thread bookkeeping aligned with the pool size.
    """
    if n < 0:
        raise ConfigError(f"n must be non-negative, got {n}")
    if n_threads <= 0:
        raise ConfigError(f"n_threads must be positive, got {n_threads}")
    base = n // n_threads
    extra = n % n_threads
    segments = []
    start = 0
    for t in range(n_threads):
        size = base + (1 if t < extra else 0)
        segments.append((start, start + size))
        start += size
    return segments
