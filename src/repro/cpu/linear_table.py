"""Linear-probing hash table for frequency counting.

Both skew detectors use a small open-addressing table to count sampled key
frequencies: CSH "uses a hash table to compute the frequencies of the
sampled keys" before partitioning; GSH "uses a linear probing based hash
table to compute the frequencies of sampled keys" per large partition.

The table counts occurrences per distinct key and reports the probe work
(displacements) the scalar algorithm would pay, so the sampling phase is
priced faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.hashing import bits_for, bucket_ids, hash_keys, next_pow2
from repro.errors import CapacityError
from repro.exec.counters import OpCounters


@dataclass
class FrequencyCount:
    """Distinct keys with sampled occurrence counts, descending by count."""

    keys: np.ndarray
    counts: np.ndarray

    def above_threshold(self, threshold: int) -> np.ndarray:
        """Keys whose sampled frequency meets the threshold."""
        return self.keys[self.counts >= threshold]

    def top_k(self, k: int) -> np.ndarray:
        """The k most frequent sampled keys."""
        return self.keys[:max(k, 0)]


class LinearProbingCounter:
    """Open-addressing (linear probing) key-frequency counter."""

    def __init__(self, capacity: int):
        capacity = next_pow2(max(capacity, 2))
        self.capacity = capacity
        self._mask = capacity - 1
        self._bits = bits_for(capacity)
        self.slot_keys = np.full(capacity, -1, dtype=np.int64)
        self.slot_counts = np.zeros(capacity, dtype=np.int64)

    def insert_all(self, keys: np.ndarray,
                   counters: OpCounters = None) -> FrequencyCount:
        """Count the sampled keys, simulating linear-probe placement.

        Distinct keys are placed by linear probing from their hash slot;
        each sample pays one probe walk to its key's slot.  Raises
        :class:`CapacityError` if the table cannot hold the distinct keys
        at load factor <= 0.75.
        """
        keys = np.asarray(keys, dtype=np.uint32)
        uniq, inv_counts = np.unique(keys, return_counts=True)
        if uniq.size > int(0.75 * self.capacity):
            raise CapacityError(
                f"{uniq.size} distinct sampled keys exceed capacity "
                f"{self.capacity} at load factor 0.75",
                structure="linear-probing-counter",
                capacity=self.capacity,
                observed=int(uniq.size),
                load_factor=0.75,
            )
        home = bucket_ids(hash_keys(uniq), self._bits)
        # Place distinct keys round by round: unresolved keys advance one
        # slot per round, exactly like scalar linear probing (insertion
        # order among colliding keys does not affect counts or total probe
        # work by more than the tie order, which we fix as key order).
        slot = home.copy()
        displacement = np.zeros(uniq.size, dtype=np.int64)
        unresolved = np.arange(uniq.size)
        occupied = np.zeros(self.capacity, dtype=bool)
        owner = np.full(self.capacity, -1, dtype=np.int64)
        rounds = 0
        while unresolved.size:
            rounds += 1
            if rounds > self.capacity + 1:
                raise CapacityError(
                    "linear probing failed to converge",
                    structure="linear-probing-counter",
                    capacity=self.capacity,
                    observed=int(uniq.size),
                    rounds=rounds,
                )
            want = slot[unresolved]
            # Keys wanting a free slot: the lowest-index key per slot wins.
            free = ~occupied[want]
            claim_order = np.argsort(want[free] * (uniq.size + 1)
                                     + unresolved[free], kind="stable")
            claimed = {}
            winners = []
            for j in np.flatnonzero(free)[claim_order]:
                s = int(want[j])
                if s not in claimed:
                    claimed[s] = unresolved[j]
                    winners.append(j)
            win_idx = np.zeros(unresolved.size, dtype=bool)
            win_idx[winners] = True
            placed = unresolved[win_idx]
            occupied[slot[placed]] = True
            owner[slot[placed]] = placed
            rest = unresolved[~win_idx]
            slot[rest] = (slot[rest] + 1) & self._mask
            displacement[rest] += 1
            unresolved = rest
        self.slot_keys[slot] = uniq
        np.add.at(self.slot_counts, slot, 0)
        self.slot_counts[slot] = inv_counts
        if counters is not None:
            n = keys.size
            counters.sample_ops += n
            counters.hash_ops += n
            # Every sample walks to its key's final slot.
            per_key_walk = displacement + 1
            counters.chain_steps += int((per_key_walk * inv_counts).sum())
        order = np.argsort(inv_counts, kind="stable")[::-1]
        return FrequencyCount(keys=uniq[order], counts=inv_counts[order])


def count_sample_frequencies(
    sample_keys: np.ndarray,
    counters: OpCounters = None,
    capacity: int = None,
) -> FrequencyCount:
    """Convenience wrapper: size a counter for the sample and run it."""
    sample_keys = np.asarray(sample_keys, dtype=np.uint32)
    if capacity is None:
        capacity = max(4 * max(sample_keys.size, 1), 16)
    table = LinearProbingCounter(capacity)
    return table.insert_all(sample_keys, counters=counters)
