"""CPU substrate and baselines: hashing, partitioning, tables, Cbase, npj."""

from repro.cpu.chained_table import ChainedHashTable
from repro.cpu.hashing import (
    bits_for,
    bucket_ids,
    hash_key,
    hash_keys,
    next_pow2,
    radix_bits,
)
from repro.cpu.join_phase import JoinPhaseResult, join_one_pair, join_partition_pairs
from repro.cpu.linear_table import (
    FrequencyCount,
    LinearProbingCounter,
    count_sample_frequencies,
)
from repro.cpu.no_partition_join import NoPartitionConfig, NoPartitionJoin
from repro.cpu.partition import (
    PartitionedRelation,
    PartitionPassResult,
    choose_radix_bits,
    partition_pass,
    partition_relation,
    refine_pass,
)
from repro.cpu.radix_join import CbaseConfig, CbaseJoin
from repro.cpu.segments import split_segments
from repro.cpu.spacesaving import (
    HeavyHitter,
    SpaceSavingSummary,
    streaming_skew_detection,
)
from repro.cpu.stats import (
    PartitionStats,
    heavy_key_share,
    min_achievable_partition_size,
    partition_stats,
    skew_report,
)
from repro.cpu.task_queue import (
    ScheduleResult,
    greedy_schedule,
    makespan_bounds,
    static_makespan,
)
from repro.cpu.threads import ThreadPool

__all__ = [
    "hash_keys",
    "hash_key",
    "radix_bits",
    "bucket_ids",
    "next_pow2",
    "bits_for",
    "split_segments",
    "greedy_schedule",
    "static_makespan",
    "makespan_bounds",
    "ScheduleResult",
    "ThreadPool",
    "PartitionedRelation",
    "PartitionPassResult",
    "partition_pass",
    "partition_relation",
    "refine_pass",
    "choose_radix_bits",
    "ChainedHashTable",
    "LinearProbingCounter",
    "FrequencyCount",
    "count_sample_frequencies",
    "JoinPhaseResult",
    "join_partition_pairs",
    "join_one_pair",
    "CbaseJoin",
    "CbaseConfig",
    "NoPartitionJoin",
    "NoPartitionConfig",
    "SpaceSavingSummary",
    "HeavyHitter",
    "streaming_skew_detection",
    "PartitionStats",
    "partition_stats",
    "heavy_key_share",
    "min_achievable_partition_size",
    "skew_report",
]
