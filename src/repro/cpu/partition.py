"""Parallel radix partitioning (the Cbase/CSH partition phase).

Implements the partitioning scheme the paper describes for Cbase
(Section II-B): the input is divided into equal segments per thread; each
thread scans its segment twice — once to build a per-thread histogram, once
to copy tuples to contention-free destinations computed from prefix sums of
the histograms.  A second pass re-partitions each first-pass partition with
the next group of hash bits, dispatched through a task queue; oversized
partitions can be further refined with extra bits (Cbase's skew-splitting
technique — which, by construction, can never separate tuples sharing a
key, since they share all hash bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cpu.hashing import hash_keys, radix_bits
from repro.cpu.segments import split_segments
from repro.errors import ConfigError
from repro.exec.backend import dispatch
from repro.exec.counters import OpCounters
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE, TUPLE_BYTES


@dataclass
class PartitionedRelation:
    """A relation stored partition-contiguously.

    ``offsets`` has ``fanout + 1`` entries; partition ``p`` occupies
    ``[offsets[p], offsets[p+1])`` of the key/payload arrays.
    """

    keys: np.ndarray
    payloads: np.ndarray
    offsets: np.ndarray
    #: Hashes of the stored keys, kept so later phases need not re-hash.
    hashes: Optional[np.ndarray] = None

    def __post_init__(self):
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ConfigError("offsets must be a 1-D array with >= 1 entry")
        if self.offsets[0] != 0 or self.offsets[-1] != self.keys.size:
            raise ConfigError("offsets must span the full relation")
        if np.any(np.diff(self.offsets) < 0):
            raise ConfigError("offsets must be non-decreasing")

    @property
    def fanout(self) -> int:
        """Number of partitions."""
        return int(self.offsets.size - 1)

    @property
    def n(self) -> int:
        """Total tuples stored."""
        return int(self.keys.size)

    def sizes(self) -> np.ndarray:
        """Tuples per partition."""
        return np.diff(self.offsets)

    def partition(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        """Keys and payloads of one partition."""
        lo, hi = int(self.offsets[p]), int(self.offsets[p + 1])
        return self.keys[lo:hi], self.payloads[lo:hi]

    def partition_hashes(self, p: int) -> np.ndarray:
        """Hashes of one partition's keys."""
        if self.hashes is None:
            lo, hi = int(self.offsets[p]), int(self.offsets[p + 1])
            return hash_keys(self.keys[lo:hi])
        lo, hi = int(self.offsets[p]), int(self.offsets[p + 1])
        return self.hashes[lo:hi]


@dataclass
class PartitionPassResult:
    """Output of one partitioning pass plus its cost bookkeeping."""

    partitioned: PartitionedRelation
    #: Counters per thread (static pass) or per task (queued pass).
    unit_counters: List[OpCounters] = field(default_factory=list)

    @property
    def total_counters(self) -> OpCounters:
        """Counters summed over all units."""
        return OpCounters.sum(self.unit_counters)


def _scan_counters(n: int) -> OpCounters:
    """Counters for two-scan count-then-copy partitioning of n tuples."""
    return OpCounters(
        seq_tuple_reads=2 * n,
        hash_ops=2 * n,
        tuple_moves=n,
        bytes_read=2 * n * TUPLE_BYTES,
        bytes_written=n * TUPLE_BYTES,
    )


def _partition_bases(hist: np.ndarray) -> np.ndarray:
    """Per-thread output bases from the first-scan histograms.

    ``base[t, p]`` is the start slot of thread ``t``'s tuples of partition
    ``p`` in the partition-major, thread-minor destination layout.  Shared
    by both backends: it is the prefix-sum over the (small) histogram
    matrix, not per-tuple work.
    """
    flat = hist.T.ravel()  # order: (p0,t0), (p0,t1), ..., (p1,t0), ...
    excl = np.cumsum(flat) - flat
    return excl.reshape(hist.shape[1], hist.shape[0]).T


def _scatter_outputs(n: int, hist: np.ndarray):
    fanout = hist.shape[1]
    keys_out = np.empty(n, dtype=KEY_DTYPE)
    pays_out = np.empty(n, dtype=PAYLOAD_DTYPE)
    hashes_out = np.empty(n, dtype=np.uint32)
    offsets = np.zeros(fanout + 1, dtype=np.int64)
    np.cumsum(hist.sum(axis=0), out=offsets[1:])
    return keys_out, pays_out, hashes_out, offsets


def _scatter_vector(
    keys: np.ndarray,
    payloads: np.ndarray,
    hashes: np.ndarray,
    part_ids: np.ndarray,
    fanout: int,
    segments: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batch scatter: bincount histograms + one fancy-index pass per thread."""
    n_threads = len(segments)
    hist = np.zeros((n_threads, fanout), dtype=np.int64)
    for t, (a, b) in enumerate(segments):
        if b > a:
            hist[t] = np.bincount(part_ids[a:b], minlength=fanout)
    base = _partition_bases(hist)
    keys_out, pays_out, hashes_out, offsets = _scatter_outputs(keys.size, hist)
    for t, (a, b) in enumerate(segments):
        if b <= a:
            continue
        ids = part_ids[a:b]
        order = np.argsort(ids, kind="stable")
        counts = hist[t]
        run_start = np.repeat(base[t], counts)
        run_origin = np.repeat(np.cumsum(counts) - counts, counts)
        dest = run_start + (np.arange(b - a) - run_origin)
        keys_out[dest] = keys[a:b][order]
        pays_out[dest] = payloads[a:b][order]
        hashes_out[dest] = hashes[a:b][order]
    return keys_out, pays_out, hashes_out, offsets


def _scatter_scalar(
    keys: np.ndarray,
    payloads: np.ndarray,
    hashes: np.ndarray,
    part_ids: np.ndarray,
    fanout: int,
    segments: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Literal two-scan scatter: count loop, then tuple-at-a-time copies."""
    n_threads = len(segments)
    ids = part_ids.tolist()
    hist = np.zeros((n_threads, fanout), dtype=np.int64)
    for t, (a, b) in enumerate(segments):
        row = hist[t]
        for i in range(a, b):
            row[ids[i]] += 1
    base = _partition_bases(hist)
    keys_out, pays_out, hashes_out, offsets = _scatter_outputs(keys.size, hist)
    for t, (a, b) in enumerate(segments):
        cursor = base[t].tolist()
        for i in range(a, b):
            p = ids[i]
            d = cursor[p]
            cursor[p] = d + 1
            keys_out[d] = keys[i]
            pays_out[d] = payloads[i]
            hashes_out[d] = hashes[i]
    return keys_out, pays_out, hashes_out, offsets


def _scatter_parallel(
    keys: np.ndarray,
    payloads: np.ndarray,
    hashes: np.ndarray,
    part_ids: np.ndarray,
    fanout: int,
    segments: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The vector scatter with both scans fanned out over the worker pool.

    The morsels are the *same* per-thread segments the simulated
    ThreadPool prices, and the destination layout comes from the same
    prefix-sum base matrix, so segment scatters are contention free and
    the output arrays match ``_scatter_vector`` bit for bit.
    """
    from repro.exec.parallel import SharedArena, morsel_pool

    pool = morsel_pool(keys.size)
    if pool is None:
        return _scatter_vector(keys, payloads, hashes, part_ids, fanout,
                               segments)
    with SharedArena(use_shm=pool.uses_processes) as arena:
        ids_ref = arena.share(part_ids)
        hist_rows = pool.run("partition_hist", [
            dict(ids=ids_ref, a=a, b=b, fanout=fanout)
            for (a, b) in segments
        ])
        hist = np.stack(hist_rows).astype(np.int64, copy=False)
        base = _partition_bases(hist)
        n = keys.size
        offsets = np.zeros(fanout + 1, dtype=np.int64)
        np.cumsum(hist.sum(axis=0), out=offsets[1:])
        keys_ref = arena.share(keys)
        pays_ref = arena.share(payloads)
        hashes_ref = arena.share(hashes)
        keys_out, keys_out_ref = arena.empty(n, KEY_DTYPE)
        pays_out, pays_out_ref = arena.empty(n, PAYLOAD_DTYPE)
        hashes_out, hashes_out_ref = arena.empty(n, np.uint32)
        pool.run("partition_scatter", [
            dict(keys=keys_ref, payloads=pays_ref, hashes=hashes_ref,
                 ids=ids_ref, keys_out=keys_out_ref, pays_out=pays_out_ref,
                 hashes_out=hashes_out_ref, a=a, b=b,
                 base_row=base[t], counts_row=hist[t])
            for t, (a, b) in enumerate(segments) if b > a
        ])
        if pool.uses_processes:
            # The views die with the arena; copy results out first.
            return keys_out.copy(), pays_out.copy(), hashes_out.copy(), offsets
        return keys_out, pays_out, hashes_out, offsets


def _scatter(
    keys: np.ndarray,
    payloads: np.ndarray,
    hashes: np.ndarray,
    part_ids: np.ndarray,
    fanout: int,
    segments: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Contention-free two-scan scatter, on the ambient backend.

    Returns (keys_out, payloads_out, hashes_out, offsets).  The destination
    layout is partition-major, thread-minor, exactly like the per-thread
    output offsets Cbase computes from the first-scan histograms; all
    backends produce bit-identical arrays.
    """
    impl = dispatch(_scatter_scalar, _scatter_vector, _scatter_parallel)
    return impl(keys, payloads, hashes, part_ids, fanout, segments)


def partition_pass(
    keys: np.ndarray,
    payloads: np.ndarray,
    hashes: np.ndarray,
    start_bit: int,
    n_bits: int,
    n_threads: int,
) -> PartitionPassResult:
    """One statically divided partitioning pass over a full relation."""
    if n_bits < 0:
        raise ConfigError("n_bits must be non-negative")
    n = keys.size
    fanout = 1 << n_bits
    segments = split_segments(n, n_threads)
    part_ids = radix_bits(hashes, start_bit, n_bits)
    keys_out, pays_out, hashes_out, offsets = _scatter(
        keys, payloads, hashes, part_ids, fanout, segments
    )
    per_thread = [_scan_counters(b - a) for (a, b) in segments]
    return PartitionPassResult(
        partitioned=PartitionedRelation(keys_out, pays_out, offsets, hashes_out),
        unit_counters=per_thread,
    )


def _refine_one_vector(pkeys, ppays, phash, ids, sub_fanout,
                       keys_out, pays_out, hashes_out, lo):
    """Reorder one parent partition by sub-id via a stable argsort."""
    m = pkeys.size
    order = np.argsort(ids, kind="stable")
    keys_out[lo:lo + m] = pkeys[order]
    pays_out[lo:lo + m] = ppays[order]
    hashes_out[lo:lo + m] = phash[order]
    return np.bincount(ids, minlength=sub_fanout)


def _refine_one_scalar(pkeys, ppays, phash, ids, sub_fanout,
                       keys_out, pays_out, hashes_out, lo):
    """Reorder one parent partition tuple-at-a-time (count, then copy)."""
    id_list = ids.tolist()
    counts = [0] * sub_fanout
    for sid in id_list:
        counts[sid] += 1
    cursor = [0] * sub_fanout
    acc = 0
    for sid in range(sub_fanout):
        cursor[sid] = acc
        acc += counts[sid]
    for i, sid in enumerate(id_list):
        d = cursor[sid]
        cursor[sid] = d + 1
        keys_out[lo + d] = pkeys[i]
        pays_out[lo + d] = ppays[i]
        hashes_out[lo + d] = phash[i]
    return np.asarray(counts, dtype=np.int64)


def _refine_parallel(
    parent: PartitionedRelation,
    start_bit: int,
    n_bits: int,
    refine_mask: Optional[np.ndarray],
    keys_out: np.ndarray,
    pays_out: np.ndarray,
    hashes_out: np.ndarray,
) -> Optional[dict]:
    """Refine every selected partition on the worker pool.

    Morsels are chunks of consecutive refined partitions (each partition
    reorders only its own [lo, hi) span, so chunks are contention free).
    Fills the caller's output arrays over the refined spans and returns
    ``{p: sub_sizes}``; returns None when the pool is not engaged and the
    caller should refine per partition on the vector path.
    """
    from repro.exec.parallel import MORSELS_PER_WORKER, SharedArena, morsel_pool

    if parent.hashes is None:
        return None
    pool = morsel_pool(parent.n)
    if pool is None:
        return None
    refined = [p for p in range(parent.fanout)
               if refine_mask is None or refine_mask[p]]
    if not refined:
        return {}
    sub_fanout = 1 << n_bits
    ids = radix_bits(parent.hashes, start_bit, n_bits)
    spans = [(p, int(parent.offsets[p]), int(parent.offsets[p + 1]))
             for p in refined]
    target = max(parent.n // max(pool.n_workers * MORSELS_PER_WORKER, 1), 1)
    chunks: List[List[Tuple[int, int, int]]] = [[]]
    chunk_tuples = 0
    for span in spans:
        if chunks[-1] and chunk_tuples >= target:
            chunks.append([])
            chunk_tuples = 0
        chunks[-1].append(span)
        chunk_tuples += span[2] - span[1]
    with SharedArena(use_shm=pool.uses_processes) as arena:
        keys_ref = arena.share(parent.keys)
        pays_ref = arena.share(parent.payloads)
        hashes_ref = arena.share(parent.hashes)
        ids_ref = arena.share(ids)
        ko_view, ko_ref = arena.output_like(keys_out)
        po_view, po_ref = arena.output_like(pays_out)
        ho_view, ho_ref = arena.output_like(hashes_out)
        results = pool.run("refine_chunk", [
            dict(keys=keys_ref, payloads=pays_ref, hashes=hashes_ref,
                 ids=ids_ref, keys_out=ko_ref, pays_out=po_ref,
                 hashes_out=ho_ref, sub_fanout=sub_fanout,
                 bounds=[(lo, hi) for (_p, lo, hi) in chunk])
            for chunk in chunks
        ])
        if pool.uses_processes:
            for chunk in chunks:
                for _p, lo, hi in chunk:
                    keys_out[lo:hi] = ko_view[lo:hi]
                    pays_out[lo:hi] = po_view[lo:hi]
                    hashes_out[lo:hi] = ho_view[lo:hi]
    sub_sizes_by_p = {}
    for chunk, matrix in zip(chunks, results):
        for row, (p, _lo, _hi) in enumerate(chunk):
            sub_sizes_by_p[p] = matrix[row]
    return sub_sizes_by_p


def refine_pass(
    parent: PartitionedRelation,
    start_bit: int,
    n_bits: int,
    refine_mask: Optional[np.ndarray] = None,
) -> PartitionPassResult:
    """Re-partition each (selected) parent partition with further hash bits.

    This is Cbase's second, task-queued pass: each parent partition becomes
    one task.  If ``refine_mask`` is given, only marked partitions are
    refined; others pass through as single sub-partitions (used by the
    oversized-partition splitting).  Returns a new PartitionedRelation whose
    fanout is ``parent.fanout * 2**n_bits`` (pass-through partitions occupy
    sub-slot 0 and leave their siblings empty), with one counters entry per
    refined partition task.
    """
    sub_fanout = 1 << n_bits
    fanout = parent.fanout * sub_fanout
    n = parent.n
    keys_out = np.empty(n, dtype=KEY_DTYPE)
    pays_out = np.empty(n, dtype=PAYLOAD_DTYPE)
    hashes_out = np.empty(n, dtype=np.uint32)
    offsets = np.zeros(fanout + 1, dtype=np.int64)
    sizes = np.zeros(fanout, dtype=np.int64)
    task_counters: List[OpCounters] = []
    parallel_sizes = _refine_parallel(parent, start_bit, n_bits, refine_mask,
                                      keys_out, pays_out, hashes_out)
    for p in range(parent.fanout):
        lo, hi = int(parent.offsets[p]), int(parent.offsets[p + 1])
        m = hi - lo
        pkeys = parent.keys[lo:hi]
        ppays = parent.payloads[lo:hi]
        phash = parent.partition_hashes(p)
        if refine_mask is not None and not refine_mask[p]:
            keys_out[lo:hi] = pkeys
            pays_out[lo:hi] = ppays
            hashes_out[lo:hi] = phash
            sizes[p * sub_fanout] = m
            continue
        if parallel_sizes is not None:
            sub_sizes = parallel_sizes[p]
        else:
            ids = radix_bits(phash, start_bit, n_bits)
            reorder = dispatch(_refine_one_scalar, _refine_one_vector)
            sub_sizes = reorder(pkeys, ppays, phash, ids, sub_fanout,
                                keys_out, pays_out, hashes_out, lo)
        sizes[p * sub_fanout:(p + 1) * sub_fanout] = sub_sizes
        task_counters.append(_scan_counters(m))
    np.cumsum(sizes, out=offsets[1:])
    return PartitionPassResult(
        partitioned=PartitionedRelation(keys_out, pays_out, offsets, hashes_out),
        unit_counters=task_counters,
    )


def partition_relation(
    keys: np.ndarray,
    payloads: np.ndarray,
    bits_pass1: int,
    bits_pass2: int,
    n_threads: int,
) -> Tuple[PartitionPassResult, Optional[PartitionPassResult]]:
    """Full one- or two-pass radix partitioning of a relation.

    Returns the pass-1 result and, if ``bits_pass2 > 0``, the pass-2 result
    (whose ``partitioned`` member holds the final layout).
    """
    hashes = hash_keys(keys)
    pass1 = partition_pass(keys, payloads, hashes, 0, bits_pass1, n_threads)
    if bits_pass2 <= 0:
        return pass1, None
    pass2 = refine_pass(pass1.partitioned, bits_pass1, bits_pass2)
    return pass1, pass2


def choose_radix_bits(n_tuples: int, target_partition_tuples: int,
                      max_total_bits: int = 18) -> Tuple[int, int]:
    """Pick (pass-1 bits, pass-2 bits) so partitions hit a target size.

    Mirrors Cbase's tuning: total fanout ~ n / target, split across two
    passes to bound per-pass fanout (the TLB-miss motivation for the radix
    join's multi-pass design).
    """
    if target_partition_tuples <= 0:
        raise ConfigError("target_partition_tuples must be positive")
    total_bits = 0
    while (n_tuples >> total_bits) > target_partition_tuples and total_bits < max_total_bits:
        total_bits += 1
    bits1 = (total_bits + 1) // 2
    bits2 = total_bits - bits1
    return bits1, bits2
