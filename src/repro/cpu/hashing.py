"""Integer hashing and radix-bit extraction.

All joins in this library hash 4-byte keys with a murmur3-style finalizer
(fmix32), then carve the hash into bit ranges:

* the *low* bits select radix partitions (pass 1 uses bits ``[0, b1)``,
  pass 2 uses ``[b1, b1+b2)``, skew splitting uses the next bits up), and
* the *high* bits select hash-table buckets inside a partition, so that
  tuples landing in one partition still spread across buckets.

Because every tuple with the same key has the same hash, no amount of radix
refinement can separate same-key tuples — the exact property behind the
paper's observation that partition splitting cannot fix heavy skew.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_FMIX_C1 = np.uint32(0x85EB_CA6B)
_FMIX_C2 = np.uint32(0xC2B2_AE35)


def hash_keys(keys: np.ndarray) -> np.ndarray:
    """Vectorized fmix32 finalizer over a uint32 key array."""
    h = np.asarray(keys, dtype=np.uint32).copy()
    h ^= h >> np.uint32(16)
    h *= _FMIX_C1
    h ^= h >> np.uint32(13)
    h *= _FMIX_C2
    h ^= h >> np.uint32(16)
    return h


def hash_key(key: int) -> int:
    """Scalar convenience wrapper around :func:`hash_keys`."""
    return int(hash_keys(np.asarray([key], dtype=np.uint32))[0])


def radix_bits(hashes: np.ndarray, start_bit: int, n_bits: int) -> np.ndarray:
    """Extract ``n_bits`` of each hash starting at ``start_bit`` (LSB = 0)."""
    if n_bits < 0 or start_bit < 0 or start_bit + n_bits > 32:
        raise ConfigError(
            f"invalid radix bit range [{start_bit}, {start_bit + n_bits})"
        )
    if n_bits == 0:
        return np.zeros_like(np.asarray(hashes, dtype=np.uint32), dtype=np.int64)
    mask = np.uint32((1 << n_bits) - 1)
    return ((np.asarray(hashes, dtype=np.uint32) >> np.uint32(start_bit)) & mask).astype(np.int64)


def bucket_ids(hashes: np.ndarray, bucket_bits: int) -> np.ndarray:
    """Bucket index from the *top* bits of each hash.

    ``bucket_bits == 0`` denotes a single-bucket table: every hash maps
    to bucket 0.
    """
    if bucket_bits < 0 or bucket_bits > 32:
        raise ConfigError(f"bucket_bits must be in 0..32, got {bucket_bits}")
    hashes = np.asarray(hashes, dtype=np.uint32)
    if bucket_bits == 0:
        return np.zeros(hashes.shape, dtype=np.int64)
    shift = np.uint32(32 - bucket_bits)
    return (hashes >> shift).astype(np.int64)


def next_pow2(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


def bits_for(n: int) -> int:
    """Number of bits needed to index ``n`` slots (log2 of next_pow2)."""
    return next_pow2(n).bit_length() - 1
