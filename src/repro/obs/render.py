"""Terminal rendering of trace records.

Turns a :class:`~repro.obs.trace.TraceRecord` into the per-phase
breakdown table shown by ``repro trace``: one row per span (children
indented), with simulated seconds, share of the total, wall seconds, and
headline counters, followed by the run's metrics.
"""

from __future__ import annotations

from typing import List

from repro.obs.trace import TraceRecord

#: Counters worth a column-inch in the breakdown table.
_HEADLINE_COUNTERS = ("output_tuples", "tuple_moves", "chain_steps",
                      "hash_ops")


def _fmt_seconds(seconds: float) -> str:
    if seconds == 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.4g}s"


def _headline(span) -> str:
    parts = []
    counts = span.counters.as_dict()
    for name in _HEADLINE_COUNTERS:
        if counts.get(name):
            parts.append(f"{name}={counts[name]:,}")
            break
    for key, value in list(span.details.items())[:2]:
        parts.append(f"{key}={value:g}")
    return "  ".join(parts)


def render_trace(trace: TraceRecord, metrics: bool = True) -> str:
    """Multi-line breakdown table of one trace record."""
    total = trace.simulated_seconds
    lines: List[str] = []
    attrs = "  ".join(f"{k}={v}" for k, v in trace.attrs.items())
    lines.append(f"trace: {trace.name}" + (f"  [{attrs}]" if attrs else ""))
    lines.append(f"total simulated time: {_fmt_seconds(total)}")
    rows = [(depth, span) for depth, span in trace.walk()]
    if not rows:
        lines.append("(no spans recorded)")
        return "\n".join(lines)
    width = max(len("  " * d + s.name) for d, s in rows) + 2
    lines.append(
        f"  {'span':<{width}}{'simulated':>11}{'share':>8}{'wall':>11}  notes"
    )
    lines.append("  " + "-" * (width + 36))
    denom = total or 1.0
    for depth, span in rows:
        label = "  " * depth + span.name
        share = span.simulated_seconds / denom
        lines.append(
            f"  {label:<{width}}"
            f"{_fmt_seconds(span.simulated_seconds):>11}"
            f"{share:>7.1%}"
            f"{_fmt_seconds(span.wall_seconds):>11}"
            f"  {_headline(span)}".rstrip()
        )
    if metrics and trace.metrics:
        lines.append("metrics:")
        for name, snap in sorted(trace.metrics.items()):
            kind = snap.get("kind", "?")
            if kind == "histogram":
                lines.append(
                    f"  {name:<{width}} histogram  count={snap['count']} "
                    f"sum={snap['sum']:g} min={snap['min']} max={snap['max']}"
                )
            else:
                lines.append(
                    f"  {name:<{width}} {kind:<9}  value={snap['value']:g}"
                )
    return "\n".join(lines)
