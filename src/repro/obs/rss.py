"""Peak resident-set-size sampling for machine-checked memory claims.

The out-of-core tier promises that a run whose dataset exceeds
``REPRO_MEMORY_BUDGET`` keeps its resident footprint under the budget.
A promise like that is only worth something when it is measured, so
every pipeline stamps ``peak_rss_bytes`` into ``JoinResult.meta`` and
the oocore bench harness records both the interpreter baseline and the
run's high-water mark.

Measurement source matters here.  On Linux, ``getrusage``'s
``ru_maxrss`` is inherited across ``fork``/``exec`` — a child spawned
by a driver holding 150 MB starts life with a 150 MB "high-water mark"
it never touched, which would let any bound pass vacuously.
``/proc/self/status``'s ``VmHWM`` restarts with the exec'd image, so it
is what a fresh measurement child actually earned; it is preferred
whenever procfs is available, with ``ru_maxrss`` as the portable
fallback.  Either way the value is a process-lifetime high-water mark:
meaningful bounds are deltas against a baseline captured before the
workload opens (see :mod:`repro.bench.oocore`).
"""

from __future__ import annotations

import sys

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None


def _proc_status_kb(field: str) -> int:
    """One kB-denominated field of ``/proc/self/status`` (0 if absent)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return 0


def peak_rss_bytes() -> int:
    """The process's peak resident set size so far, in bytes.

    Prefers ``VmHWM`` (true per-exec high-water mark); falls back to
    ``ru_maxrss`` (kilobytes on Linux, bytes on macOS) where procfs is
    unavailable.  Returns 0 when neither source exists (the caller
    records an honest "unmeasured" rather than guessing).
    """
    hwm_kb = _proc_status_kb("VmHWM:")
    if hwm_kb:
        return hwm_kb * 1024
    if resource is None:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def current_rss_bytes() -> int:
    """The process's resident set size right now, in bytes (0 unknown).

    The oocore bench children capture this as their pre-workload
    baseline; the claim they record is ``peak - baseline <= budget``.
    """
    return _proc_status_kb("VmRSS:") * 1024


def reset_peak_rss() -> bool:
    """Reset ``VmHWM`` to the current RSS (Linux; True on success).

    Writing ``5`` to ``/proc/self/clear_refs`` makes a subsequent
    :func:`peak_rss_bytes` reflect only allocations after this point —
    the sharpest baseline a measurement child can set.  Best effort:
    sandboxes may deny the write, in which case the baseline-delta
    arithmetic still holds, just against the exec-time floor.
    """
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as handle:
            handle.write("5")
        return True
    except OSError:
        return False
