"""Observability: span tracing, metrics, and trace export.

The package every layer publishes into:

* :mod:`repro.obs.trace` — span-based tracer (``tracer.span(...)``),
  ambient activation (:func:`current_tracer` / :func:`activate`), and the
  exportable :class:`TraceRecord`.
* :mod:`repro.obs.metrics` — counters, gauges, and histograms.
* :mod:`repro.obs.export` — JSON/JSONL (de)serialization of traces.
* :mod:`repro.obs.render` — the ``repro trace`` breakdown table.
"""

from repro.obs.export import (
    read_jsonl,
    span_from_dict,
    span_to_dict,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.render import render_trace
from repro.obs.rss import current_rss_bytes, peak_rss_bytes, reset_peak_rss
from repro.obs.trace import (
    NullTracer,
    Span,
    TraceRecord,
    Tracer,
    activate,
    current_tracer,
    tracing,
    verify_result_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "TraceRecord",
    "Tracer",
    "activate",
    "current_rss_bytes",
    "current_tracer",
    "peak_rss_bytes",
    "reset_peak_rss",
    "read_jsonl",
    "render_trace",
    "span_from_dict",
    "span_to_dict",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
    "tracing",
    "verify_result_trace",
    "write_jsonl",
]
