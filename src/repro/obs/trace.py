"""Span-based tracing for the join pipelines.

Every pipeline ``run()`` opens a :class:`Tracer`, and each phase becomes a
:class:`Span`::

    tracer = Tracer("csh", algorithm="csh")
    with activate(tracer):
        with tracer.span("partition", algo="csh") as span:
            ...
            span.finish(simulated_seconds=makespan, counters=total)

Spans nest: lower layers (the GPU simulator's kernel launches, the
adaptive prober) open child spans under whatever span is currently open
without needing a tracer handle — they reach the active tracer through
:func:`current_tracer`.  Each span records three things:

* ``simulated_seconds`` — the cost-model time of the phase.  Set
  explicitly by ``finish()``; a span that is never finished but has
  children reports the sum of its children instead.
* ``wall_seconds`` — the time the Python executor actually spent inside
  the span (measured, transparency only).
* ``counters`` — the :class:`~repro.exec.counters.OpCounters` delta
  attributed to the span.

A tracer also carries a :class:`~repro.obs.metrics.MetricsRegistry` for
scalar facts that do not belong to a single span.  ``tracer.record()``
freezes everything into a :class:`TraceRecord`, which pipelines attach to
their :class:`~repro.exec.result.JoinResult` and which serializes to
JSON/JSONL via :mod:`repro.obs.export`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import ExecutionError
from repro.exec.counters import OpCounters
from repro.exec.result import PhaseResult
from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One traced phase (or sub-phase) of a pipeline run."""

    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    counters: OpCounters = field(default_factory=OpCounters)
    details: Dict[str, float] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    wall_seconds: float = 0.0
    task_count: int = 0
    #: Explicit simulated time; ``None`` means "sum my children".
    explicit_seconds: Optional[float] = None

    @property
    def simulated_seconds(self) -> float:
        """Simulated time: the finish() value, else the children's sum."""
        if self.explicit_seconds is not None:
            return self.explicit_seconds
        return sum(child.simulated_seconds for child in self.children)

    @property
    def finished(self) -> bool:
        """True once the span can report a simulated time."""
        return self.explicit_seconds is not None or bool(self.children)

    def finish(
        self,
        simulated_seconds: float,
        counters: Optional[OpCounters] = None,
        task_count: int = 0,
        **details: float,
    ) -> None:
        """Record the span outcome (same contract as ``PhaseTimer.finish``)."""
        if simulated_seconds < 0:
            raise ExecutionError(
                f"span {self.name!r} reported negative simulated time"
            )
        self.explicit_seconds = float(simulated_seconds)
        if counters is not None:
            self.counters = counters
        self.task_count = task_count
        self.details.update(details)

    @property
    def phase_result(self) -> PhaseResult:
        """This span as a :class:`PhaseResult` for the JoinResult breakdown."""
        if not self.finished:
            raise ExecutionError(
                f"span {self.name!r} queried before completion"
            )
        return PhaseResult(
            name=self.name,
            simulated_seconds=self.simulated_seconds,
            counters=self.counters,
            wall_seconds=self.wall_seconds,
            task_count=self.task_count,
            details=dict(self.details),
        )

    def walk(self, depth: int = 0) -> Iterator[tuple]:
        """Yield ``(depth, span)`` pairs depth-first, self included."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass
class TraceRecord:
    """Frozen outcome of one traced run: root spans plus metrics."""

    name: str = "trace"
    attrs: Dict[str, object] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        """Sum of the root spans' simulated times."""
        return sum(span.simulated_seconds for span in self.spans)

    def phase_names(self) -> List[str]:
        """Names of the root (phase-level) spans, in order."""
        return [span.name for span in self.spans]

    def span(self, name: str) -> Span:
        """The first span named ``name`` anywhere in the tree.

        Raises ``KeyError`` if the trace holds no such span.
        """
        for root in self.spans:
            for _, sp in root.walk():
                if sp.name == name:
                    return sp
        raise KeyError(
            f"trace {self.name!r} has no span named {name!r}; "
            f"root spans: {self.phase_names()}"
        )

    def walk(self) -> Iterator[tuple]:
        """Yield ``(depth, span)`` pairs across all root spans."""
        for root in self.spans:
            yield from root.walk()

    def metric_value(self, name: str, default: object = None) -> object:
        """The scalar value of a counter/gauge metric in this trace.

        Histograms have no single value; asking for one raises
        ``KeyError`` so callers notice the kind mismatch.  Missing
        metrics return ``default`` — serving-layer checks use this to
        assert both presence (``metric_value("serve.cache_hit")``) and
        absence (default stays ``None``) without reaching into the raw
        snapshot dicts.
        """
        snap = self.metrics.get(name)
        if snap is None:
            return default
        if "value" not in snap:
            raise KeyError(
                f"metric {name!r} is a {snap.get('kind', 'unknown')} and "
                "has no scalar value")
        return snap["value"]

    @staticmethod
    def from_phases(algorithm: str, phases: List[PhaseResult],
                    **attrs) -> "TraceRecord":
        """Build a flat trace from an existing phase breakdown.

        Used for results produced without an active tracer (e.g. the
        analytic executors), so every benchmark emits a uniform artifact.
        """
        spans = [
            Span(
                name=p.name,
                counters=p.counters,
                details=dict(p.details),
                wall_seconds=p.wall_seconds,
                task_count=p.task_count,
                explicit_seconds=p.simulated_seconds,
            )
            for p in phases
        ]
        return TraceRecord(name=algorithm,
                           attrs={"algorithm": algorithm, **attrs},
                           spans=spans)


class Tracer:
    """Collects the span tree and metrics of one pipeline run."""

    def __init__(self, name: str = "trace", **attrs):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs)
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a span nested under the innermost open span.

        The span must either be ``finish()``-ed inside the block or end up
        with children (whose simulated times it then sums); exiting cleanly
        with neither raises :class:`ExecutionError`, exactly like the
        legacy ``PhaseTimer``.
        """
        span = Span(name=name, attrs=attrs)
        parent = self._stack[-1] if self._stack else None
        self._retain(span, parent)
        self._stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - start
            self._stack.pop()
        if not span.finished:
            raise ExecutionError(
                f"span {name!r} exited without calling finish() "
                "and recorded no child spans"
            )

    def _retain(self, span: Span, parent: Optional[Span]) -> None:
        if parent is not None:
            parent.children.append(span)
        else:
            self.spans.append(span)

    @property
    def active_span(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def record(self) -> TraceRecord:
        """Freeze the tracer into an exportable TraceRecord."""
        if self._stack:
            raise ExecutionError(
                f"cannot record trace {self.name!r} with open spans: "
                f"{[s.name for s in self._stack]}"
            )
        return TraceRecord(
            name=self.name,
            attrs=dict(self.attrs),
            spans=list(self.spans),
            metrics=self.metrics.snapshot(),
        )


class NullTracer(Tracer):
    """Tracer that prices spans but retains nothing.

    Returned by :func:`current_tracer` when no tracer is active, so
    instrumented code never needs a None check.  Spans still behave
    (finish contract, wall timing); they are simply dropped, and the
    metrics registry is discarded on the fly.
    """

    def _retain(self, span: Span, parent: Optional[Span]) -> None:
        if parent is not None:
            parent.children.append(span)

    def record(self) -> TraceRecord:  # pragma: no cover - defensive
        raise ExecutionError("the null tracer records nothing")


_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar("repro_active_tracer",
                                                   default=None)


def current_tracer() -> Tracer:
    """The active tracer, or a throwaway :class:`NullTracer`."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        return tracer
    return NullTracer("null")


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the active tracer for the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def tracing(name: str = "trace", **attrs) -> Iterator[Tracer]:
    """Create and activate a fresh tracer for the block."""
    with activate(Tracer(name, **attrs)) as tracer:
        yield tracer


def verify_result_trace(result, tolerance: float = 1e-6) -> Optional[str]:
    """Check a JoinResult's trace for internal consistency.

    Returns ``None`` when the trace exists and its root spans' simulated
    seconds sum to the result's reported total within ``tolerance``;
    otherwise a human-readable description of the problem.
    """
    trace = getattr(result, "trace", None)
    if trace is None:
        return f"{result.algorithm}: result carries no trace"
    total = result.simulated_seconds
    traced = trace.simulated_seconds
    scale = max(abs(total), abs(traced), 1.0)
    if abs(total - traced) > tolerance * scale:
        return (
            f"{result.algorithm}: trace spans sum to {traced!r} s but the "
            f"result reports {total!r} s (phases: {trace.phase_names()})"
        )
    return None
