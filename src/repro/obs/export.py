"""Trace (de)serialization: spans and metrics to JSON/JSONL and back.

The wire format is deliberately plain: one JSON object per trace, nested
span dicts, counters stored sparsely (zero counters omitted).  The
benchmark harness and the ``repro trace`` CLI write one trace-carrying
result per line (JSONL), which is what CI uploads as the run artifact.
See ``docs/observability.md`` for the schema.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.errors import ReproError
from repro.exec.counters import OpCounters
from repro.obs.trace import Span, TraceRecord

TRACE_FORMAT_VERSION = 1


def span_to_dict(span: Span) -> Dict:
    """Plain-dict form of one span, children included."""
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "simulated_seconds": span.simulated_seconds,
        "wall_seconds": span.wall_seconds,
        "task_count": span.task_count,
        "counters": {k: v for k, v in span.counters.as_dict().items() if v},
        "details": dict(span.details),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: Dict) -> Span:
    """Rebuild a span (and its subtree) from its dict form."""
    children = [span_from_dict(child) for child in data.get("children", [])]
    span = Span(
        name=data["name"],
        attrs=dict(data.get("attrs", {})),
        counters=OpCounters(**data.get("counters", {})),
        details=dict(data.get("details", {})),
        children=children,
        wall_seconds=data.get("wall_seconds", 0.0),
        task_count=data.get("task_count", 0),
    )
    # A span whose stored total differs from its children's sum was
    # explicitly finished; preserve that so round-trips are exact.
    stored = data["simulated_seconds"]
    if not children or stored != span.simulated_seconds:
        span.explicit_seconds = stored
    return span


def trace_to_dict(trace: TraceRecord) -> Dict:
    """Plain-dict form of a whole trace record."""
    return {
        "trace_format_version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "attrs": dict(trace.attrs),
        "spans": [span_to_dict(span) for span in trace.spans],
        "metrics": dict(trace.metrics),
    }


def trace_from_dict(data: Dict) -> TraceRecord:
    """Rebuild a trace record from its dict form."""
    version = data.get("trace_format_version")
    if version != TRACE_FORMAT_VERSION:
        raise ReproError(f"unsupported trace format version: {version!r}")
    return TraceRecord(
        name=data.get("name", "trace"),
        attrs=dict(data.get("attrs", {})),
        spans=[span_from_dict(span) for span in data.get("spans", [])],
        metrics=dict(data.get("metrics", {})),
    )


def trace_to_json(trace: TraceRecord, indent: int = None) -> str:
    """JSON string form of a trace record."""
    return json.dumps(trace_to_dict(trace), indent=indent)


def trace_from_json(text: str) -> TraceRecord:
    """Rebuild a trace record from JSON."""
    return trace_from_dict(json.loads(text))


def write_jsonl(records: Iterable[Dict], path: Union[str, Path]) -> int:
    """Append one JSON line per record to ``path``; returns lines written.

    Creates parent directories as needed.  Appending (rather than
    truncating) lets a benchmark session accumulate one artifact across
    many runs.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
        fh.flush()
        os.fsync(fh.fileno())
    return n


def read_jsonl(path: Union[str, Path],
               tolerant: bool = False) -> List[Dict]:
    """Read every JSON line of ``path`` (blank lines skipped).

    With ``tolerant=True`` a corrupt *trailing* line — the signature of a
    torn append (the process died mid-write) — is skipped with a warning
    instead of failing the whole load.  Corruption anywhere else always
    raises: a damaged interior line means the artifact was edited or
    truncated by something other than a torn append, and silently dropping
    it would misreport the sweep.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1)
    out: List[Dict] = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerant and i == last_content:
                warnings.warn(
                    f"{path}:{i + 1}: skipping truncated trailing line "
                    f"(torn append): {exc}",
                    RuntimeWarning, stacklevel=2)
                break
            raise ReproError(
                f"{path}:{i + 1}: invalid JSON line: {exc}") from None
    return out
