"""Metrics registry: counters, gauges, and histograms.

Pipelines and the execution substrates publish quantitative facts about a
run — tuples scanned, skewed keys detected, partition-size distributions,
task-queue makespan imbalance — into the registry of the active tracer
(see :mod:`repro.obs.trace`).  A registry is per-run state: every pipeline
``run()`` builds a fresh one, so snapshots are deterministic and
comparable across runs.

Naming convention: dotted lowercase paths, ``<layer>.<quantity>``
(``join.tuples_scanned``, ``threadpool.idle_fraction``,
``partition.sizes``).  The canonical names are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError

#: Default histogram bucket upper bounds: powers of two, wide enough for
#: partition sizes at paper scale (2**30 tuples) and for fractions (<= 1).
DEFAULT_BUCKETS = tuple(float(2 ** b) for b in range(0, 31, 2))


@dataclass
class Counter:
    """Monotonically increasing integer count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += int(amount)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict form for export."""
        return {"kind": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-written scalar value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict form for export."""
        return {"kind": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Summary statistics plus cumulative bucket counts.

    Buckets follow the Prometheus convention: ``bucket_counts[i]`` is the
    number of observations ``<= bucket_bounds[i]``, and observations above
    the last bound only appear in ``count``/``sum``.
    """

    name: str
    bucket_bounds: Sequence[float] = DEFAULT_BUCKETS
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    bucket_counts: List[int] = field(default_factory=list)

    def __post_init__(self):
        bounds = [float(b) for b in self.bucket_bounds]
        if bounds != sorted(bounds):
            raise ConfigError(
                f"histogram {self.name!r} bucket bounds must be sorted"
            )
        self.bucket_bounds = bounds
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(bounds)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i in range(bisect.bisect_left(self.bucket_bounds, value),
                       len(self.bucket_bounds)):
            self.bucket_counts[i] += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record every value in ``values``."""
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict form for export."""
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                f"{bound:g}": n
                for bound, n in zip(self.bucket_bounds, self.bucket_counts)
            },
        }


class MetricsRegistry:
    """Get-or-create store of named metrics for one traced run."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name=name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ConfigError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram named ``name``, created on first use."""
        if buckets is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, bucket_bounds=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        """Sorted metric names."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict form of every metric, keyed by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}
