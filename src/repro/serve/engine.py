"""The join-service engine: versioned relations, cached builds, probes.

:class:`ServeEngine` is the server's brain, independent of any socket:
it owns the versioned relation registry, the LRU
:class:`~repro.serve.cache.BuildCache` of built hash tables, and the
:class:`~repro.serve.admission.AdmissionController`.  One
:meth:`ServeEngine.probe` call is one request:

1. admission — morsel budget checked, an execution slot acquired;
2. build side — ``(relation_id, version)`` resolved and fetched from the
   cache; a cold key builds the chained table exactly once (single
   flight), under a ``build`` span with capacity-overflow recovery;
3. probe — the probe side streams through the cached table in morsels,
   each a recovery-wrapped task emitting one order-independent
   ``(count, checksum)`` chunk, awaiting between morsels so concurrent
   requests interleave;
4. answer — chunks combine into a :class:`~repro.exec.result.JoinResult`
   whose summary is bit-identical to a one-shot pipeline run on the same
   relations (checked continuously by ``repro diff --served``).

Warm requests skip step 2 entirely: no ``build`` span appears in the
trace and the ``serve.cache_hit`` metric is 1 — the observable contract
the serve-smoke CI job asserts.  Faults injected (or organic) during
build or probe go through the standard recovery engine; exhausted
budgets surface as typed errors, never as crashes.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.cpu.chained_table import ChainedHashTable
from repro.cpu.hashing import next_pow2
from repro.cpu.segments import split_segments
from repro.cpu.threads import ThreadPool
from repro.data.relation import Relation
from repro.errors import (
    CircuitOpen,
    DeadlineExceeded,
    RequestCancelled,
    ServeError,
)
from repro.exec.backend import current_backend, use_backend
from repro.exec.cancel import CancelToken, Deadline, cancel_scope, checkpoint
from repro.exec.cost_model import CPUCostModel, DEFAULT_CPU_COST_MODEL
from repro.exec.counters import OpCounters
from repro.exec.output import DEFAULT_CAPACITY, JoinOutputBuffer, OutputSummary
from repro.exec.result import JoinResult
from repro.faults.plan import SLOW, FaultPlan
from repro.faults.recovery import run_task_with_recovery
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope, fault_scope
from repro.obs.trace import Tracer, activate
from repro.serve.admission import AdmissionController
from repro.serve.cache import (
    BuildCache,
    CachedBuild,
    DEFAULT_CACHE_ENTRIES,
    DEFAULT_CIRCUIT_RESET_SECONDS,
    DEFAULT_CIRCUIT_THRESHOLD,
)

#: The engine's pseudo-algorithm name on results and fault reports.
SERVE_ALGORITHM = "serve"

#: Signature of the streaming callback: one chunk dict per probe morsel.
ChunkEmitter = Callable[[Dict], Awaitable[None]]


def _split_counters(total: OpCounters, n: int,
                    n_threads: int) -> List[OpCounters]:
    """Distribute uniform per-tuple counters across thread segments
    (cbase-npj's static build split)."""
    if n == 0:
        return [OpCounters() for _ in range(n_threads)]
    per_thread = []
    for a, b in split_segments(n, n_threads):
        frac = (b - a) / n
        per_thread.append(OpCounters(
            **{k: int(round(v * frac)) for k, v in total.as_dict().items()}))
    return per_thread


@dataclass
class ProbeRequest:
    """One resolved probe request (the protocol layer builds these)."""

    relation_id: str
    probe: Relation
    version: Optional[int] = None
    morsel_tuples: Optional[int] = None
    trace_id: str = ""
    faults: Optional[FaultPlan] = None
    #: Wall-clock budget for the whole request (build + probe), in
    #: milliseconds.  None = no deadline.  Expiry surfaces as a typed
    #: :class:`~repro.errors.DeadlineExceeded` carrying partial progress.
    deadline_ms: Optional[float] = None
    #: Cooperative cancellation handle; the server cancels it on client
    #: disconnect and during forced drain.
    cancel: Optional[CancelToken] = None


@dataclass
class ProbeOutcome:
    """One served answer: the result record plus its streamed chunks."""

    result: JoinResult
    chunks: List[Dict] = field(default_factory=list)

    @property
    def cache_hit(self) -> bool:
        return bool(self.result.meta.get("cache_hit"))

    @property
    def summary(self) -> OutputSummary:
        return OutputSummary(self.result.output_count,
                             self.result.output_checksum)


class ServeEngine:
    """Versioned relations + hot build cache + admission + probes."""

    def __init__(
        self,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        admission: Optional[AdmissionController] = None,
        cost_model: CPUCostModel = DEFAULT_CPU_COST_MODEL,
        output_capacity: int = DEFAULT_CAPACITY,
        n_threads: int = 20,
        circuit_threshold: int = DEFAULT_CIRCUIT_THRESHOLD,
        circuit_reset_seconds: float = DEFAULT_CIRCUIT_RESET_SECONDS,
        planner=None,
    ):
        self.cache = BuildCache(
            max_entries=cache_entries,
            circuit_threshold=circuit_threshold,
            circuit_reset_seconds=circuit_reset_seconds)
        self.admission = admission or AdmissionController()
        self.cost_model = cost_model
        self.output_capacity = output_capacity
        # Phases are priced like the pipelines': the paper's 20 simulated
        # workers, builds statically split and probe morsels greedily
        # scheduled — so served simulated seconds compare directly with
        # one-shot cbase-npj runs.
        self.pool = ThreadPool(n_threads, cost_model)
        #: ``planner: auto`` mode — a
        #: :class:`~repro.plan.serve_hook.ServeProbePlanner` that picks
        #: the backend per request and learns from every answer.  None
        #: keeps the ambient backend (planner off), the default.
        self.planner = planner
        self._relations: Dict[str, Dict[int, Relation]] = {}
        self._latest: Dict[str, int] = {}
        self._trace_seq = itertools.count(1)
        self.requests = 0
        self.completed = 0
        self.failed = 0
        # Failure taxonomy: every failed request lands in exactly one of
        # these (or stays an unclassified `failed`).
        self.deadline_exceeded = 0
        self.cancelled = 0
        self.circuit_shed = 0

    # ------------------------------------------------------------------
    # relation registry

    def register(self, relation_id: str, relation: Relation) -> int:
        """Install (or bump) a build-side relation; returns its version.

        Re-registering an id bumps the version: probes without an
        explicit version immediately see the new data, and the stale
        version's cached build is invalidated so it can only be reached
        by clients still pinning the old version explicitly — which no
        longer resolves once the relation data is replaced below.
        """
        if not relation_id:
            raise ServeError("relation_id must be non-empty")
        version = self._latest.get(relation_id, 0) + 1
        self._relations.setdefault(relation_id, {})[version] = relation
        self._latest[relation_id] = version
        if version > 1:
            self.cache.invalidate(relation_id, version - 1)
        return version

    def resolve(self, relation_id: str,
                version: Optional[int] = None) -> Tuple[int, Relation]:
        """The (version, relation) a probe addresses; typed error if gone."""
        versions = self._relations.get(relation_id)
        if not versions:
            raise ServeError(
                f"unknown relation {relation_id!r}; register it first",
                relation_id=relation_id)
        if version is None:
            version = self._latest[relation_id]
        relation = versions.get(version)
        if relation is None:
            raise ServeError(
                f"relation {relation_id!r} has no version {version} "
                f"(latest is {self._latest[relation_id]})",
                relation_id=relation_id, version=version,
                latest=self._latest[relation_id])
        return version, relation

    def invalidate(self, relation_id: str) -> int:
        """Drop a relation (all versions) and its cached builds."""
        self._relations.pop(relation_id, None)
        self._latest.pop(relation_id, None)
        return self.cache.invalidate(relation_id)

    def relation_ids(self) -> List[str]:
        """Registered relation ids (sorted)."""
        return sorted(self._relations)

    # ------------------------------------------------------------------
    # the request path

    async def probe(self, request: ProbeRequest,
                    emit: Optional[ChunkEmitter] = None) -> ProbeOutcome:
        """Serve one probe request; see the module docstring for stages."""
        self.requests += 1
        trace_id = request.trace_id or f"req-{next(self._trace_seq)}"
        morsel_tuples = self.admission.clamp_morsel_tuples(
            request.morsel_tuples)
        deadline = (Deadline(request.deadline_ms)
                    if request.deadline_ms is not None else None)
        try:
            # Budget and registry checks happen before a slot is taken:
            # refusals must stay cheap when the server is saturated.
            n_morsels = self.admission.morsel_count(
                len(request.probe), morsel_tuples)
            version, build_rel = self.resolve(request.relation_id,
                                              request.version)
            async with self.admission.admit():
                with cancel_scope(deadline=deadline, token=request.cancel):
                    outcome = await self._probe_admitted(
                        request, build_rel, version, morsel_tuples,
                        n_morsels, trace_id, emit)
        except DeadlineExceeded as exc:
            self.failed += 1
            self.deadline_exceeded += 1
            exc.context.setdefault("trace_id", trace_id)
            raise
        except (RequestCancelled, asyncio.CancelledError):
            self.failed += 1
            self.cancelled += 1
            raise
        except CircuitOpen:
            self.failed += 1
            self.circuit_shed += 1
            raise
        except BaseException:
            self.failed += 1
            raise
        self.completed += 1
        return outcome

    async def _probe_admitted(
        self,
        request: ProbeRequest,
        build_rel: Relation,
        version: int,
        morsel_tuples: int,
        n_morsels: int,
        trace_id: str,
        emit: Optional[ChunkEmitter],
    ) -> ProbeOutcome:
        key = (request.relation_id, version)
        if self.planner is None:
            return await self._probe_planned(
                request, build_rel, version, morsel_tuples, n_morsels,
                trace_id, emit, decision=None)
        # ``planner: auto``: pick the backend for this request before any
        # kernel runs; a cold key prices the build, a warm one only the
        # probe.  The decision wraps the whole request so the backend tag
        # and every kernel agree — exactly what a hand-forced backend
        # env would do, so served answers stay bit-identical.
        decision = self.planner.plan_probe(
            build_rel, request.probe,
            cold=self.cache.peek(key) is None)
        with use_backend(decision.backend):
            outcome = await self._probe_planned(
                request, build_rel, version, morsel_tuples, n_morsels,
                trace_id, emit, decision=decision)
        self.planner.finish(outcome.result, decision)
        return outcome

    async def _probe_planned(
        self,
        request: ProbeRequest,
        build_rel: Relation,
        version: int,
        morsel_tuples: int,
        n_morsels: int,
        trace_id: str,
        emit: Optional[ChunkEmitter],
        decision=None,
    ) -> ProbeOutcome:
        probe_rel = request.probe
        key = (request.relation_id, version)
        tracer = Tracer(SERVE_ALGORITHM, algorithm=SERVE_ALGORITHM,
                        trace_id=trace_id, relation_id=request.relation_id,
                        version=version, n_r=len(build_rel),
                        n_s=len(probe_rel))
        metrics = tracer.metrics
        result = JoinResult(
            algorithm=SERVE_ALGORITHM, n_r=len(build_rel),
            n_s=len(probe_rel), output_count=0, output_checksum=0,
            meta={"backend": current_backend()},
        )
        chunks: List[Dict] = []
        with activate(tracer), \
                fault_scope(SERVE_ALGORITHM, plan=request.faults) as faults:
            hit_counter = metrics.counter("serve.cache_hit")
            miss_counter = metrics.counter("serve.cache_miss")
            if decision is not None:
                metrics.counter("plan.requests").inc()
                metrics.gauge("plan.predicted_wall_seconds").set(
                    decision.predicted_wall_seconds)
            checkpoint(stage="admitted", trace_id=trace_id)
            entry, hit, shared = await self.cache.get_or_build(
                key, lambda: self._build_entry(key, build_rel, result))
            # A deadline that ran out during the build fires here at the
            # latest — single-shot vector builds have no interior
            # checkpoint, so this is what keeps ``deadline_ms=1`` against
            # a large cold build typed on every backend.
            checkpoint(stage="built", trace_id=trace_id,
                       cache_hit=hit, build_shared=shared)
            (hit_counter if hit else miss_counter).inc()
            if shared:
                metrics.counter("serve.build_shared").inc()
            entry.served += 1
            scanned = len(probe_rel) + (0 if hit or shared
                                        else len(build_rel))
            metrics.counter("join.tuples_scanned").inc(scanned)

            with tracer.span("probe", algo=SERVE_ALGORITHM,
                             trace_id=trace_id) as span:
                (summary, total_counters, morsel_counters,
                 morsel_extras) = await self._probe_morsels(
                    entry, probe_rel, morsel_tuples, n_morsels, chunks,
                    emit, trace_id, metrics)
                schedule = self.pool.queue_phase_seconds(
                    morsel_counters, extra_task_seconds=morsel_extras)
                span.finish(
                    simulated_seconds=schedule.makespan,
                    counters=total_counters,
                    task_count=n_morsels,
                    morsel_tuples=float(morsel_tuples),
                )
            result.phases.append(span.phase_result)

            result.output_count = summary.count
            result.output_checksum = summary.checksum
            metrics.counter("join.output_tuples").inc(summary.count)
            metrics.gauge("serve.cache_entries").set(len(self.cache))
            if decision is not None:
                metrics.gauge("plan.realized_wall_seconds").set(
                    result.wall_seconds)
            result.faults = faults.reports
        result.meta.update({
            "served": True,
            "relation_id": request.relation_id,
            "version": version,
            "cache_hit": hit,
            "build_shared": shared,
            "trace_id": trace_id,
            "morsel_tuples": morsel_tuples,
            "n_chunks": len(chunks),
        })
        result.trace = tracer.record()
        return ProbeOutcome(result=result, chunks=chunks)

    def _build_entry(self, key: Tuple[str, int],
                     relation: Relation, result: JoinResult) -> CachedBuild:
        """Build the chained table for a cold key, under a ``build`` span.

        Mirrors the no-partition join's global build: capacity-overflow
        faults regrow the table with bounded retries, and wasted
        attempts plus backoff are charged to the span's simulated time.
        Only the request that actually builds gets this span (and pays
        this cost) — warm hits and shared builds never enter here.
        """
        from repro.obs.trace import current_tracer

        scope = current_fault_scope()
        tracer = current_tracer()
        with tracer.span("build", algo=SERVE_ALGORITHM,
                         relation_id=key[0], version=key[1]) as span:

            def run(counters: OpCounters, attempt: int):
                table = ChainedHashTable(
                    next_pow2(max(len(relation), 1)) << min(attempt, 8))
                table.build(relation.keys, relation.payloads,
                            counters=counters, random_access=True)
                return table

            outcome = run_task_with_recovery(
                run, scope, points=("capacity",),
                structure="serve-build-table", relation_id=key[0])
            # Priced exactly like cbase-npj's global build: statically
            # split across the pool, wasted regrow attempts and backoff
            # charged to every thread.
            n_threads = self.pool.n_threads
            overhead = sum(self.cost_model.seconds(w) / n_threads
                           for w in outcome.wasted) + sum(outcome.backoffs)
            per_thread = _split_counters(outcome.counters, len(relation),
                                         n_threads)
            build_seconds = self.pool.static_phase_seconds(
                per_thread, extra_seconds=[overhead] * len(per_thread))
            span.finish(simulated_seconds=build_seconds,
                        counters=outcome.counters,
                        n_buckets=float(outcome.value.n_buckets))
        result.phases.append(span.phase_result)
        return CachedBuild(
            table=outcome.value, relation_id=key[0], version=key[1],
            n_entries=len(relation), build_seconds=build_seconds)

    async def _probe_morsels(
        self,
        entry: CachedBuild,
        probe_rel: Relation,
        morsel_tuples: int,
        n_morsels: int,
        chunks: List[Dict],
        emit: Optional[ChunkEmitter],
        trace_id: str,
        metrics,
    ) -> Tuple[OutputSummary, OpCounters, List[OpCounters], List[float]]:
        """Stream the probe side through the cached table, one morsel at
        a time, yielding to the event loop between morsels."""
        from repro.exec.cancel import current_cancel_scope

        scope = current_fault_scope()
        cancel = current_cancel_scope()
        table = entry.table
        summary = OutputSummary()
        total_counters = OpCounters()
        morsel_counters: List[OpCounters] = []
        morsel_extras: List[float] = []
        n = len(probe_rel)
        try:
            for index in range(n_morsels):
                a = index * morsel_tuples
                b = min(a + morsel_tuples, n)
                # Seeded slow-morsel delay: charged against the deadline
                # and priced into the schedule, never slept — determinism
                # is the whole point of the ``slow`` kind.
                slow_seconds = 0.0
                spec = scope.fire("slow", morsel=index)
                if spec is not None and spec.kind == SLOW:
                    slow_seconds = spec.seconds
                    if cancel is not None and cancel.deadline is not None:
                        cancel.deadline.charge(slow_seconds)
                    scope.record(FailureReport(
                        kind=SLOW, point="slow", algorithm=SERVE_ALGORITHM,
                        phase=current_phase_name(), action="delay",
                        recovered=True, injected=True,
                        backoff_seconds=slow_seconds,
                        context={"morsel": index}))
                    metrics.counter("serve.slow_morsels").inc()
                checkpoint(morsel=index, n_morsels=n_morsels)

                def run(counters: OpCounters, attempt: int, a=a, b=b):
                    buf = JoinOutputBuffer(self.output_capacity)
                    return table.probe(
                        probe_rel.keys[a:b], probe_rel.payloads[a:b], buf,
                        counters=counters, random_access=True)

                outcome = run_task_with_recovery(
                    run, scope, points=("task",), morsel=index)
                morsel_counters.append(outcome.counters)
                morsel_extras.append(
                    sum(self.cost_model.seconds(w) for w in outcome.wasted)
                    + sum(outcome.backoffs) + slow_seconds)
                total_counters += outcome.counters
                chunk_summary: OutputSummary = outcome.value
                summary.add_pairs_sum(chunk_summary.count,
                                      chunk_summary.checksum)
                metrics.counter("serve.probe_morsels").inc()
                chunk = {
                    "index": index,
                    "tuples": b - a,
                    "count": chunk_summary.count,
                    "checksum": chunk_summary.checksum,
                    "trace_id": trace_id,
                }
                chunks.append(chunk)
                if emit is not None:
                    await emit(dict(chunk))
                # One yield per morsel: concurrent requests interleave and
                # streamed chunks reach clients incrementally.
                await asyncio.sleep(0)
        except (DeadlineExceeded, RequestCancelled) as exc:
            # Partial-progress counters: how far the request got before
            # the budget died (chunks already streamed stay valid).
            exc.context.setdefault("morsels_completed", len(morsel_counters))
            exc.context.setdefault("n_morsels", n_morsels)
            exc.context.setdefault("partial_count", summary.count)
            exc.context.setdefault("partial_checksum", summary.checksum)
            raise
        return summary, total_counters, morsel_counters, morsel_extras

    def probe_sync(self, request: ProbeRequest) -> ProbeOutcome:
        """Blocking wrapper for non-async callers (diff leg, tests)."""
        return asyncio.run(self.probe(request))

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Lifetime engine statistics (the ``stats`` op's payload)."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "deadline_exceeded": self.deadline_exceeded,
            "cancelled": self.cancelled,
            "circuit_shed": self.circuit_shed,
            "relations": {
                rid: self._latest[rid] for rid in sorted(self._latest)
            },
            "cache": self.cache.info(),
            "admission": self.admission.info(),
        }

    def health(self) -> Dict[str, object]:
        """Liveness snapshot (the ``health`` op's payload).

        Flat ``serve.health.*`` metrics plus a per-circuit detail map.
        The worker-liveness probe is *active*: it reaps and respawns dead
        workers (within budget) before reporting, so a health check is
        itself a self-healing event — the chaos harness leans on this to
        assert "all workers live" after a kill sweep.
        """
        from repro.exec.parallel.pool import current_liveness

        cache_info = self.cache.info()
        admission_info = self.admission.info()
        liveness = current_liveness(heal=True) or {
            "workers": 0, "alive": 0, "processes": False,
            "respawns": 0, "max_respawns": 0, "exhausted": False,
        }
        circuits = self.cache.circuits()
        ok = ((liveness["alive"] >= liveness["workers"]
               or not liveness["processes"])
              and not liveness["exhausted"]
              and not cache_info["open_circuits"])
        metrics = {
            "serve.health.cache_entries": cache_info["entries"],
            "serve.health.cache_max_entries": cache_info["max_entries"],
            "serve.health.open_circuits": cache_info["open_circuits"],
            "serve.health.circuit_shed": cache_info["circuit_shed"],
            "serve.health.inflight": admission_info["inflight"],
            "serve.health.queued": admission_info["queued"],
            "serve.health.workers": liveness["workers"],
            "serve.health.workers_alive": liveness["alive"],
            "serve.health.worker_respawns": liveness["respawns"],
            "serve.health.pool_exhausted": int(liveness["exhausted"]),
            "serve.health.requests": self.requests,
            "serve.health.completed": self.completed,
            "serve.health.failed": self.failed,
            "serve.health.deadline_exceeded": self.deadline_exceeded,
            "serve.health.cancelled": self.cancelled,
        }
        return {
            "ok": bool(ok),
            "metrics": metrics,
            "circuits": circuits,
            "workers": liveness,
        }
