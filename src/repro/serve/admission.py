"""Admission control and per-request morsel budgets for the daemon.

Two protections keep a saturated server shedding load instead of
queueing unboundedly:

* **Concurrency bounds** — at most ``max_inflight`` requests execute at
  once; up to ``max_queue`` more may wait.  Beyond that, requests are
  refused immediately with a typed :class:`~repro.errors.AdmissionError`
  carrying the limits that were hit, so clients back off instead of
  piling on.
* **Morsel budgets** — a probe side is streamed in morsels of
  ``morsel_tuples`` tuples; a request may consume at most
  ``max_morsels`` of them.  Oversized requests are refused up front
  (before any build work), and requested morsel sizes are clamped into
  ``[min_morsel_tuples, max_morsel_tuples]`` so one client cannot pick a
  degenerate chunking that starves the event loop.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator, Dict, Optional

from repro.errors import AdmissionError, ConfigError

#: Default tuples per streamed probe morsel.
DEFAULT_MORSEL_TUPLES = 8192

#: Hard bounds on a request's chosen morsel size.
MIN_MORSEL_TUPLES = 64
MAX_MORSEL_TUPLES = 1 << 20


class AdmissionController:
    """Bounded-concurrency gate plus morsel-budget arithmetic."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        max_morsels: int = 4096,
        morsel_tuples: int = DEFAULT_MORSEL_TUPLES,
    ):
        if max_inflight <= 0:
            raise ConfigError(
                f"max_inflight must be positive, got {max_inflight}")
        if max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {max_queue}")
        if max_morsels <= 0:
            raise ConfigError(
                f"max_morsels must be positive, got {max_morsels}")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.max_morsels = int(max_morsels)
        self.default_morsel_tuples = self.clamp_morsel_tuples(morsel_tuples)
        self._slots = asyncio.Semaphore(self.max_inflight)
        self.inflight = 0
        self.queued = 0
        self.admitted = 0
        self.rejected = 0

    @staticmethod
    def clamp_morsel_tuples(requested: Optional[int]) -> int:
        """A usable morsel size: the request's wish, clamped into bounds."""
        if requested is None:
            return DEFAULT_MORSEL_TUPLES
        return max(MIN_MORSEL_TUPLES, min(int(requested), MAX_MORSEL_TUPLES))

    def morsel_count(self, n_tuples: int, morsel_tuples: int) -> int:
        """Morsels a probe of ``n_tuples`` needs; raises when over budget."""
        n_morsels = -(-int(n_tuples) // int(morsel_tuples)) if n_tuples else 0
        if n_morsels > self.max_morsels:
            self.rejected += 1
            raise AdmissionError(
                "probe exceeds its morsel budget; shrink the probe side or "
                "raise morsel_tuples",
                n_tuples=int(n_tuples), morsel_tuples=int(morsel_tuples),
                n_morsels=n_morsels, max_morsels=self.max_morsels)
        return n_morsels

    @asynccontextmanager
    async def admit(self) -> AsyncIterator[None]:
        """Hold one execution slot, or refuse with a typed error.

        Refusal is immediate — a request that cannot even queue never
        waits — which is what keeps tail latency bounded when the
        server is saturated.
        """
        if self.inflight >= self.max_inflight and self.queued >= self.max_queue:
            self.rejected += 1
            raise AdmissionError(
                "server saturated: in-flight and queue limits reached",
                inflight=self.inflight, max_inflight=self.max_inflight,
                queued=self.queued, max_queue=self.max_queue)
        self.queued += 1
        try:
            await self._slots.acquire()
        finally:
            self.queued -= 1
        self.inflight += 1
        self.admitted += 1
        try:
            yield
        finally:
            self.inflight -= 1
            self._slots.release()

    def info(self) -> Dict[str, int]:
        """Counter snapshot (stats op, tests, the smoke harness)."""
        return {
            "inflight": self.inflight,
            "queued": self.queued,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "max_morsels": self.max_morsels,
            "default_morsel_tuples": self.default_morsel_tuples,
        }
