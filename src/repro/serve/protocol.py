"""Wire protocol of the join service: NDJSON over a local socket.

One request per line, one or more response lines per request.  Every
message is a JSON object; requests carry an ``op`` plus op-specific
fields, responses carry a ``type`` plus the originating ``request_id``
and ``trace_id`` so concurrent requests can interleave on one
connection.

Requests::

    {"op": "register", "relation_id": "orders", "relation": <spec>}
    {"op": "probe", "relation_id": "orders", "probe": <spec>,
     "version": 2, "morsel_tuples": 8192, "trace_id": "req-7",
     "faults": [{"kind": "worker-crash", "point": "task"}]}
    {"op": "stats"} | {"op": "invalidate", "relation_id": "orders"}
    {"op": "ping"} | {"op": "health"} | {"op": "shutdown"}

A probe may carry ``"deadline_ms"``: a positive wall-clock budget for
the whole request; expiry surfaces as a typed ``DeadlineExceeded`` error
with partial-progress counters.  ``health`` reports cache occupancy,
circuit-breaker states, worker liveness and admission depth as flat
``serve.health.*`` metrics.

Responses: ``registered``, ``chunk`` (one streamed probe morsel),
``result`` (the full serialized :class:`~repro.exec.result.JoinResult`),
``stats``, ``invalidated``, ``pong``, ``health``, ``bye``, and
``error``.  Errors are
*typed*: the payload carries the exception class name, the structured
context, and — for unrecovered faults — the full
:class:`~repro.faults.report.FailureReport`, so clients never parse
prose.

A relation ``<spec>`` names a deterministic generator so requests stay
small: ``{"generator": "zipf", "n": 20000, "theta": 1.0, "seed": 42,
"side": "r"}`` (both sides of one seeded workload are addressable, which
is how a client and the server agree bit-for-bit on the data), or
``{"generator": "inline", "keys": [...], "payloads": [...]}`` for
hand-built relations.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Union

import numpy as np

from repro.data.generators import constant_key_input, uniform_input
from repro.data.relation import Relation
from repro.data.zipf import ZipfWorkload
from repro.errors import ProtocolError, ReproError

PROTOCOL_VERSION = 1

#: Every request op the server understands.
REQUEST_OPS = ("register", "probe", "stats", "invalidate", "ping", "health",
               "shutdown")

#: Every response type the server emits.
RESPONSE_TYPES = ("registered", "chunk", "result", "stats", "invalidated",
                  "pong", "health", "bye", "error")

#: Generators addressable from a relation spec.
SPEC_GENERATORS = ("zipf", "uniform", "constant", "inline")


def encode_message(message: Dict) -> bytes:
    """One compact JSON line (UTF-8, trailing newline)."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: Union[str, bytes]) -> Dict:
    """Parse one protocol line; raises :class:`ProtocolError` when bad."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            f"protocol line is not valid JSON: {exc}",
            head=line[:80]) from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got "
            f"{type(message).__name__}")
    return message


def validate_request(message: Dict) -> str:
    """Return the request's op; raise :class:`ProtocolError` otherwise."""
    op = message.get("op")
    if op not in REQUEST_OPS:
        raise ProtocolError(
            f"unknown request op {op!r}; expected one of {REQUEST_OPS}",
            op=str(op))
    version = message.get("protocol_version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this server "
            f"speaks version {PROTOCOL_VERSION})",
            found_version=version, expected_version=PROTOCOL_VERSION)
    return op


def relation_from_spec(spec: Dict) -> Relation:
    """Materialize the relation a spec describes, deterministically.

    Seeded generator specs let a probe request describe megabytes of
    tuples in one line, and let the smoke harness re-derive the same
    relation client-side to check answers against a direct run.
    """
    if not isinstance(spec, dict):
        raise ProtocolError(
            f"relation spec must be an object, got {type(spec).__name__}")
    generator = spec.get("generator")
    if generator not in SPEC_GENERATORS:
        raise ProtocolError(
            f"unknown relation generator {generator!r}; expected one of "
            f"{SPEC_GENERATORS}")
    try:
        if generator == "inline":
            keys = spec.get("keys")
            payloads = spec.get("payloads")
            if keys is None:
                raise ProtocolError("inline relation spec needs 'keys'")
            if payloads is None:
                payloads = keys
            return Relation(np.asarray(keys, dtype=np.uint32),
                            np.asarray(payloads, dtype=np.uint32),
                            name=str(spec.get("name", "inline")))
        n = int(spec.get("n", 0))
        seed = int(spec.get("seed", 0))
        side = spec.get("side", "r")
        if side not in ("r", "s"):
            raise ProtocolError(
                f"relation spec side must be 'r' or 's', got {side!r}")
        if generator == "zipf":
            workload = ZipfWorkload(n, n, float(spec.get("theta", 1.0)),
                                    seed=seed).generate()
        elif generator == "uniform":
            workload = uniform_input(n, n, n_keys=spec.get("n_keys"),
                                     seed=seed)
        else:  # constant
            workload = constant_key_input(n, n, key=int(spec.get("key", 7)),
                                          seed=seed)
        return workload.r if side == "r" else workload.s
    except ProtocolError:
        raise
    except (ReproError, ValueError, TypeError, OverflowError) as exc:
        raise ProtocolError(
            f"bad relation spec: {exc}", generator=str(generator)) from exc


def error_payload(exc: BaseException) -> Dict:
    """Typed error body: class name, message, context, fault report."""
    payload: Dict[str, object] = {
        "kind": type(exc).__name__,
        "message": getattr(exc, "message", "") or str(exc),
    }
    context = getattr(exc, "context", None)
    if context:
        payload["context"] = {key: _jsonable(value)
                              for key, value in context.items()}
    report = getattr(exc, "report", None)
    if report is not None and hasattr(report, "to_dict"):
        payload["report"] = report.to_dict()
    return payload


def error_response(exc: BaseException,
                   request_id: str = "",
                   trace_id: str = "") -> Dict:
    """A full ``error`` response line for one failed request."""
    return {
        "type": "error",
        "request_id": request_id,
        "trace_id": trace_id,
        "error": error_payload(exc),
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "__int__"):
        return int(value)
    return str(value)
