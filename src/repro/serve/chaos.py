"""Chaos-under-load for the daemon (the serve-chaos CI job).

:func:`run_serve_chaos` boots a real server on a loopback socket and
drives it with M concurrent clients whose requests carry seeded fault
scripts — recovered worker crashes, retry-exhausting crash storms,
slow-morsel delays with and without deadlines — interleaved with pings,
followed by targeted scenarios the concurrent sweep cannot express:

* **circuit breaking** — consecutive doomed cold builds of one relation
  open its circuit; the next probe sheds with a typed ``CircuitOpen``;
  after the decay window a half-open trial succeeds and closes it;
* **mid-stream disconnect** — a raw client reads one chunk and aborts
  the connection; the server must cancel the remaining morsels, release
  the admission slot, and stay live;
* **worker kill** (parallel backend only) — a pool worker is
  SIGKILLed mid-sweep; self-healing respawns it and answers stay
  bit-identical.

The resilience contract under every injected fault: a request either
streams a **bit-identical** answer (checked against a direct in-process
pipeline run) or fails with a **typed** error (``DeadlineExceeded``,
``CircuitOpen``, ``UnrecoveredFaultError``, ...) — never a hung
connection, never a dead daemon.  The post-sweep ``health`` probe must
report every worker live, every circuit closed, and zero in-flight
requests; its payload can be written to a JSON artifact for CI upload.
"""

from __future__ import annotations

import asyncio
import json
import random
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.serve.client import ProbeReply, ServeClient
from repro.serve.engine import ServeEngine
from repro.serve.protocol import encode_message, relation_from_spec
from repro.serve.server import ServeServer
from repro.serve.smoke import SmokeChecks

#: Morsel size of every chaos probe: small enough that the default-sized
#: probe side streams several chunks (slow faults and disconnects need
#: morsel boundaries to land on).
CHAOS_MORSEL_TUPLES = 1024

#: Seconds an open circuit waits before half-open, in the chaos server.
CHAOS_CIRCUIT_RESET_SECONDS = 0.2

#: The per-request fault scripts the concurrent sweep cycles through.
SCRIPTS = ("clean", "crash", "doomed", "slow", "slow-deadline")


def _script_fields(script: str, rng: random.Random,
                   n_morsels: int) -> Dict[str, object]:
    """The probe kwargs one script adds (faults and/or deadline)."""
    if script == "clean":
        return {}
    if script == "crash":
        return {"faults": [{"kind": "worker-crash", "point": "task",
                            "occurrence": rng.randint(1, n_morsels)}]}
    if script == "doomed":
        return {"faults": [{"kind": "worker-crash", "point": "task",
                            "occurrence": rng.randint(1, n_morsels),
                            "repeat": 9}]}
    if script == "slow":
        # A seeded delay with no deadline: priced, charged, harmless.
        return {"faults": [{"kind": "slow", "point": "slow",
                            "occurrence": rng.randint(1, n_morsels),
                            "seconds": 0.5}]}
    # slow-deadline: a 10-simulated-second morsel against a 50ms budget —
    # the charge alone trips the deadline, no wall-clock sleeping, so the
    # outcome is deterministic on any machine.
    return {"faults": [{"kind": "slow", "point": "slow",
                        "occurrence": 1, "seconds": 10.0}],
            "deadline_ms": 50.0}


def _expected(script: str) -> Optional[str]:
    """Error kind a script must produce (None = must succeed)."""
    return {"doomed": "UnrecoveredFaultError",
            "slow-deadline": "DeadlineExceeded"}.get(script)


def _check_reply(checks: SmokeChecks, label: str, script: str,
                 reply: ProbeReply, want_summary: Dict[str, int]) -> None:
    """One reply against the bit-identical-or-typed-error contract."""
    want_error = _expected(script)
    if want_error is None:
        ok = reply.ok and reply.summary == want_summary
        detail = (f"type={reply.response.get('type')} "
                  f"summary={reply.summary}")
        if script in ("crash", "slow") and reply.ok:
            reports = reply.result.get("faults", [])
            ok = ok and len(reports) == 1 and reports[0].get("recovered")
            detail += f" reports={len(reports)}"
        checks.record(f"{label} [{script}] bit-identical answer", ok, detail)
    else:
        checks.record(
            f"{label} [{script}] typed {want_error}",
            (reply.error or {}).get("kind") == want_error,
            str(reply.error or reply.response.get("type")))


async def _client_worker(checks: SmokeChecks, port: int, relation: str,
                         probe_spec: Dict, jobs: List[Dict],
                         want_summary: Dict[str, int],
                         client_id: int) -> None:
    """One concurrent client: its share of the sweep, pings interleaved."""
    client = ServeClient(port=port)
    await client.connect()
    try:
        for i, job in enumerate(jobs):
            reply = await client.probe(
                relation, probe_spec,
                morsel_tuples=CHAOS_MORSEL_TUPLES,
                trace_id=f"chaos-c{client_id}-{i}", **job["fields"])
            _check_reply(checks, f"c{client_id}-{i}", job["script"], reply,
                         want_summary)
            if i % 3 == 0:
                pong = await client.ping()
                checks.record(f"c{client_id}-{i} daemon answers ping",
                              pong.get("type") == "pong",
                              str(pong.get("type")))
    finally:
        await client.close()


async def _disconnect_scenario(checks: SmokeChecks, server: ServeServer,
                               relation: str, probe_spec: Dict) -> None:
    """A raw client that reads one chunk, then aborts the connection."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    # Minimum-size morsels: enough chunks that the request is guaranteed
    # to still be in flight when the abort lands, on any backend.
    writer.write(encode_message({
        "op": "probe", "request_id": "chaos-disconnect",
        "relation_id": relation, "probe": probe_spec,
        "morsel_tuples": 64,
        "trace_id": "chaos-disconnect"}))
    await writer.drain()
    first = await asyncio.wait_for(reader.readline(), timeout=30.0)
    checks.record("disconnector received its first chunk",
                  b'"chunk"' in first, str(first[:80]))
    writer.transport.abort()  # RST: the next server write must fail
    # The server must notice, cancel the rest, and free the slot.
    for _ in range(200):
        if (server.disconnects >= 1
                and server.engine.admission.inflight == 0):
            break
        await asyncio.sleep(0.05)
    checks.record("disconnect cancelled the request and freed its slot",
                  server.disconnects >= 1
                  and server.engine.admission.inflight == 0,
                  f"disconnects={server.disconnects} "
                  f"inflight={server.engine.admission.inflight}")


async def _circuit_scenario(checks: SmokeChecks, client: ServeClient,
                            relation: str, probe_spec: Dict,
                            threshold: int,
                            want_summary: Dict[str, int]) -> None:
    """Doomed cold builds open the circuit; decay + clean probe closes it."""
    doom = [{"kind": "capacity-overflow", "point": "capacity", "repeat": 9}]
    for i in range(threshold):
        reply = await client.probe(relation, probe_spec, faults=doom,
                                   morsel_tuples=CHAOS_MORSEL_TUPLES,
                                   trace_id=f"chaos-circuit-doom-{i}")
        checks.record(
            f"failing cold build #{i + 1} surfaces typed error",
            (reply.error or {}).get("kind") == "UnrecoveredFaultError",
            str(reply.error))
    shed = await client.probe(relation, probe_spec,
                              morsel_tuples=CHAOS_MORSEL_TUPLES,
                              trace_id="chaos-circuit-shed")
    checks.record("open circuit sheds with typed CircuitOpen",
                  (shed.error or {}).get("kind") == "CircuitOpen",
                  str(shed.error))
    checks.record("CircuitOpen carries retry_in_seconds",
                  "retry_in_seconds" in (shed.error or {}).get("context", {}),
                  str((shed.error or {}).get("context")))
    await asyncio.sleep(CHAOS_CIRCUIT_RESET_SECONDS + 0.05)
    trial = await client.probe(relation, probe_spec,
                               morsel_tuples=CHAOS_MORSEL_TUPLES,
                               trace_id="chaos-circuit-trial")
    checks.record("half-open trial closes the circuit with a clean build",
                  trial.ok and trial.summary == want_summary,
                  f"type={trial.response.get('type')} "
                  f"summary={trial.summary}")


def _maybe_engage_pool():
    """The live worker pool under the parallel backend, else None."""
    from repro.exec.backend import PARALLEL, current_backend
    from repro.exec.parallel.pool import availability, get_pool
    if current_backend() != PARALLEL or not availability()[0]:
        return None
    pool = get_pool()
    return pool if pool.uses_processes else None


async def _scenario(checks: SmokeChecks, n: int, theta: float, seed: int,
                    clients: int, requests: int,
                    health_out: Optional[Path]) -> None:
    rng = random.Random(seed)
    engine = ServeEngine(
        circuit_reset_seconds=CHAOS_CIRCUIT_RESET_SECONDS)
    server = ServeServer(engine=engine, drain_seconds=2.0)
    await server.start()
    serve_loop = asyncio.ensure_future(server.serve_until_shutdown())
    control = ServeClient(port=server.port)
    await control.connect()
    hot, flaky = "chaos-hot", "chaos-flaky"
    build_spec = {"generator": "zipf", "n": n, "theta": theta,
                  "seed": seed, "side": "r"}
    probe_spec = {"generator": "zipf", "n": n, "theta": theta,
                  "seed": seed, "side": "s"}
    flaky_build = {"generator": "uniform", "n": max(n // 4, 256),
                   "seed": seed + 1, "side": "r"}
    flaky_probe = {"generator": "uniform", "n": max(n // 4, 256),
                   "seed": seed + 1, "side": "s"}
    n_morsels = -(-n // CHAOS_MORSEL_TUPLES)
    try:
        await control.register(hot, build_spec)
        await control.register(flaky, flaky_build)

        # Ground truth from a direct in-process pipeline run.
        hot_direct = _direct_run(build_spec, probe_spec)
        want = {"count": hot_direct.output_count,
                "checksum": hot_direct.output_checksum}
        flaky_direct = _direct_run(flaky_build, flaky_probe)
        flaky_want = {"count": flaky_direct.output_count,
                      "checksum": flaky_direct.output_checksum}

        baseline = await control.probe(hot, probe_spec,
                                       morsel_tuples=CHAOS_MORSEL_TUPLES,
                                       trace_id="chaos-baseline")
        checks.record("baseline probe matches the direct run",
                      baseline.ok and baseline.summary == want,
                      f"{baseline.summary} vs {want}")

        # Concurrent sweep: seeded scripts spread over M clients.
        jobs: List[List[Dict]] = [[] for _ in range(clients)]
        for i in range(requests):
            script = SCRIPTS[i % len(SCRIPTS)]
            jobs[i % clients].append(
                {"script": script,
                 "fields": _script_fields(script, rng, n_morsels)})
        pool = _maybe_engage_pool()
        sweep = asyncio.gather(*[
            _client_worker(checks, server.port, hot, probe_spec,
                           jobs[c], want, c)
            for c in range(clients)])
        if pool is not None:
            # Kill one real worker mid-sweep; self-healing must absorb it.
            await asyncio.sleep(0.05)
            killed = pool.kill_worker(0)
            checks.record("chaos killed a live pool worker",
                          killed is not None, str(killed))
        await sweep

        # Targeted scenarios the sweep cannot express.
        await _circuit_scenario(checks, control, flaky, flaky_probe,
                                engine.cache.circuit_threshold, flaky_want)
        await _disconnect_scenario(checks, server, hot, probe_spec)

        # The daemon must still be fully live after the whole storm.
        checks.record("daemon answers ping after the storm",
                      (await control.ping()).get("type") == "pong")
        health = await control.health()
        workers = health.get("workers", {})
        checks.record(
            "post-sweep health: every worker live",
            not workers.get("processes")
            or workers.get("alive") == workers.get("workers"),
            str(workers))
        checks.record("post-sweep health: all circuits closed",
                      health["metrics"]["serve.health.open_circuits"] == 0,
                      str(health.get("circuits")))
        checks.record("post-sweep health: zero in-flight requests",
                      health["metrics"]["serve.health.inflight"] == 0,
                      str(health["metrics"]))
        checks.record("post-sweep health verdict is ok",
                      health.get("ok") is True, json.dumps(health))
        if health_out is not None:
            health_out.parent.mkdir(parents=True, exist_ok=True)
            health_out.write_text(json.dumps(
                {"health": health,
                 "checks": [{"name": name, "ok": ok}
                            for name, ok, _ in checks.checks]},
                indent=2, sort_keys=True) + "\n")
        bye = await control.shutdown()
        checks.record("shutdown answers bye", bye.get("type") == "bye")
    finally:
        await control.close()
        await server.close()
        await serve_loop


def _direct_run(build_spec: Dict, probe_spec: Dict):
    from repro.api import make_join
    from repro.data.relation import JoinInput

    join_input = JoinInput(r=relation_from_spec(build_spec),
                           s=relation_from_spec(probe_spec),
                           meta={"generator": "serve-chaos"})
    return make_join("cbase").run(join_input)


def run_serve_chaos(n: int = 8192, theta: float = 1.0, seed: int = 7,
                    clients: int = 4, requests: int = 20,
                    health_out: Optional[Union[str, Path]] = None,
                    quiet: bool = False) -> int:
    """Run the storm; returns a process exit code (0 = all green)."""
    checks = SmokeChecks()
    checks.label = "serve chaos"
    try:
        asyncio.run(_scenario(checks, n, theta, seed, max(1, clients),
                              max(1, requests),
                              Path(health_out) if health_out else None))
    except Exception as exc:  # noqa: BLE001 - chaos must report, not crash
        checks.record("scenario ran to completion", False,
                      f"{type(exc).__name__}: {exc}")
    else:
        checks.record("scenario ran to completion", True)
    if not quiet:
        print("serve chaos — concurrent fault storm against the daemon")
        print(checks.render())
    return 0 if checks.ok else 1
