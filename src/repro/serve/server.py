"""The asyncio join-service daemon: NDJSON requests over a local socket.

:class:`ServeServer` binds a loopback TCP socket (ephemeral port by
default) and speaks the protocol in :mod:`repro.serve.protocol`.  Each
connection reads one request per line; ``probe`` requests are dispatched
as their own tasks so a slow cold build never blocks other requests on
the same connection — responses carry the request id, and chunks stream
back as the engine produces them.  Control ops (``register``, ``stats``,
``invalidate``, ``ping``, ``shutdown``) are answered inline.

Every failure a request can hit — malformed lines, unknown relations,
admission refusals, unrecovered faults — is answered with a typed
``error`` line; the connection itself stays up.  When a trace path is
configured, every completed probe's full :class:`JoinResult` (trace,
metrics, fault reports included) is appended to a JSONL artifact, the
file the serve-smoke CI job uploads.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.errors import ProtocolError, ReproError
from repro.exec.serialize import append_results_jsonl, result_to_dict
from repro.faults.plan import plan_from_dicts
from repro.serve.engine import ProbeRequest, ServeEngine
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_response,
    relation_from_spec,
    validate_request,
)

DEFAULT_HOST = "127.0.0.1"


class ServeServer:
    """One daemon instance wrapping a :class:`ServeEngine`."""

    def __init__(
        self,
        engine: Optional[ServeEngine] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        trace_path: Optional[Union[str, Path]] = None,
    ):
        self.engine = engine or ServeEngine()
        self.host = host
        self.port = port
        self.trace_path = Path(trace_path) if trace_path else None
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: Set[asyncio.Task] = set()
        self._shutdown = asyncio.Event()
        self.connections = 0
        self.traced_results = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> "ServeServer":
        """Bind the socket; ``self.port`` holds the real port afterwards."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`shutdown`) arrives."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
            await self._drain()

    def shutdown(self) -> None:
        """Ask the serve loop to stop accepting and drain in-flight work."""
        self._shutdown.set()

    async def _drain(self) -> None:
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Stop the listener and wait for in-flight request tasks."""
        self.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drain()

    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        # One writer lock per connection: chunk lines from concurrent
        # probe tasks interleave whole-line, never mid-line.
        lock = asyncio.Lock()
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                stop = await self._handle_line(line, writer, lock)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           lock: asyncio.Lock) -> bool:
        """Dispatch one request line; True means "close this connection"."""
        request_id = ""
        try:
            message = decode_message(line)
            request_id = str(message.get("request_id", ""))
            op = validate_request(message)
        except ProtocolError as exc:
            await self._send(writer, lock, error_response(exc, request_id))
            return False
        if op == "probe":
            task = asyncio.ensure_future(
                self._handle_probe(message, request_id, writer, lock))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            return False
        try:
            if op == "register":
                response = self._handle_register(message, request_id)
            elif op == "stats":
                response = {"type": "stats", "request_id": request_id,
                            "stats": self.engine.stats()}
            elif op == "invalidate":
                relation_id = str(message.get("relation_id", ""))
                dropped = self.engine.invalidate(relation_id)
                response = {"type": "invalidated", "request_id": request_id,
                            "relation_id": relation_id, "dropped": dropped}
            elif op == "ping":
                response = {"type": "pong", "request_id": request_id}
            else:  # shutdown
                await self._send(writer, lock,
                                 {"type": "bye", "request_id": request_id})
                self.shutdown()
                return True
        except ReproError as exc:
            response = error_response(exc, request_id)
        await self._send(writer, lock, response)
        return False

    def _handle_register(self, message: Dict, request_id: str) -> Dict:
        relation_id = str(message.get("relation_id", ""))
        relation = relation_from_spec(message.get("relation"))
        version = self.engine.register(relation_id, relation)
        return {
            "type": "registered",
            "request_id": request_id,
            "relation_id": relation_id,
            "version": version,
            "n_entries": len(relation),
        }

    async def _handle_probe(self, message: Dict, request_id: str,
                            writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        trace_id = str(message.get("trace_id", ""))
        try:
            request = self._probe_request(message, trace_id)

            async def emit(chunk: Dict) -> None:
                await self._send(writer, lock, {
                    "type": "chunk", "request_id": request_id,
                    "trace_id": chunk.pop("trace_id", trace_id), **chunk})

            outcome = await self.engine.probe(request, emit=emit)
        except ReproError as exc:
            await self._send(writer, lock,
                             error_response(exc, request_id, trace_id))
            return
        result = outcome.result
        if self.trace_path is not None:
            append_results_jsonl([result], self.trace_path)
            self.traced_results += 1
        await self._send(writer, lock, {
            "type": "result",
            "request_id": request_id,
            "trace_id": result.meta.get("trace_id", trace_id),
            "cache_hit": bool(result.meta.get("cache_hit")),
            "n_chunks": len(outcome.chunks),
            "result": result_to_dict(result),
        })

    def _probe_request(self, message: Dict, trace_id: str) -> ProbeRequest:
        probe = relation_from_spec(message.get("probe"))
        version = message.get("version")
        if version is not None:
            version = int(version)
        morsel_tuples = message.get("morsel_tuples")
        if morsel_tuples is not None:
            morsel_tuples = int(morsel_tuples)
        faults = message.get("faults")
        plan = plan_from_dicts(faults) if faults else None
        return ProbeRequest(
            relation_id=str(message.get("relation_id", "")),
            probe=probe,
            version=version,
            morsel_tuples=morsel_tuples,
            trace_id=trace_id,
            faults=plan,
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    message: Dict) -> None:
        try:
            async with lock:
                writer.write(encode_message(message))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
