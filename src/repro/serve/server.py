"""The asyncio join-service daemon: NDJSON requests over a local socket.

:class:`ServeServer` binds a loopback TCP socket (ephemeral port by
default) and speaks the protocol in :mod:`repro.serve.protocol`.  Each
connection reads one request per line; ``probe`` requests are dispatched
as their own tasks so a slow cold build never blocks other requests on
the same connection — responses carry the request id, and chunks stream
back as the engine produces them.  Control ops (``register``, ``stats``,
``invalidate``, ``ping``, ``shutdown``) are answered inline.

Every failure a request can hit — malformed lines, unknown relations,
admission refusals, expired deadlines, open circuits, unrecovered
faults — is answered with a typed ``error`` line; the connection itself
stays up.  When a trace path is configured, every completed probe's full
:class:`JoinResult` (trace, metrics, fault reports included) is appended
to a JSONL artifact, the file the serve-smoke CI job uploads.

Shutdown is a **graceful drain**: the listener closes, new probes are
refused with a typed error, in-flight probes get ``drain_seconds`` to
finish, then their cancel tokens fire (typed ``RequestCancelled`` at the
next morsel boundary) and only an unresponsive remainder is hard
task-cancelled.  A client that disconnects mid-stream cancels its own
request the same cooperative way — the admission slot is always
released.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.errors import ProtocolError, ReproError, ServeError
from repro.exec.cancel import CancelToken
from repro.exec.serialize import append_results_jsonl, result_to_dict
from repro.faults.plan import plan_from_dicts
from repro.serve.engine import ProbeRequest, ServeEngine
from repro.serve.protocol import (
    decode_message,
    encode_message,
    error_response,
    relation_from_spec,
    validate_request,
)

DEFAULT_HOST = "127.0.0.1"

#: Seconds in-flight probes get to finish before drain cancels them.
DEFAULT_DRAIN_SECONDS = 5.0

#: Seconds between "tokens cancelled" and hard ``task.cancel()``.
_FORCE_CANCEL_GRACE_SECONDS = 1.0


class ServeServer:
    """One daemon instance wrapping a :class:`ServeEngine`."""

    def __init__(
        self,
        engine: Optional[ServeEngine] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        trace_path: Optional[Union[str, Path]] = None,
        drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    ):
        self.engine = engine or ServeEngine()
        self.host = host
        self.port = port
        self.trace_path = Path(trace_path) if trace_path else None
        self.drain_seconds = float(drain_seconds)
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: Set[asyncio.Task] = set()
        self._cancel_tokens: Set[CancelToken] = set()
        self._shutdown = asyncio.Event()
        self.draining = False
        self.connections = 0
        self.traced_results = 0
        self.disconnects = 0
        self.drain_refusals = 0
        self.force_cancelled = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> "ServeServer":
        """Bind the socket; ``self.port`` holds the real port afterwards."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`shutdown`) arrives."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
            await self._drain()

    def shutdown(self) -> None:
        """Ask the serve loop to stop accepting and drain in-flight work."""
        self._shutdown.set()

    async def _drain(self) -> None:
        """Graceful drain: wait, then cancel cooperatively, then force.

        1. Stop accepting: the listener closes and new probes are
           refused with a typed error.
        2. In-flight probe tasks get ``drain_seconds`` to finish.
        3. Stragglers' cancel tokens fire — each request raises a typed
           ``RequestCancelled`` at its next morsel checkpoint, so the
           client still gets a well-formed error line.
        4. Anything still alive after a short grace is hard-cancelled.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
        tasks = {t for t in self._tasks if not t.done()}
        if not tasks:
            return
        _done, pending = await asyncio.wait(tasks,
                                            timeout=self.drain_seconds)
        if not pending:
            return
        for token in list(self._cancel_tokens):
            token.cancel("server drain")
        _done, pending = await asyncio.wait(
            pending, timeout=_FORCE_CANCEL_GRACE_SECONDS)
        for task in pending:
            self.force_cancelled += 1
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def close(self) -> None:
        """Stop the listener and wait for in-flight request tasks."""
        self.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drain()

    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        # One writer lock per connection: chunk lines from concurrent
        # probe tasks interleave whole-line, never mid-line.
        lock = asyncio.Lock()
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                stop = await self._handle_line(line, writer, lock)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           lock: asyncio.Lock) -> bool:
        """Dispatch one request line; True means "close this connection"."""
        request_id = ""
        try:
            message = decode_message(line)
            request_id = str(message.get("request_id", ""))
            op = validate_request(message)
        except ProtocolError as exc:
            await self._send(writer, lock, error_response(exc, request_id))
            return False
        if op == "probe":
            if self.draining or self._shutdown.is_set():
                self.drain_refusals += 1
                await self._send(writer, lock, error_response(
                    ServeError("server is draining; not accepting new "
                               "probes", draining=True), request_id))
                return False
            task = asyncio.ensure_future(
                self._handle_probe(message, request_id, writer, lock))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
            return False
        try:
            if op == "register":
                response = self._handle_register(message, request_id)
            elif op == "stats":
                response = {"type": "stats", "request_id": request_id,
                            "stats": self.engine.stats()}
            elif op == "invalidate":
                relation_id = str(message.get("relation_id", ""))
                dropped = self.engine.invalidate(relation_id)
                response = {"type": "invalidated", "request_id": request_id,
                            "relation_id": relation_id, "dropped": dropped}
            elif op == "ping":
                response = {"type": "pong", "request_id": request_id}
            elif op == "health":
                health = self.engine.health()
                health["draining"] = self.draining
                health["disconnects"] = self.disconnects
                response = {"type": "health", "request_id": request_id,
                            "health": health}
            else:  # shutdown
                await self._send(writer, lock,
                                 {"type": "bye", "request_id": request_id})
                self.shutdown()
                return True
        except ReproError as exc:
            response = error_response(exc, request_id)
        await self._send(writer, lock, response)
        return False

    def _handle_register(self, message: Dict, request_id: str) -> Dict:
        relation_id = str(message.get("relation_id", ""))
        relation = relation_from_spec(message.get("relation"))
        version = self.engine.register(relation_id, relation)
        return {
            "type": "registered",
            "request_id": request_id,
            "relation_id": relation_id,
            "version": version,
            "n_entries": len(relation),
        }

    async def _handle_probe(self, message: Dict, request_id: str,
                            writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        trace_id = str(message.get("trace_id", ""))
        token = CancelToken()
        self._cancel_tokens.add(token)
        try:
            request = self._probe_request(message, trace_id)
            request.cancel = token

            async def emit(chunk: Dict) -> None:
                # Strict: a failed chunk write must abort the request —
                # the client is gone, so finishing the remaining morsels
                # would burn the admission slot for nobody.
                await self._send(writer, lock, {
                    "type": "chunk", "request_id": request_id,
                    "trace_id": chunk.pop("trace_id", trace_id), **chunk},
                    strict=True)

            outcome = await self.engine.probe(request, emit=emit)
        except (ConnectionResetError, BrokenPipeError):
            # Mid-stream disconnect: the emit failure already unwound the
            # morsel loop and released the admission slot; nothing can be
            # sent back, so just account for it.
            self.disconnects += 1
            token.cancel("client disconnected")
            return
        except ReproError as exc:
            await self._send(writer, lock,
                             error_response(exc, request_id, trace_id))
            return
        finally:
            self._cancel_tokens.discard(token)
        result = outcome.result
        if self.trace_path is not None:
            append_results_jsonl([result], self.trace_path)
            self.traced_results += 1
        await self._send(writer, lock, {
            "type": "result",
            "request_id": request_id,
            "trace_id": result.meta.get("trace_id", trace_id),
            "cache_hit": bool(result.meta.get("cache_hit")),
            "n_chunks": len(outcome.chunks),
            "result": result_to_dict(result),
        })

    def _probe_request(self, message: Dict, trace_id: str) -> ProbeRequest:
        probe = relation_from_spec(message.get("probe"))
        version = message.get("version")
        if version is not None:
            version = int(version)
        morsel_tuples = message.get("morsel_tuples")
        if morsel_tuples is not None:
            morsel_tuples = int(morsel_tuples)
        faults = message.get("faults")
        plan = plan_from_dicts(faults) if faults else None
        deadline_ms = message.get("deadline_ms")
        if deadline_ms is not None:
            try:
                deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"deadline_ms must be a positive number, got "
                    f"{message.get('deadline_ms')!r}") from None
            if not deadline_ms > 0:
                raise ProtocolError(
                    f"deadline_ms must be a positive number, got "
                    f"{deadline_ms!r}", deadline_ms=deadline_ms)
        return ProbeRequest(
            relation_id=str(message.get("relation_id", "")),
            probe=probe,
            version=version,
            morsel_tuples=morsel_tuples,
            trace_id=trace_id,
            faults=plan,
            deadline_ms=deadline_ms,
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    message: Dict, strict: bool = False) -> None:
        """Write one response line; connection failures are swallowed
        unless ``strict`` (the chunk-emit path, which must abort)."""
        try:
            async with lock:
                writer.write(encode_message(message))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            if strict:
                raise
