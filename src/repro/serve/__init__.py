"""Join-as-a-service: the async daemon, its cache, and its clients.

The serving layer turns the one-shot join pipelines into a long-lived
service: build sides are registered once under ``(relation_id, version)``
keys, built hash tables stay hot in an LRU cache, and concurrent probe
requests stream morsel-sized answer chunks over a local NDJSON socket.
Answers are bit-identical to direct CLI runs — ``repro diff --served``
checks that contract across the full algorithm grid.
"""

from repro.serve.admission import AdmissionController
from repro.serve.cache import BuildCache, CachedBuild
from repro.serve.client import ProbeReply, ServeClient
from repro.serve.diff import served_differential
from repro.serve.engine import ProbeOutcome, ProbeRequest, ServeEngine
from repro.serve.protocol import PROTOCOL_VERSION, relation_from_spec
from repro.serve.server import ServeServer
from repro.serve.smoke import run_smoke

__all__ = [
    "AdmissionController",
    "BuildCache",
    "CachedBuild",
    "PROTOCOL_VERSION",
    "ProbeOutcome",
    "ProbeReply",
    "ProbeRequest",
    "ServeClient",
    "ServeEngine",
    "ServeServer",
    "relation_from_spec",
    "run_smoke",
    "served_differential",
]
