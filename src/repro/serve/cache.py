"""The hot build-side cache: LRU over built hash tables, single-flight.

The serving shape the paper's skew workloads induce — a few large,
heavy-hitter build relations probed over and over by many small requests
— makes the build phase the dominant repeated cost of a CLI-per-run
architecture.  :class:`BuildCache` amortizes it: built
:class:`~repro.cpu.chained_table.ChainedHashTable` instances are cached
under ``(relation_id, version)`` keys with LRU eviction (the same
bounded-recency pattern as the Zipf CDF table cache in
:mod:`repro.data.zipf`, but async-aware), and concurrent requests racing
on the same cold key share exactly one build via a per-key in-flight
future (single-flight).

Version discipline: re-registering a relation id bumps its version, so
stale cached builds are never *served* for a new version — they linger
only until LRU pressure or an explicit :meth:`invalidate` drops them,
and remain addressable by explicit version for in-flight clients.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError

#: Default bound on cached builds; each entry holds one built hash table.
DEFAULT_CACHE_ENTRIES = 8

#: Cache key: (relation_id, version).
CacheKey = Tuple[str, int]


@dataclass
class CachedBuild:
    """One cached build side: the table plus its provenance."""

    table: object
    relation_id: str
    version: int
    n_entries: int
    #: Simulated seconds the original build cost (what a warm hit saves).
    build_seconds: float = 0.0
    #: How many probes this entry has served since it was built.
    served: int = 0
    extra: Dict[str, object] = field(default_factory=dict)


class BuildCache:
    """LRU-bounded, single-flight cache of built hash tables."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES):
        if max_entries <= 0:
            raise ConfigError(
                f"cache must allow at least one entry, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[CacheKey, CachedBuild]" = OrderedDict()
        self._building: Dict[CacheKey, "asyncio.Future[CachedBuild]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.builds = 0
        #: Requests that piggybacked on another request's in-flight build.
        self.build_waits = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: CacheKey) -> Optional[CachedBuild]:
        """The cached entry without touching recency or counters."""
        return self._entries.get(key)

    def keys(self) -> Tuple[CacheKey, ...]:
        """Cached keys, least-recently-used first."""
        return tuple(self._entries)

    async def get_or_build(
        self,
        key: CacheKey,
        builder: Callable[[], "CachedBuild | Awaitable[CachedBuild]"],
    ) -> Tuple[CachedBuild, bool, bool]:
        """Return ``(entry, cache_hit, build_shared)`` for one key.

        * warm hit — the entry exists: recency refreshed, hit counted.
        * cold build — this caller runs ``builder`` (sync or async); the
          in-flight future is installed *before* the first await, so any
          concurrent request on the same key finds it and waits instead
          of building again.
        * shared build — another request's build was in flight: await it.
          Counted as a miss (the build phase still ran for this answer),
          with ``build_shared`` True.

        A failed build propagates its exception to every waiter and
        leaves the key uncached, so the next request retries cleanly.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry, True, False
        inflight = self._building.get(key)
        if inflight is not None:
            self.misses += 1
            self.build_waits += 1
            entry = await asyncio.shield(inflight)
            return entry, False, True
        self.misses += 1
        future: "asyncio.Future[CachedBuild]" = (
            asyncio.get_running_loop().create_future())
        self._building[key] = future
        try:
            # Yield once so overlapping cold requests can observe the
            # in-flight future before the (synchronous) build starts.
            await asyncio.sleep(0)
            entry = builder()
            if asyncio.iscoroutine(entry):
                entry = await entry
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved; waiters re-raise their copy
            raise
        else:
            self.builds += 1
            future.set_result(entry)
            self._insert(key, entry)
            return entry, False, False
        finally:
            del self._building[key]

    def _insert(self, key: CacheKey, entry: CachedBuild) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, relation_id: str,
                   version: Optional[int] = None) -> int:
        """Drop cached builds of one relation (one version, or all).

        Returns the number of entries dropped.  In-flight builds are not
        cancelled — their requesters still get their answer, and the
        completed entry lands in the cache afterwards subject to normal
        LRU; callers that must not serve it again (the engine, after a
        version bump) invalidate the specific stale version.
        """
        dropped = [key for key in self._entries
                   if key[0] == relation_id
                   and (version is None or key[1] == version)]
        for key in dropped:
            del self._entries[key]
        if dropped:
            self.invalidations += len(dropped)
        return len(dropped)

    def info(self) -> Dict[str, int]:
        """Counter snapshot (stats op, tests, the smoke harness)."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_waits": self.build_waits,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
