"""The hot build-side cache: LRU over built hash tables, single-flight.

The serving shape the paper's skew workloads induce — a few large,
heavy-hitter build relations probed over and over by many small requests
— makes the build phase the dominant repeated cost of a CLI-per-run
architecture.  :class:`BuildCache` amortizes it: built
:class:`~repro.cpu.chained_table.ChainedHashTable` instances are cached
under ``(relation_id, version)`` keys with LRU eviction (the same
bounded-recency pattern as the Zipf CDF table cache in
:mod:`repro.data.zipf`, but async-aware), and concurrent requests racing
on the same cold key share exactly one build via a per-key in-flight
future (single-flight).

Version discipline: re-registering a relation id bumps its version, so
stale cached builds are never *served* for a new version — they linger
only until LRU pressure or an explicit :meth:`invalidate` drops them,
and remain addressable by explicit version for in-flight clients.

The cache also carries a per-key **circuit breaker**: after
``circuit_threshold`` *consecutive* cold-build failures the circuit
opens and further probes of the key shed immediately with a typed
:class:`~repro.errors.CircuitOpen` — no build attempted, no slot burned
— until ``circuit_reset_seconds`` have passed, at which point exactly
one trial request is admitted (half-open).  A successful trial closes
the circuit; a failed one re-opens it.  Deadline expiry and cooperative
cancellation do **not** count as build failures (they say nothing about
the build's health), and single-flight waiters whose leader abandoned
its build for such a reason simply retry — one of them becomes the next
leader — so a doomed leader never strands its waiters.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro.errors import (
    CircuitOpen,
    ConfigError,
    DeadlineExceeded,
    RequestCancelled,
)

#: Default bound on cached builds; each entry holds one built hash table.
DEFAULT_CACHE_ENTRIES = 8

#: Consecutive cold-build failures that open a key's circuit.
DEFAULT_CIRCUIT_THRESHOLD = 3

#: Seconds an open circuit waits before admitting a half-open trial.
DEFAULT_CIRCUIT_RESET_SECONDS = 30.0

#: Cache key: (relation_id, version).
CacheKey = Tuple[str, int]


@dataclass
class CachedBuild:
    """One cached build side: the table plus its provenance."""

    table: object
    relation_id: str
    version: int
    n_entries: int
    #: Simulated seconds the original build cost (what a warm hit saves).
    build_seconds: float = 0.0
    #: How many probes this entry has served since it was built.
    served: int = 0
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class _CircuitState:
    """Per-key breaker state; absent == closed with zero failures."""

    failures: int = 0
    opened_at: Optional[float] = None
    #: True while a half-open trial build is in flight.
    trial: bool = False

    def state_name(self, now: float, reset_seconds: float) -> str:
        if self.opened_at is None:
            return "closed"
        if self.trial or now - self.opened_at >= reset_seconds:
            return "half-open"
        return "open"


class BuildCache:
    """LRU-bounded, single-flight, circuit-breaking cache of builds."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES,
                 circuit_threshold: int = DEFAULT_CIRCUIT_THRESHOLD,
                 circuit_reset_seconds: float = DEFAULT_CIRCUIT_RESET_SECONDS,
                 clock: Callable[[], float] = time.monotonic):
        if max_entries <= 0:
            raise ConfigError(
                f"cache must allow at least one entry, got {max_entries}")
        if circuit_threshold <= 0:
            raise ConfigError(
                f"circuit_threshold must be positive, got {circuit_threshold}")
        if circuit_reset_seconds < 0:
            raise ConfigError(
                f"circuit_reset_seconds must be >= 0, got "
                f"{circuit_reset_seconds}")
        self.max_entries = int(max_entries)
        self.circuit_threshold = int(circuit_threshold)
        self.circuit_reset_seconds = float(circuit_reset_seconds)
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, CachedBuild]" = OrderedDict()
        self._building: Dict[CacheKey, "asyncio.Future[CachedBuild]"] = {}
        self._circuit: Dict[CacheKey, _CircuitState] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.builds = 0
        #: Requests that piggybacked on another request's in-flight build.
        self.build_waits = 0
        self.invalidations = 0
        self.circuit_opens = 0
        self.circuit_closes = 0
        #: Requests shed fast because a key's circuit was open.
        self.circuit_shed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, key: CacheKey) -> Optional[CachedBuild]:
        """The cached entry without touching recency or counters."""
        return self._entries.get(key)

    def keys(self) -> Tuple[CacheKey, ...]:
        """Cached keys, least-recently-used first."""
        return tuple(self._entries)

    # ------------------------------------------------------------------
    # circuit breaker

    def _circuit_precheck(self, key: CacheKey) -> None:
        """Shed fast (typed) when the key's circuit is open.

        In the half-open window exactly one caller passes as the trial
        leader; everyone else keeps shedding until the trial resolves.
        """
        state = self._circuit.get(key)
        if state is None or state.opened_at is None:
            return
        elapsed = self._clock() - state.opened_at
        if elapsed >= self.circuit_reset_seconds and not state.trial:
            state.trial = True  # this caller runs the half-open trial
            return
        retry_in = max(0.0, self.circuit_reset_seconds - elapsed)
        self.circuit_shed += 1
        raise CircuitOpen(
            f"build circuit open for {key[0]!r} v{key[1]} after "
            f"{state.failures} consecutive failure(s)",
            relation_id=key[0], version=key[1],
            failures=state.failures,
            retry_in_seconds=round(retry_in, 3))

    def _circuit_failure(self, key: CacheKey) -> None:
        state = self._circuit.setdefault(key, _CircuitState())
        state.failures += 1
        was_open = state.opened_at is not None
        if state.trial or (not was_open
                           and state.failures >= self.circuit_threshold):
            # Threshold reached, or a half-open trial failed: (re)open.
            state.opened_at = self._clock()
            state.trial = False
            self.circuit_opens += 1

    def _circuit_success(self, key: CacheKey) -> None:
        state = self._circuit.pop(key, None)
        if state is not None and state.opened_at is not None:
            self.circuit_closes += 1

    def circuits(self) -> Dict[str, Dict[str, object]]:
        """Breaker snapshot keyed ``relation@version`` (health verb)."""
        now = self._clock()
        out: Dict[str, Dict[str, object]] = {}
        for key, state in self._circuit.items():
            out[f"{key[0]}@{key[1]}"] = {
                "state": state.state_name(now, self.circuit_reset_seconds),
                "failures": state.failures,
                "retry_in_seconds": (
                    round(max(0.0, self.circuit_reset_seconds
                              - (now - state.opened_at)), 3)
                    if state.opened_at is not None else 0.0),
            }
        return out

    def open_circuits(self) -> int:
        """How many keys are currently open or half-open."""
        return sum(1 for state in self._circuit.values()
                   if state.opened_at is not None)

    # ------------------------------------------------------------------

    async def get_or_build(
        self,
        key: CacheKey,
        builder: Callable[[], "CachedBuild | Awaitable[CachedBuild]"],
    ) -> Tuple[CachedBuild, bool, bool]:
        """Return ``(entry, cache_hit, build_shared)`` for one key.

        * warm hit — the entry exists: recency refreshed, hit counted.
        * cold build — this caller runs ``builder`` (sync or async); the
          in-flight future is installed *before* the first await, so any
          concurrent request on the same key finds it and waits instead
          of building again.  An open circuit sheds the request with a
          typed :class:`~repro.errors.CircuitOpen` before any work.
        * shared build — another request's build was in flight: await it.
          Counted as a miss (the build phase still ran for this answer),
          with ``build_shared`` True.

        A failed build propagates its exception to every waiter and
        leaves the key uncached — unless the leader merely hit *its own*
        deadline or cancellation, in which case waiters loop and one of
        them becomes the new leader (never stranded, never wrongly
        cancelled by someone else's budget).
        """
        while True:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry, True, False
            inflight = self._building.get(key)
            if inflight is not None:
                self.misses += 1
                self.build_waits += 1
                try:
                    entry = await asyncio.shield(inflight)
                except (DeadlineExceeded, RequestCancelled):
                    # The leader's own budget died, not the build: retry
                    # (this waiter may become the next leader).
                    continue
                except asyncio.CancelledError:
                    if inflight.done() and (inflight.cancelled()
                                            or inflight.exception()
                                            is not None):
                        continue  # leader abandoned; retry
                    raise  # the waiter itself was cancelled
                return entry, False, True
            self._circuit_precheck(key)
            self.misses += 1
            break
        future: "asyncio.Future[CachedBuild]" = (
            asyncio.get_running_loop().create_future())
        self._building[key] = future
        try:
            # Yield once so overlapping cold requests can observe the
            # in-flight future before the (synchronous) build starts.
            await asyncio.sleep(0)
            entry = builder()
            if asyncio.iscoroutine(entry):
                entry = await entry
        except (DeadlineExceeded, RequestCancelled,
                asyncio.CancelledError) as exc:
            # The leader's budget/cancellation, not a build defect: no
            # circuit penalty; waiters observe it and re-elect a leader.
            future.set_exception(exc)
            future.exception()  # mark retrieved; waiters re-raise a copy
            raise
        except BaseException as exc:
            self._circuit_failure(key)
            future.set_exception(exc)
            future.exception()  # mark retrieved; waiters re-raise their copy
            raise
        else:
            self.builds += 1
            self._circuit_success(key)
            future.set_result(entry)
            self._insert(key, entry)
            return entry, False, False
        finally:
            del self._building[key]

    def _insert(self, key: CacheKey, entry: CachedBuild) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, relation_id: str,
                   version: Optional[int] = None) -> int:
        """Drop cached builds of one relation (one version, or all).

        Returns the number of entries dropped.  In-flight builds are not
        cancelled — their requesters still get their answer, and the
        completed entry lands in the cache afterwards subject to normal
        LRU; callers that must not serve it again (the engine, after a
        version bump) invalidate the specific stale version.  Circuit
        state for the dropped key(s) is cleared too: new data deserves a
        fresh verdict.
        """
        dropped = [key for key in self._entries
                   if key[0] == relation_id
                   and (version is None or key[1] == version)]
        for key in dropped:
            del self._entries[key]
        for key in [k for k in self._circuit
                    if k[0] == relation_id
                    and (version is None or k[1] == version)]:
            del self._circuit[key]
        if dropped:
            self.invalidations += len(dropped)
        return len(dropped)

    def info(self) -> Dict[str, int]:
        """Counter snapshot (stats op, tests, the smoke harness)."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_waits": self.build_waits,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "circuit_opens": self.circuit_opens,
            "circuit_closes": self.circuit_closes,
            "circuit_shed": self.circuit_shed,
            "open_circuits": self.open_circuits(),
        }
