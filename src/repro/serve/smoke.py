"""End-to-end smoke scenario for the join service (the serve-smoke CI job).

One call to :func:`run_smoke` boots a real daemon on a loopback socket
and drives the full serving contract through an actual client
connection:

1. **overlapping cold probes** — two concurrent requests race on the
   same cold cache key; the build must run exactly once (single flight)
   and both answers must be identical;
2. **warm cache hit** — a third probe must skip the build phase (no
   ``build`` span, ``serve.cache_hit == 1``) and stream the exact same
   chunks;
3. **bit-identity** — the served answer must match a direct in-process
   pipeline run on the same seeded relations;
4. **fault surface** — a recovered injected crash changes nothing about
   the answer; an unrecoverable one comes back as a typed error, not a
   dead connection;
5. **admission** — an over-budget probe is refused with a typed
   :class:`~repro.errors.AdmissionError` payload;
6. **artifact** — the server's JSONL trace file reloads into full
   :class:`~repro.exec.result.JoinResult` records, one per completed
   probe.

Exit status 0 means every check passed; failures are listed on stdout.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.data.relation import JoinInput
from repro.exec.serialize import results_from_jsonl_file
from repro.serve.admission import AdmissionController
from repro.serve.client import ServeClient
from repro.serve.engine import ServeEngine
from repro.serve.protocol import relation_from_spec
from repro.serve.server import ServeServer

def _smoke_max_morsels(n: int) -> int:
    """Morsel budget of the smoke server: roomy for default-sized probes,
    but half of what a 64-tuple morsel probe of ``n`` tuples needs — so
    check 5 can exceed it with a legitimate relation size, whatever
    ``n`` the run uses (n >= 128)."""
    return max(1, (n // 64) // 2)


class SmokeChecks:
    """Ordered pass/fail ledger the scenario appends to."""

    #: Harness name used in the rendered summary line.
    label = "serve smoke"

    def __init__(self):
        self.checks: List[Tuple[str, bool, str]] = []

    def record(self, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append((name, bool(ok), detail))
        return bool(ok)

    def equal(self, name: str, got, want) -> bool:
        return self.record(name, got == want, f"got {got!r}, want {want!r}")

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def render(self) -> str:
        lines = []
        for name, ok, detail in self.checks:
            status = "ok  " if ok else "FAIL"
            suffix = f"  ({detail})" if detail and not ok else ""
            lines.append(f"  {status}  {name}{suffix}")
        n_bad = sum(1 for _, ok, _ in self.checks if not ok)
        lines.append("")
        if n_bad:
            lines.append(f"{self.label}: {n_bad}/{len(self.checks)} "
                         "check(s) FAILED")
        else:
            lines.append(f"{self.label}: all {len(self.checks)} "
                         "checks passed")
        return "\n".join(lines)


def _build_spec(n: int, theta: float, seed: int) -> Dict:
    return {"generator": "zipf", "n": n, "theta": theta, "seed": seed,
            "side": "r"}


def _probe_spec(n: int, theta: float, seed: int) -> Dict:
    return {"generator": "zipf", "n": n, "theta": theta, "seed": seed,
            "side": "s"}


async def _scenario(checks: SmokeChecks, n: int, theta: float, seed: int,
                    trace_path: Optional[Path]) -> None:
    engine = ServeEngine(
        admission=AdmissionController(max_morsels=_smoke_max_morsels(n)))
    server = ServeServer(engine=engine, trace_path=trace_path)
    await server.start()
    serve_loop = asyncio.ensure_future(server.serve_until_shutdown())
    client = ServeClient(port=server.port)
    await client.connect()
    relation = "smoke"
    build_spec = _build_spec(n, theta, seed)
    probe_spec = _probe_spec(n, theta, seed)
    try:
        pong = await client.ping()
        checks.equal("ping answers pong", pong.get("type"), "pong")

        registered = await client.register(relation, build_spec)
        checks.equal("relation registers at version 1",
                     registered.get("version"), 1)

        # 1. Overlapping cold probes: single-flight build, identical answers.
        cold_a, cold_b = await asyncio.gather(
            client.probe(relation, probe_spec, trace_id="smoke-cold-a"),
            client.probe(relation, probe_spec, trace_id="smoke-cold-b"))
        checks.record("both overlapping cold probes answer",
                      cold_a.ok and cold_b.ok,
                      f"{cold_a.response.get('type')} / "
                      f"{cold_b.response.get('type')}")
        stats = await client.stats()
        checks.equal("overlapping cold probes build exactly once",
                     stats["cache"]["builds"], 1)
        checks.record(
            "one cold probe piggybacked on the in-flight build",
            stats["cache"]["build_waits"] == 1
            and not (cold_a.cache_hit or cold_b.cache_hit),
            f"build_waits={stats['cache']['build_waits']}")
        summary_a, summary_b = cold_a.summary, cold_b.summary
        checks.equal("overlapping answers are bit-identical",
                     summary_a, summary_b)
        cold = cold_a if not cold_a.result["meta"].get("build_shared") \
            else cold_b
        checks.equal("the building probe carries the build phase",
                     [p["name"] for p in cold.result["phases"]],
                     ["build", "probe"])

        # 2. Warm cache hit: no build span, cache-hit metric set.
        warm = await client.probe(relation, probe_spec,
                                  trace_id="smoke-warm")
        checks.record("warm probe is a cache hit", warm.cache_hit,
                      str(warm.response.get("type")))
        checks.equal("warm probe skips the build phase entirely",
                     [p["name"] for p in warm.result["phases"]], ["probe"])
        warm_metrics = warm.result["trace"]["metrics"]
        checks.equal("warm trace reports serve.cache_hit == 1",
                     warm_metrics.get("serve.cache_hit", {}).get("value"), 1)
        checks.record("warm trace reports no cache miss",
                      "serve.cache_miss" not in warm_metrics
                      or warm_metrics["serve.cache_miss"]["value"] == 0,
                      str(warm_metrics.get("serve.cache_miss")))
        checks.equal("warm answer matches the cold answer",
                     warm.summary, summary_a)
        strip = [
            {k: c[k] for k in ("index", "tuples", "count", "checksum")}
            for c in warm.chunks]
        strip_cold = [
            {k: c[k] for k in ("index", "tuples", "count", "checksum")}
            for c in cold_a.chunks]
        checks.equal("warm streamed chunks identical to cold",
                     strip, strip_cold)

        # 3. Bit-identity against a direct in-process pipeline run.
        direct = _direct_run(build_spec, probe_spec)
        checks.equal(
            "served answer bit-identical to a direct cbase run",
            summary_a, {"count": direct.output_count,
                        "checksum": direct.output_checksum})

        # 4a. Recovered injected fault: same answer, fault report attached.
        faulty = await client.probe(
            relation, probe_spec, trace_id="smoke-fault",
            faults=[{"kind": "worker-crash", "point": "task"}])
        checks.record("probe with an injected crash still answers",
                      faulty.ok, str(faulty.response.get("type")))
        if faulty.ok:
            checks.equal("recovered-fault answer is bit-identical",
                         faulty.summary, summary_a)
            reports = faulty.result.get("faults", [])
            checks.record(
                "recovered fault is reported on the result",
                len(reports) == 1 and reports[0].get("recovered") is True,
                str(reports))

        # 4b. Unrecoverable fault: typed error, connection survives.
        doomed = await client.probe(
            relation, probe_spec, trace_id="smoke-doomed",
            faults=[{"kind": "worker-crash", "point": "task", "repeat": 9}])
        checks.record(
            "exhausted retries surface as a typed error",
            (doomed.error or {}).get("kind") == "UnrecoveredFaultError",
            str(doomed.response.get("type")))
        checks.record(
            "the typed error carries the failure report",
            bool((doomed.error or {}).get("report", {}).get("retries")),
            str(doomed.error))

        # 5. Admission control: an over-budget probe is refused, typed.
        refused = await client.probe(relation, probe_spec, morsel_tuples=64,
                                     trace_id="smoke-refused")
        checks.record(
            "over-budget probe refused with AdmissionError",
            (refused.error or {}).get("kind") == "AdmissionError",
            str(refused.response.get("type")))
        checks.record("connection survives refusals and typed errors",
                      (await client.ping()).get("type") == "pong")

        # 6. Unknown relation: typed ServeError.
        missing = await client.probe("no-such-relation", probe_spec)
        checks.record(
            "unknown relation answers a typed ServeError",
            (missing.error or {}).get("kind") == "ServeError",
            str(missing.response.get("type")))

        stats = await client.stats()
        checks.equal("stats counts the completed probes",
                     stats["completed"], 4)
        checks.record("stats counts cache hits",
                      stats["cache"]["hits"] >= 3,
                      str(stats["cache"]))
        bye = await client.shutdown()
        checks.equal("shutdown answers bye", bye.get("type"), "bye")
    finally:
        await client.close()
        await server.close()
        await serve_loop

    if trace_path is not None:
        loaded = results_from_jsonl_file(trace_path)
        checks.equal("JSONL trace artifact holds one line per answer",
                     len(loaded), 4)
        checks.record(
            "trace artifact lines reload as full results with traces",
            all(r.trace is not None and r.meta.get("served")
                for r in loaded),
            str([r.algorithm for r in loaded]))


def _direct_run(build_spec: Dict, probe_spec: Dict):
    from repro.api import make_join

    join_input = JoinInput(r=relation_from_spec(build_spec),
                           s=relation_from_spec(probe_spec),
                           meta={"generator": "smoke"})
    return make_join("cbase").run(join_input)


def run_smoke(n: int = 4096, theta: float = 1.0, seed: int = 42,
              trace_out: Optional[Union[str, Path]] = None,
              quiet: bool = False) -> int:
    """Run the scenario; returns a process exit code (0 = all green)."""
    checks = SmokeChecks()
    trace_path = Path(trace_out) if trace_out else None
    if trace_path is not None and trace_path.exists():
        trace_path.unlink()
    try:
        asyncio.run(_scenario(checks, n, theta, seed, trace_path))
    except Exception as exc:  # noqa: BLE001 - smoke must report, not crash
        checks.record("scenario ran to completion", False,
                      f"{type(exc).__name__}: {exc}")
    else:
        checks.record("scenario ran to completion", True)
    if not quiet:
        print("serve smoke — daemon + client over a loopback socket")
        print(checks.render())
    return 0 if checks.ok else 1
