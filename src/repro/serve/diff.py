"""The served-vs-direct differential leg.

The serving data plane (cached build, morsel-streamed probe) must give
bit-identical join answers to a one-shot CLI run — that is the
correctness contract ``repro diff --served`` checks continuously.  For
each dataset this module registers the build side with an in-process
:class:`~repro.serve.engine.ServeEngine`, probes it twice (cold, then
warm), and diffs the served answer against every direct pipeline run of
the algorithm grid.  Join answers are algorithm-independent (count plus
order-independent checksum), so one served answer per dataset checks
against all five algorithms.

Beyond the answer itself, the structural serving contract is asserted:

* the cold probe carries a ``build`` phase, the warm one does not;
* the warm trace reports ``serve.cache_hit == 1`` (and no miss), the
  cold trace the opposite;
* cold and warm streamed chunks are identical, and recombine to exactly
  the result summary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.data.relation import JoinInput
from repro.exec.backend import current_backend
from repro.exec.differential import (
    DifferentialReport,
    default_datasets,
    summary_mismatches,
)
from repro.exec.result import JoinResult
from repro.serve.engine import ProbeRequest, ServeEngine


def serve_structural_mismatches(cold: JoinResult, warm: JoinResult,
                                cold_chunks: Sequence[Dict],
                                warm_chunks: Sequence[Dict]) -> List[str]:
    """Violations of the cold/warm serving contract (empty when clean)."""
    issues: List[str] = []
    cold_phases = [p.name for p in cold.phases]
    warm_phases = [p.name for p in warm.phases]
    if cold_phases != ["build", "probe"]:
        issues.append(f"cold probe phases: {cold_phases} != "
                      "['build', 'probe']")
    if warm_phases != ["probe"]:
        issues.append(f"warm probe phases: {warm_phases} != ['probe'] "
                      "(a warm hit must skip the build entirely)")
    if cold.trace is not None:
        if cold.trace.metric_value("serve.cache_miss", 0) != 1:
            issues.append("cold probe trace lacks serve.cache_miss == 1")
        if cold.trace.metric_value("serve.cache_hit", 0) != 0:
            issues.append("cold probe trace reports a cache hit")
    else:
        issues.append("cold probe result carries no trace")
    if warm.trace is not None:
        if warm.trace.metric_value("serve.cache_hit", 0) != 1:
            issues.append("warm probe trace lacks serve.cache_hit == 1")
        if warm.trace.metric_value("serve.cache_miss", 0) != 0:
            issues.append("warm probe trace reports a cache miss")
    else:
        issues.append("warm probe result carries no trace")
    if not warm.meta.get("cache_hit"):
        issues.append("warm probe meta lacks cache_hit")
    strip = [{k: c[k] for k in ("index", "tuples", "count", "checksum")}
             for c in cold_chunks]
    strip_warm = [{k: c[k] for k in ("index", "tuples", "count", "checksum")}
                  for c in warm_chunks]
    if strip != strip_warm:
        issues.append(
            f"streamed chunks differ cold vs warm "
            f"({len(cold_chunks)} vs {len(warm_chunks)} chunks)")
    for result, chunks, label in ((cold, cold_chunks, "cold"),
                                  (warm, warm_chunks, "warm")):
        count = sum(c["count"] for c in chunks)
        checksum = sum(c["checksum"] for c in chunks) % (1 << 64)
        issues.extend(summary_mismatches(result, count, checksum,
                                         label=f"{label} chunks"))
    return issues


def served_differential(
    n: int = 2048,
    seed: int = 42,
    algorithms: Optional[Iterable[str]] = None,
    datasets: Optional[Dict[str, JoinInput]] = None,
    morsel_tuples: int = 256,
) -> List[DifferentialReport]:
    """Diff served answers against direct pipeline runs, per dataset.

    Returns one :class:`DifferentialReport` per (algorithm, dataset)
    cell plus one ``serve-structure`` report per dataset, rendered by the
    same :func:`~repro.exec.differential.render_differential` grid the
    backend leg uses.
    """
    from repro.api import ALGORITHMS, make_join

    algorithms = sorted(ALGORITHMS) if algorithms is None else list(algorithms)
    datasets = default_datasets(n, seed) if datasets is None else datasets
    backend = current_backend()
    reports: List[DifferentialReport] = []
    for ds_name, join_input in datasets.items():
        engine = ServeEngine()
        relation_id = f"diff-{ds_name}"
        engine.register(relation_id, join_input.r)

        def request() -> ProbeRequest:
            return ProbeRequest(relation_id=relation_id, probe=join_input.s,
                                morsel_tuples=morsel_tuples)

        cold = engine.probe_sync(request())
        warm = engine.probe_sync(request())
        structure = serve_structural_mismatches(
            cold.result, warm.result, cold.chunks, warm.chunks)
        reports.append(DifferentialReport(
            algorithm="serve-structure", dataset=ds_name,
            backends=("served-cold", "served-warm"),
            mismatches=structure, output_count=cold.result.output_count))
        for algo in algorithms:
            direct = make_join(algo).run(join_input)
            mismatches = summary_mismatches(
                direct, cold.result.output_count,
                cold.result.output_checksum, label="served")
            reports.append(DifferentialReport(
                algorithm=algo, dataset=ds_name,
                backends=(backend, "served"),
                mismatches=mismatches, output_count=direct.output_count))
    return reports
