"""Async client for the join service.

:class:`ServeClient` multiplexes any number of concurrent requests over
one connection: a background reader task routes each response line to
the request that asked for it (by ``request_id``), so overlapping probes
— the serving scenario the daemon exists for — need no connection pool.

Ops mirror the protocol: :meth:`register`, :meth:`probe` (returns a
:class:`ProbeReply` carrying the streamed chunks plus the final
``result`` or typed ``error`` line; an optional ``deadline_ms`` rides
along on the request), :meth:`stats`, :meth:`invalidate`, :meth:`ping`,
:meth:`health`, :meth:`shutdown`.  Error responses are returned, not
raised — callers inspect :attr:`ProbeReply.error` (the smoke and chaos
harnesses assert on the typed payloads directly).
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.serve.protocol import PROTOCOL_VERSION, decode_message, encode_message
from repro.serve.server import DEFAULT_HOST


@dataclass
class ProbeReply:
    """Everything one probe request streamed back."""

    chunks: List[Dict] = field(default_factory=list)
    response: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.response.get("type") == "result"

    @property
    def error(self) -> Optional[Dict]:
        """The typed error payload, when the request failed."""
        if self.response.get("type") == "error":
            return self.response.get("error")
        return None

    @property
    def result(self) -> Optional[Dict]:
        """The serialized :class:`~repro.exec.result.JoinResult` dict."""
        return self.response.get("result")

    @property
    def cache_hit(self) -> bool:
        return bool(self.response.get("cache_hit"))

    @property
    def summary(self) -> Dict[str, int]:
        """The streamed answer, recombined from chunks (order-free sums)."""
        count = sum(c.get("count", 0) for c in self.chunks)
        checksum = sum(c.get("checksum", 0) for c in self.chunks) % (1 << 64)
        return {"count": count, "checksum": checksum}


class ServeClient:
    """One connection to the daemon; safe for concurrent requests."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = 0):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._recv_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, asyncio.Queue] = {}
        self._write_lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._recv_task = asyncio.ensure_future(self._recv_loop())
        return self

    async def close(self) -> None:
        self._closed = True
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------

    async def _recv_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ProtocolError:
                    continue
                queue = self._pending.get(str(message.get("request_id", "")))
                if queue is not None:
                    queue.put_nowait(message)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Connection gone: unblock every waiter with a typed error.
            for queue in self._pending.values():
                queue.put_nowait({
                    "type": "error",
                    "error": {"kind": "ConnectionClosed",
                              "message": "server closed the connection"},
                })

    async def _send(self, message: Dict) -> None:
        async with self._write_lock:
            self._writer.write(encode_message(message))
            await self._writer.drain()

    async def _request(self, message: Dict) -> Dict:
        """Send one control request; await its single response line."""
        request_id = f"c{next(self._ids)}"
        message = {"request_id": request_id,
                   "protocol_version": PROTOCOL_VERSION, **message}
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        try:
            await self._send(message)
            return await queue.get()
        finally:
            del self._pending[request_id]

    # ------------------------------------------------------------------

    async def register(self, relation_id: str, relation_spec: Dict) -> Dict:
        return await self._request({"op": "register",
                                    "relation_id": relation_id,
                                    "relation": relation_spec})

    async def probe(
        self,
        relation_id: str,
        probe_spec: Dict,
        version: Optional[int] = None,
        morsel_tuples: Optional[int] = None,
        trace_id: str = "",
        faults: Optional[List[Dict]] = None,
        deadline_ms: Optional[float] = None,
    ) -> ProbeReply:
        """One probe request; collects streamed chunks until the final
        ``result`` (or ``error``) line arrives."""
        request_id = f"c{next(self._ids)}"
        message: Dict[str, object] = {
            "op": "probe",
            "request_id": request_id,
            "protocol_version": PROTOCOL_VERSION,
            "relation_id": relation_id,
            "probe": probe_spec,
        }
        if version is not None:
            message["version"] = version
        if morsel_tuples is not None:
            message["morsel_tuples"] = morsel_tuples
        if trace_id:
            message["trace_id"] = trace_id
        if faults:
            message["faults"] = faults
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[request_id] = queue
        reply = ProbeReply()
        try:
            await self._send(message)
            while True:
                response = await queue.get()
                if response.get("type") == "chunk":
                    reply.chunks.append(response)
                    continue
                reply.response = response
                return reply
        finally:
            del self._pending[request_id]

    async def raw(self, message: Dict) -> Dict:
        """Send an arbitrary request dict (protocol tests); one response."""
        return await self._request(message)

    async def stats(self) -> Dict:
        response = await self._request({"op": "stats"})
        return response.get("stats", response)

    async def invalidate(self, relation_id: str) -> Dict:
        return await self._request({"op": "invalidate",
                                    "relation_id": relation_id})

    async def ping(self) -> Dict:
        return await self._request({"op": "ping"})

    async def health(self) -> Dict:
        """The daemon's liveness snapshot (``serve.health.*`` metrics)."""
        response = await self._request({"op": "health"})
        return response.get("health", response)

    async def shutdown(self) -> Dict:
        return await self._request({"op": "shutdown"})
