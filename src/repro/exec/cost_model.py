"""Cost models that convert operation counters into simulated seconds.

The paper evaluates wall-clock time on a 2x Xeon E5-2640 v4 (20 threads
used) and an NVIDIA A100-PCIE-40GB.  Pure Python cannot reproduce those
absolute times, so this library measures *exact operation counts* (see
:mod:`repro.exec.counters`) and prices them with the models below.

The constants are *effective* per-operation times under full parallel
contention, calibrated once against the anchor points of Table I of the
paper and then frozen (see ``benchmarks/bench_table1.py`` for the
paper-vs-model comparison).  Only the relative shape of results — which
algorithm wins, by roughly what factor, and where crossovers fall — is a
claim of this reproduction; absolute seconds are not.

Key calibration anchors (zipf 1.0, 32 M x 32 M tuples):

* Cbase join 7593 s   ~= 3.2e12 output pairs of the hottest key processed
  by a single thread at ~2.4 ns per (chain step + compare + output write).
* CSH sample+partition 941 s ~= 5.2e12 skewed pairs spread evenly over 20
  threads at ~3.6 ns per (sequential R read + output write).
* Gbase join 643 s    ~= the hottest partition's sub-list blocks paying an
  atomic + sync-amortized cost per pair.
* GSH "all other" 54.5 s ~= bandwidth-bound skew kernel moving ~12 bytes
  per pair at near-peak device bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.exec.counters import OpCounters

_NS = 1e-9


@dataclass(frozen=True)
class CPUCostModel:
    """Effective per-operation costs for one CPU worker thread.

    All values are nanoseconds per operation, calibrated under 20-thread
    memory-bandwidth contention on the paper's machine (DDR4-2133).
    """

    hash_ns: float = 2.0
    insert_ns: float = 4.0
    chain_step_ns: float = 1.0
    compare_ns: float = 0.5
    tuple_move_ns: float = 18.0
    seq_read_ns: float = 2.0
    output_write_ns: float = 1.0
    sample_ns: float = 8.0
    random_access_ns: float = 150.0
    #: Fixed cost per task dispatched through a task queue (dequeue + setup).
    task_overhead_ns: float = 2000.0

    def seconds(self, counters: OpCounters) -> float:
        """Price one worker's operation counts in seconds."""
        return _NS * (
            counters.hash_ops * self.hash_ns
            + counters.table_inserts * self.insert_ns
            + counters.chain_steps * self.chain_step_ns
            + counters.key_compares * self.compare_ns
            + counters.tuple_moves * self.tuple_move_ns
            + counters.seq_tuple_reads * self.seq_read_ns
            + counters.output_tuples * self.output_write_ns
            + counters.sample_ops * self.sample_ns
            + counters.random_accesses * self.random_access_ns
        )

    def task_seconds(self, counters: OpCounters) -> float:
        """Like :meth:`seconds` plus the fixed per-task dispatch overhead."""
        return self.seconds(counters) + self.task_overhead_ns * _NS


@dataclass(frozen=True)
class GPUCostModel:
    """Effective per-operation costs for one GPU thread block.

    Bulk traffic is priced against the device bandwidth (scaled by
    ``bandwidth_efficiency``); latency-bound operations (chain walks,
    atomics, block barriers) carry per-operation costs that already
    account for warp-level latency hiding.
    """

    #: Device aggregate memory bandwidth in bytes/second (A100: 1555 GB/s).
    device_bandwidth: float = 1.555e12
    #: Fraction of peak bandwidth bulk kernels achieve in practice.
    bandwidth_efficiency: float = 0.85
    #: Number of streaming multiprocessors sharing the bandwidth.
    sm_count: int = 108

    hash_ns: float = 0.3
    insert_ns: float = 1.5
    #: Per *lockstep* chain step of a block (rounds x longest chain), which
    #: is how divergence serializes the probe loop.
    chain_step_ns: float = 2.0
    compare_ns: float = 0.2
    #: Per write-intention atomic; the high value reflects contention of a
    #: whole block hammering the same bitmap words every chain step.
    atomic_ns: float = 16.0
    sync_ns: float = 30.0
    divergent_step_ns: float = 0.05
    random_access_ns: float = 3.0
    sample_ns: float = 2.0
    #: Fixed cost per kernel launch, seconds.
    kernel_launch_s: float = 5e-6

    def __post_init__(self):
        if self.sm_count <= 0:
            raise ConfigError("sm_count must be positive")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ConfigError("bandwidth_efficiency must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        """Achievable aggregate bandwidth in bytes/second."""
        return self.device_bandwidth * self.bandwidth_efficiency

    @property
    def per_sm_bandwidth(self) -> float:
        """One SM's fair share of the achievable bandwidth."""
        return self.effective_bandwidth / self.sm_count

    def block_compute_seconds(self, counters: OpCounters) -> float:
        """Latency/compute cost of one block, excluding bulk traffic."""
        return _NS * (
            counters.hash_ops * self.hash_ns
            + counters.table_inserts * self.insert_ns
            + counters.chain_steps * self.chain_step_ns
            + counters.key_compares * self.compare_ns
            + counters.atomic_ops * self.atomic_ns
            + counters.sync_barriers * self.sync_ns
            + counters.divergent_steps * self.divergent_step_ns
            + counters.random_accesses * self.random_access_ns
            + counters.sample_ops * self.sample_ns
        )

    def block_memory_seconds(self, counters: OpCounters) -> float:
        """Bulk-traffic cost of one block at its fair bandwidth share."""
        bytes_moved = counters.bytes_read + counters.bytes_written
        return bytes_moved / self.per_sm_bandwidth

    def block_seconds(self, counters: OpCounters) -> float:
        """Total cost of one block: compute/latency plus bulk traffic."""
        return self.block_compute_seconds(counters) + self.block_memory_seconds(counters)


#: Default models frozen after calibration against Table I.
DEFAULT_CPU_COST_MODEL = CPUCostModel()
DEFAULT_GPU_COST_MODEL = GPUCostModel()


# ---------------------------------------------------------------------------
# correction hooks (the adaptive planner's learning substrate)
# ---------------------------------------------------------------------------

#: Multiplicative correction factors are clamped to this range.  A factor
#: outside it means the observation was degenerate (a microsecond phase
#: timed against scheduler noise, a zero prediction), not that the model
#: is off by three orders of magnitude.
CORRECTION_CLAMP = (1e-3, 1e3)

#: Default EWMA smoothing weight for newly observed wall/predicted ratios.
DEFAULT_CORRECTION_ALPHA = 0.3


def clamp_correction(factor: float) -> float:
    """Clamp one correction factor into :data:`CORRECTION_CLAMP`."""
    lo, hi = CORRECTION_CLAMP
    return min(max(float(factor), lo), hi)


def blend_correction(prior: float, observed_ratio: float,
                     alpha: float = DEFAULT_CORRECTION_ALPHA) -> float:
    """One EWMA step of a multiplicative correction factor.

    ``prior`` is the current factor, ``observed_ratio`` the latest
    realized-over-predicted wall ratio (predicted *before* correction).
    The blend is clamped so a single noisy observation cannot blow the
    factor out of :data:`CORRECTION_CLAMP`.
    """
    if not 0 < alpha <= 1:
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
    return clamp_correction(
        (1.0 - alpha) * prior + alpha * clamp_correction(observed_ratio))
