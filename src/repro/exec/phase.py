"""Phase timing helper.

Wraps the construction of :class:`repro.exec.result.PhaseResult` values so
pipelines can write::

    with PhaseTimer("partition") as timer:
        ...  # do the work, fill counters, compute makespan
        timer.finish(simulated_seconds=makespan, counters=total)
    result.phases.append(timer.result)
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import ExecutionError
from repro.exec.counters import OpCounters
from repro.exec.result import PhaseResult


class PhaseTimer:
    """Context manager that measures wall time for one pipeline phase."""

    def __init__(self, name: str):
        self.name = name
        self._start: Optional[float] = None
        self._wall: Optional[float] = None
        self._simulated: Optional[float] = None
        self._counters: OpCounters = OpCounters()
        self._task_count = 0
        self._details: Dict[str, float] = {}

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self._wall = time.perf_counter() - self._start
        if exc_type is None and self._simulated is None:
            raise ExecutionError(
                f"phase {self.name!r} exited without calling finish()"
            )

    def finish(
        self,
        simulated_seconds: float,
        counters: Optional[OpCounters] = None,
        task_count: int = 0,
        **details: float,
    ) -> None:
        """Record the phase outcome; must be called inside the ``with``."""
        if simulated_seconds < 0:
            raise ExecutionError(
                f"phase {self.name!r} reported negative simulated time"
            )
        self._simulated = simulated_seconds
        if counters is not None:
            self._counters = counters
        self._task_count = task_count
        self._details.update(details)

    @property
    def result(self) -> PhaseResult:
        """The completed PhaseResult."""
        if self._simulated is None or self._wall is None:
            raise ExecutionError(
                f"phase {self.name!r} queried before completion"
            )
        return PhaseResult(
            name=self.name,
            simulated_seconds=self._simulated,
            counters=self._counters,
            wall_seconds=self._wall,
            task_count=self._task_count,
            details=dict(self._details),
        )
