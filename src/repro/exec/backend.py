"""Execution-backend selection: ``scalar``, ``vector``, ``parallel``.

Every hot phase of the five join pipelines — radix scatter, chained-table
build/probe, the no-partition join's global probe, the GPU simulator's
block-cost evaluation, GSH's skew split — exists in functionally
identical renditions:

* ``vector`` (the default) — NumPy batch evaluation: ``np.bincount``
  histograms, cumulative-sum bases, single-pass fancy-index scatters, and
  group-wise sort/``searchsorted`` match expansion.  This is the fast path
  that keeps the Python executors bandwidth-bound instead of
  interpreter-bound.
* ``scalar`` — a literal per-tuple Python rendition of the paper's
  algorithms (tuple-at-a-time scatter loops, chain walks in lockstep).
  It is the executable specification: slow, obvious, and used by the
  differential harness to pin the vector path down to bit-identical
  outputs, :class:`~repro.exec.counters.OpCounters`, and phase structure.
* ``parallel`` — the vector phases executed morsel-by-morsel on a
  persistent multiprocessing worker pool over shared-memory arenas
  (:mod:`repro.exec.parallel`).  Phases without a dedicated parallel
  rendition — and hosts where shared memory is unusable — run the vector
  one; either way results stay bit-identical, only wall time changes.

Selection is ambient.  The process default comes from the
``REPRO_BACKEND`` environment variable (``vector`` when unset); tests and
the differential harness override it lexically with :func:`use_backend`::

    with use_backend("scalar"):
        result = join(workload, algorithm="csh")

Backend choice may never change *what* is computed — only how.  The
differential test matrix (``tests/test_backend_differential.py``) and the
hypothesis property suite enforce that invariant for every algorithm.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, TypeVar

from repro.errors import ConfigError

SCALAR = "scalar"
VECTOR = "vector"
PARALLEL = "parallel"

#: All selectable backends.
BACKENDS = (SCALAR, VECTOR, PARALLEL)

#: Environment variable holding the process-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

_DEFAULT = VECTOR

_override: ContextVar[Optional[str]] = ContextVar("repro_backend_override",
                                                  default=None)

_F = TypeVar("_F", bound=Callable)

#: One fallback warning per process keeps degraded sandboxes quiet.
_warned_fallback = False


def validate_backend(name: str) -> str:
    """Return ``name`` normalized, or raise a :class:`ConfigError`."""
    normalized = str(name).strip().lower()
    if normalized not in BACKENDS:
        raise ConfigError(
            f"unknown execution backend {name!r}; choose one of "
            f"{list(BACKENDS)} (set {BACKEND_ENV} or use "
            "repro.exec.backend.use_backend)",
            backend=str(name), valid=list(BACKENDS),
        )
    return normalized


def backend_from_env() -> str:
    """The process default backend from ``REPRO_BACKEND`` (else vector)."""
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if not raw:
        return _DEFAULT
    return validate_backend(raw)


def current_backend() -> str:
    """The backend in effect: the innermost override, else the env default."""
    override = _override.get()
    if override is not None:
        return override
    return backend_from_env()


def is_vector() -> bool:
    """True when a batch (NumPy) backend is selected.

    The parallel backend counts: every phase it does not explicitly
    parallelize runs the vector rendition, so two-way dispatch sites must
    take the vector branch under it.
    """
    return current_backend() != SCALAR


def parallel_status() -> "tuple[bool, Optional[str]]":
    """(usable, reason) for the parallel backend on this host (cached)."""
    from repro.exec.parallel import availability
    return availability()


def require_parallel() -> None:
    """Raise a typed :class:`ConfigError` when parallel cannot run here.

    The ambient fallback in :func:`dispatch` is deliberately graceful
    (warn once, run vector); callers that must not silently degrade —
    CI legs pinned to the parallel backend, for example — call this
    first to fail loudly instead.
    """
    usable, reason = parallel_status()
    if not usable:
        raise ConfigError(
            f"parallel backend unavailable on this host: {reason}; "
            f"set {BACKEND_ENV}=vector (or fix shared memory) and retry",
            backend=PARALLEL, reason=reason,
        )


def _fallback_to_vector(reason: Optional[str]) -> None:
    global _warned_fallback
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            f"parallel backend unavailable ({reason}); falling back to the "
            "vector backend for this process", RuntimeWarning, stacklevel=3)


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Select a backend for the duration of the block (re-entrant)."""
    backend = validate_backend(name)
    token = _override.set(backend)
    try:
        yield backend
    finally:
        _override.reset(token)


def dispatch(scalar_impl: _F, vector_impl: _F,
             parallel_impl: Optional[_F] = None) -> _F:
    """Pick the implementation matching the ambient backend.

    Two-argument call sites cover phases with no dedicated parallel
    rendition: under the parallel backend they receive ``vector_impl``.
    When parallel is selected but unusable on this host (no shared
    memory), the vector implementation is returned after a one-time
    warning — see :func:`require_parallel` for the strict variant.
    """
    backend = current_backend()
    if backend == SCALAR:
        return scalar_impl
    if backend == PARALLEL and parallel_impl is not None:
        usable, reason = parallel_status()
        if usable:
            return parallel_impl
        _fallback_to_vector(reason)
    return vector_impl
