"""Execution-backend selection: ``scalar`` vs ``vector`` hot paths.

Every hot phase of the five join pipelines — radix scatter, chained-table
build/probe, the no-partition join's global probe, the GPU simulator's
block-cost evaluation, GSH's skew split — exists in two functionally
identical renditions:

* ``vector`` (the default) — NumPy batch evaluation: ``np.bincount``
  histograms, cumulative-sum bases, single-pass fancy-index scatters, and
  group-wise sort/``searchsorted`` match expansion.  This is the fast path
  that keeps the Python executors bandwidth-bound instead of
  interpreter-bound.
* ``scalar`` — a literal per-tuple Python rendition of the paper's
  algorithms (tuple-at-a-time scatter loops, chain walks in lockstep).
  It is the executable specification: slow, obvious, and used by the
  differential harness to pin the vector path down to bit-identical
  outputs, :class:`~repro.exec.counters.OpCounters`, and phase structure.

Selection is ambient.  The process default comes from the
``REPRO_BACKEND`` environment variable (``vector`` when unset); tests and
the differential harness override it lexically with :func:`use_backend`::

    with use_backend("scalar"):
        result = join(workload, algorithm="csh")

Backend choice may never change *what* is computed — only how.  The
differential test matrix (``tests/test_backend_differential.py``) and the
hypothesis property suite enforce that invariant for every algorithm.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, TypeVar

from repro.errors import ConfigError

SCALAR = "scalar"
VECTOR = "vector"

#: All selectable backends.
BACKENDS = (SCALAR, VECTOR)

#: Environment variable holding the process-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

_DEFAULT = VECTOR

_override: ContextVar[Optional[str]] = ContextVar("repro_backend_override",
                                                  default=None)

_F = TypeVar("_F", bound=Callable)


def validate_backend(name: str) -> str:
    """Return ``name`` normalized, or raise a :class:`ConfigError`."""
    normalized = str(name).strip().lower()
    if normalized not in BACKENDS:
        raise ConfigError(
            f"unknown execution backend {name!r}; choose one of "
            f"{list(BACKENDS)} (set {BACKEND_ENV} or use "
            "repro.exec.backend.use_backend)",
            backend=str(name), valid=list(BACKENDS),
        )
    return normalized


def backend_from_env() -> str:
    """The process default backend from ``REPRO_BACKEND`` (else vector)."""
    raw = os.environ.get(BACKEND_ENV, "").strip()
    if not raw:
        return _DEFAULT
    return validate_backend(raw)


def current_backend() -> str:
    """The backend in effect: the innermost override, else the env default."""
    override = _override.get()
    if override is not None:
        return override
    return backend_from_env()


def is_vector() -> bool:
    """True when the vector (NumPy batch) backend is selected."""
    return current_backend() == VECTOR


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Select a backend for the duration of the block (re-entrant)."""
    backend = validate_backend(name)
    token = _override.set(backend)
    try:
        yield backend
    finally:
        _override.reset(token)


def dispatch(scalar_impl: _F, vector_impl: _F) -> _F:
    """Pick the implementation matching the ambient backend."""
    return vector_impl if is_vector() else scalar_impl
