"""Differential testing of the execution backends.

All backends (scalar, vector, parallel) are required to be
*observationally identical*: the same join output (count and checksum),
the same phase structure, the same operation counters phase by phase, and
the same simulated seconds.  Only wall time may differ — that is the
whole point of having fast backends.

This module runs one algorithm once per backend and diffs every result
against the first backend's, field by field.  :func:`differential_matrix`
sweeps the full algorithm x dataset grid the CI gate runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators import constant_key_input, uniform_input
from repro.data.relation import JoinInput, Relation
from repro.data.zipf import ZipfWorkload
from repro.exec.backend import BACKENDS, use_backend
from repro.exec.result import JoinResult

#: Meta keys allowed to differ between backends (the backend tag itself)
#: and between spilled and in-RAM runs (how a run met its memory budget
#: is environment, not answer — the join output must still be identical).
#: ``plan`` is the planner's bookkeeping: how a configuration was chosen
#: is environment too, and the plan-gate's bit-identity check relies on
#: planned-vs-forced runs comparing clean.
_BACKEND_ONLY_META = frozenset({
    "backend",
    "plan",
    "spilled_partitions",
    "spill_chunks",
    "spill_degraded",
    "resumed_pairs",
    "spill_invalid_chunks",
    # Peak RSS is a property of the process, not of the join answer:
    # it legitimately differs across backends and between out-of-core
    # and in-RAM runs of the same join.
    "peak_rss_bytes",
})

#: Relative tolerance for simulated seconds (float summation order may
#: differ across backends in principle; in practice both run the same
#: accumulation and agree exactly, so this is belt and braces).
_SIM_RTOL = 1e-9


def compare_results(a: JoinResult, b: JoinResult) -> List[str]:
    """Field-by-field mismatches between two runs (empty when identical).

    Wall-clock fields are excluded; everything observable — output, phase
    structure, counters, simulated time, metadata, fault reports — must
    match exactly.
    """
    issues: List[str] = []
    if a.algorithm != b.algorithm:
        issues.append(f"algorithm: {a.algorithm!r} != {b.algorithm!r}")
    if a.output_count != b.output_count:
        issues.append(
            f"output_count: {a.output_count} != {b.output_count}")
    if a.output_checksum != b.output_checksum:
        issues.append(
            f"output_checksum: {a.output_checksum} != {b.output_checksum}")
    names_a = [p.name for p in a.phases]
    names_b = [p.name for p in b.phases]
    if names_a != names_b:
        issues.append(f"phase structure: {names_a} != {names_b}")
    else:
        for pa, pb in zip(a.phases, b.phases):
            ca, cb = pa.counters.as_dict(), pb.counters.as_dict()
            if ca != cb:
                drift = {k: (ca[k], cb[k]) for k in ca if ca[k] != cb[k]}
                issues.append(f"phase {pa.name!r} counters differ: {drift}")
            if not np.isclose(pa.simulated_seconds, pb.simulated_seconds,
                              rtol=_SIM_RTOL, atol=0.0):
                issues.append(
                    f"phase {pa.name!r} simulated_seconds: "
                    f"{pa.simulated_seconds!r} != {pb.simulated_seconds!r}")
    meta_a = {k: v for k, v in a.meta.items() if k not in _BACKEND_ONLY_META}
    meta_b = {k: v for k, v in b.meta.items() if k not in _BACKEND_ONLY_META}
    if meta_a != meta_b:
        keys = set(meta_a) | set(meta_b)
        drift = {k: (meta_a.get(k), meta_b.get(k))
                 for k in sorted(keys) if meta_a.get(k) != meta_b.get(k)}
        issues.append(f"meta differs: {drift}")
    if len(a.faults) != len(b.faults):
        issues.append(f"fault reports: {len(a.faults)} != {len(b.faults)}")
    return issues


def summary_mismatches(reference: JoinResult, count: int,
                       checksum: int, label: str = "candidate") -> List[str]:
    """Mismatches between a result's output summary and a bare
    ``(count, checksum)`` pair (empty when identical).

    The serve layer's served-vs-direct leg compares streamed, cache-built
    answers against one-shot pipeline runs with this — the served side
    has a different phase structure by design (a warm hit has no build
    phase), so only the join answer itself is compared.
    """
    issues: List[str] = []
    if reference.output_count != count:
        issues.append(
            f"output_count: {reference.output_count} != {count} ({label})")
    if reference.output_checksum != checksum:
        issues.append(
            f"output_checksum: {reference.output_checksum:#x} != "
            f"{checksum:#x} ({label})")
    return issues


@dataclass
class DifferentialReport:
    """Outcome of one backend-vs-backend comparison."""

    algorithm: str
    dataset: str
    backends: Tuple[str, ...]
    mismatches: List[str] = field(default_factory=list)
    output_count: int = 0

    @property
    def ok(self) -> bool:
        """True when the backends were observationally identical."""
        return not self.mismatches


def run_differential(
    run: Callable[[], JoinResult],
    algorithm: str = "",
    dataset: str = "",
    backends: Sequence[str] = BACKENDS,
) -> DifferentialReport:
    """Execute ``run`` under each backend; diff each against the first."""
    if len(backends) < 2:
        raise ValueError("differential comparison needs >= 2 backends")
    backends = tuple(backends)
    reference_backend = backends[0]
    with use_backend(reference_backend):
        reference = run()
    mismatches: List[str] = []
    for other in backends[1:]:
        with use_backend(other):
            result = run()
        for issue in compare_results(reference, result):
            if len(backends) > 2:
                issue = f"[{reference_backend} vs {other}] {issue}"
            mismatches.append(issue)
    return DifferentialReport(
        algorithm=algorithm or reference.algorithm,
        dataset=dataset,
        backends=backends,
        mismatches=mismatches,
        output_count=reference.output_count,
    )


def default_datasets(n: int, seed: int = 42) -> Dict[str, JoinInput]:
    """The dataset grid the differential matrix covers.

    Heavy Zipf skew, uniform keys, a duplicates-only cartesian stressor,
    and an empty probe side — the shapes where scalar/vector divergence
    would hide.
    """
    empty = JoinInput(
        r=Relation(np.arange(max(n // 8, 1), dtype=np.uint32),
                   np.arange(max(n // 8, 1), dtype=np.uint32), name="R"),
        s=Relation(np.empty(0, dtype=np.uint32),
                   np.empty(0, dtype=np.uint32), name="S"),
        meta={"generator": "empty-s"},
    )
    return {
        "zipf-1.0": ZipfWorkload(n, n, theta=1.0, seed=seed).generate(),
        "uniform": uniform_input(n, n, seed=seed),
        "dup-only": constant_key_input(max(n // 8, 1), max(n // 8, 1),
                                       seed=seed),
        "empty-s": empty,
    }


def differential_matrix(
    n: int = 2048,
    seed: int = 42,
    algorithms: Optional[Iterable[str]] = None,
    datasets: Optional[Dict[str, JoinInput]] = None,
    backends: Sequence[str] = BACKENDS,
) -> List[DifferentialReport]:
    """Run the full algorithm x dataset differential grid."""
    from repro.api import ALGORITHMS, make_join

    algorithms = sorted(ALGORITHMS) if algorithms is None else list(algorithms)
    datasets = default_datasets(n, seed) if datasets is None else datasets
    reports = []
    for ds_name, join_input in datasets.items():
        for algo in algorithms:
            reports.append(run_differential(
                lambda a=algo, ji=join_input: make_join(a).run(ji),
                algorithm=algo, dataset=ds_name, backends=backends,
            ))
    return reports


def spill_differential(
    n: int = 2048,
    seed: int = 42,
    algorithms: Optional[Iterable[str]] = None,
    datasets: Optional[Dict[str, JoinInput]] = None,
    backends: Sequence[str] = BACKENDS,
) -> List[DifferentialReport]:
    """The spill column of the differential grid.

    For each dataset and spill-capable algorithm, runs an in-RAM
    reference and then, on every backend, the same join under a memory
    budget tight enough to force partitions through the on-disk chunk
    store (a fresh ephemeral spill session per run).  Every spilled run
    must be observationally identical to the in-RAM reference — phase
    structure, counters, simulated seconds, output — and must actually
    have spilled (a gate that silently stayed in RAM fails the report).
    """
    from repro.api import make_join
    from repro.faults.plan import SPILL_ALGORITHM_NAMES
    from repro.store import open_spill_session

    algorithms = (list(SPILL_ALGORITHM_NAMES) if algorithms is None
                  else list(algorithms))
    datasets = default_datasets(n, seed) if datasets is None else datasets
    reports = []
    for ds_name, join_input in datasets.items():
        total_bytes = 12 * (len(join_input.r) + len(join_input.s))
        budget = max(total_bytes // 4, 1)
        for algo in algorithms:
            with use_backend(backends[0]):
                reference = make_join(algo).run(join_input)
            mismatches: List[str] = []
            for backend in backends:
                with use_backend(backend):
                    with open_spill_session(
                            budget_bytes=budget,
                            chunk_bytes=max(budget // 2, 4096)):
                        spilled = make_join(algo).run(join_input)
                for issue in compare_results(reference, spilled):
                    mismatches.append(f"[in-RAM vs {backend}+spill] {issue}")
                # CSH diverts skewed tuples to the on-the-fly join; only
                # the normal partitions can spill, so a workload whose
                # tuples are all skewed legitimately never engages.
                normal_r = int(len(join_input.r)) - int(
                    reference.meta.get("skewed_r_tuples", 0))
                if normal_r > 0 and not spilled.meta.get(
                        "spilled_partitions"):
                    mismatches.append(
                        f"[{backend}] spill did not engage under a "
                        f"{budget}-byte budget")
            reports.append(DifferentialReport(
                algorithm=algo, dataset=f"{ds_name}+spill",
                backends=tuple(backends), mismatches=mismatches,
                output_count=reference.output_count,
            ))
    return reports


def oocore_differential(
    n: int = 4096,
    seed: int = 42,
    algorithms: Optional[Iterable[str]] = None,
    backends: Sequence[str] = BACKENDS,
) -> List[DifferentialReport]:
    """The out-of-core column of the differential grid.

    Streams zipf and uniform workloads to an on-disk relation store
    (multiple chunks per column, compressed codec on the zipf case),
    then runs every algorithm on every backend with the input paging in
    lazily through :class:`~repro.store.relations.MappedRelation`.  Each
    run must be observationally identical to the same algorithm over the
    bulk-generated in-RAM input — the streamed generators are
    bit-identical to the bulk ones, so any divergence is a paging bug,
    not a workload difference.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.api import ALGORITHMS, make_join
    from repro.data.stream import stream_uniform_input, stream_zipf_input
    from repro.store.relations import open_join_input

    algorithms = sorted(ALGORITHMS) if algorithms is None else list(algorithms)
    chunk = max(n // 4, 1)
    cases = {
        "zipf-1.0": (
            lambda d: stream_zipf_input(d, n, n, 1.0, seed=seed,
                                        codec="zlib", chunk_tuples=chunk),
            lambda: ZipfWorkload(n, n, theta=1.0, seed=seed).generate(),
        ),
        "uniform": (
            lambda d: stream_uniform_input(d, n, n, seed=seed,
                                           codec="raw", chunk_tuples=chunk),
            lambda: uniform_input(n, n, seed=seed),
        ),
    }
    reports = []
    for ds_name, (write, bulk) in cases.items():
        tmp = Path(tempfile.mkdtemp(prefix=f"repro-oocore-{ds_name}-"))
        try:
            write(tmp)
            reference_input = bulk()
            for algo in algorithms:
                with use_backend(backends[0]):
                    reference = make_join(algo).run(reference_input)
                mismatches: List[str] = []
                for backend in backends:
                    # A fresh lazy view per run: no page cache or
                    # materialization state carries across backends.
                    streamed_input, store = open_join_input(tmp)
                    try:
                        with use_backend(backend):
                            streamed = make_join(algo).run(streamed_input)
                    finally:
                        store.close()
                    for issue in compare_results(reference, streamed):
                        mismatches.append(
                            f"[in-RAM vs {backend}+oocore] {issue}")
                reports.append(DifferentialReport(
                    algorithm=algo, dataset=f"{ds_name}+oocore",
                    backends=tuple(backends), mismatches=mismatches,
                    output_count=reference.output_count,
                ))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return reports


def render_differential(reports: Sequence[DifferentialReport]) -> str:
    """Human-readable grid summary of differential outcomes."""
    names = reports[0].backends if reports else BACKENDS
    lines = [f"backend differential — {' vs '.join(names)}", ""]
    width = max((len(r.algorithm) for r in reports), default=8)
    ds_width = max((len(r.dataset) for r in reports), default=8)
    for r in reports:
        status = "OK" if r.ok else "MISMATCH"
        lines.append(f"  {r.algorithm:<{width}}  {r.dataset:<{ds_width}}  "
                     f"{status}  ({r.output_count} output tuples)")
        for issue in r.mismatches:
            lines.append(f"      - {issue}")
    n_bad = sum(1 for r in reports if not r.ok)
    lines.append("")
    if n_bad:
        lines.append(f"{n_bad}/{len(reports)} case(s) diverged between "
                     "backends")
    else:
        lines.append(f"all {len(reports)} case(s) bit-identical across "
                     "backends")
    return "\n".join(lines)
