"""Join result and phase breakdown containers.

Every pipeline in this library returns a :class:`JoinResult`: the output
summary (count + order-independent checksum), a per-phase breakdown of
simulated time and operation counters, and the wall-clock time the Python
executor actually took.  The per-phase breakdown mirrors the rows of the
paper's Table I (e.g., ``partition`` / ``join`` for Cbase, ``sample+part`` /
``nm-join`` for CSH).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.exec.counters import OpCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.report import FailureReport
    from repro.obs.trace import TraceRecord


@dataclass
class PhaseResult:
    """Outcome of one pipeline phase.

    ``simulated_seconds`` is the cost-model makespan of the phase's tasks on
    the simulated workers (CPU) or SMs (GPU).  ``wall_seconds`` is the time
    the Python executor spent, reported for transparency only.
    """

    name: str
    simulated_seconds: float
    counters: OpCounters = field(default_factory=OpCounters)
    wall_seconds: float = 0.0
    #: Number of tasks/blocks the phase dispatched (0 if not task-based).
    task_count: int = 0
    #: Free-form per-phase details (e.g. detected skewed key count).
    details: Dict[str, float] = field(default_factory=dict)


@dataclass
class JoinResult:
    """Outcome of a full join pipeline run."""

    algorithm: str
    n_r: int
    n_s: int
    output_count: int
    output_checksum: int
    phases: List[PhaseResult] = field(default_factory=list)
    #: Algorithm-specific metadata (skewed keys detected, fanout used, ...).
    meta: Dict[str, object] = field(default_factory=dict)
    #: Structured trace of the run (spans + metrics); populated by the
    #: pipelines, optional so hand-built results stay lightweight.
    trace: Optional["TraceRecord"] = None
    #: Fault episodes (injected or organic) seen during the run, in order.
    #: Empty for a fault-free run.
    faults: List["FailureReport"] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time across all phases."""
        return sum(p.simulated_seconds for p in self.phases)

    @property
    def wall_seconds(self) -> float:
        """Total wall-clock time of the Python executor across phases."""
        return sum(p.wall_seconds for p in self.phases)

    @property
    def counters(self) -> OpCounters:
        """Total operation counters across all phases."""
        return OpCounters.sum(p.counters for p in self.phases)

    def phase(self, name: str) -> PhaseResult:
        """Return the phase with the given name.

        Raises ``KeyError`` if the pipeline produced no such phase.
        """
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"{self.algorithm} has no phase named {name!r}; "
                       f"phases: {[p.name for p in self.phases]}")

    def phase_seconds(self, *names: str) -> float:
        """Sum of simulated seconds over the named phases."""
        return sum(self.phase(n).simulated_seconds for n in names)

    def breakdown(self) -> Dict[str, float]:
        """Mapping of phase name to simulated seconds."""
        return {p.name: p.simulated_seconds for p in self.phases}

    def summary_line(self) -> str:
        """One-line human-readable summary."""
        phases = ", ".join(
            f"{p.name}={p.simulated_seconds:.4g}s" for p in self.phases
        )
        return (
            f"{self.algorithm}: |R|={self.n_r} |S|={self.n_s} "
            f"out={self.output_count} sim={self.simulated_seconds:.4g}s ({phases})"
        )

    def matches(self, other: "JoinResult") -> bool:
        """True if the two results describe the same join output."""
        return (
            self.output_count == other.output_count
            and self.output_checksum == other.output_checksum
        )


@dataclass
class BreakdownRow(dict):
    """Convenience alias used by the bench table renderers."""


def compare_results(results: List[JoinResult]) -> Optional[str]:
    """Check a list of results for output agreement.

    Returns ``None`` if all results agree on (count, checksum), otherwise a
    human-readable description of the first disagreement.
    """
    if not results:
        return None
    base = results[0]
    for other in results[1:]:
        if not base.matches(other):
            return (
                f"{base.algorithm} produced count={base.output_count} "
                f"checksum={base.output_checksum:#x} but {other.algorithm} "
                f"produced count={other.output_count} "
                f"checksum={other.output_checksum:#x}"
            )
    return None
