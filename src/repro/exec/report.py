"""Human-readable reports for join results.

Formats a :class:`repro.exec.result.JoinResult` — or a comparison of
several — into aligned text for terminals and logs.  Used by the CLI and
the examples.
"""

from __future__ import annotations

from typing import Sequence

from repro.exec.result import JoinResult


def _fmt_seconds(seconds: float) -> str:
    if seconds == 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.4g}s"


def _fmt_count(value: int) -> str:
    if value >= 10_000_000:
        return f"{value:.3e}"
    return f"{value:,}"


def result_report(result: JoinResult, counters: bool = False) -> str:
    """Multi-line report of one join result."""
    lines = [
        f"algorithm:      {result.algorithm}"
        + ("  [analytic]" if result.meta.get("analytic") else ""),
        f"input:          |R| = {_fmt_count(result.n_r)}, "
        f"|S| = {_fmt_count(result.n_s)}",
        f"output:         {_fmt_count(result.output_count)} tuples "
        f"(checksum {result.output_checksum:#018x})",
        f"simulated time: {_fmt_seconds(result.simulated_seconds)}",
        "phases:",
    ]
    width = max((len(p.name) for p in result.phases), default=4) + 2
    total = result.simulated_seconds or 1.0
    for phase in result.phases:
        share = phase.simulated_seconds / total
        bar = "#" * int(round(share * 30))
        lines.append(
            f"  {phase.name:<{width}}{_fmt_seconds(phase.simulated_seconds):>10}"
            f"  {share:>6.1%}  {bar}"
        )
        for key, value in phase.details.items():
            lines.append(f"  {'':<{width}}  - {key} = {value:g}")
    if counters:
        lines.append("operation counters:")
        for name, value in result.counters.as_dict().items():
            if value:
                lines.append(f"  {name:<18}{_fmt_count(value):>22}")
    interesting = {k: v for k, v in result.meta.items()
                   if k not in ("analytic",) and not k.startswith("bits_")}
    if interesting:
        lines.append("meta:")
        for key, value in interesting.items():
            lines.append(f"  {key} = {value}")
    return "\n".join(lines)


def comparison_report(results: Sequence[JoinResult],
                      baseline: str = None) -> str:
    """Side-by-side totals for several results on the same input."""
    results = list(results)
    if not results:
        return "(no results)"
    if baseline is None:
        baseline = results[0].algorithm
    base_seconds = next(
        (r.simulated_seconds for r in results if r.algorithm == baseline),
        results[0].simulated_seconds,
    )
    width = max(len(r.algorithm) for r in results) + 2
    lines = [
        f"{'algorithm':<{width}}{'simulated':>12}{'vs ' + baseline:>12}"
        f"{'output':>16}",
        "-" * (width + 40),
    ]
    for result in results:
        ratio = base_seconds / result.simulated_seconds \
            if result.simulated_seconds else float("inf")
        lines.append(
            f"{result.algorithm:<{width}}"
            f"{_fmt_seconds(result.simulated_seconds):>12}"
            f"{ratio:>11.2f}x"
            f"{_fmt_count(result.output_count):>16}"
        )
    agreed = len({(r.output_count, r.output_checksum) for r in results}) == 1
    lines.append("")
    lines.append("outputs agree" if agreed else "WARNING: OUTPUTS DISAGREE")
    return "\n".join(lines)
