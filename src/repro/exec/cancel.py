"""Cooperative deadlines and cancellation for long-running requests.

A served probe must never wedge the daemon: a request that outlives its
``deadline_ms`` budget, loses its client mid-stream, or gets caught by a
server drain has to stop *at the next safe point* and surface a typed
error — not hang, and not be killed mid-write.  This module provides the
ambient plumbing, mirroring the fault-scope idiom: the serve engine
installs a :class:`CancelScope` (a :class:`Deadline` and/or a
:class:`CancelToken`) around one request, and the compute layers —
morsel loops, the scalar chain walk, the worker-pool result drain — call
the module-level :func:`checkpoint`, which is a no-op when no scope is
active (one contextvar read), so the one-shot pipelines pay nothing.

Deadlines measure *charged* time: wall-clock elapsed plus any simulated
delay charged via :meth:`Deadline.charge` (the ``slow`` fault kind).
That is what makes deadline tests deterministic — an injected 10s morsel
delay trips a 50ms budget without anyone sleeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.errors import ConfigError, DeadlineExceeded, RequestCancelled


class Deadline:
    """One request's time budget, in milliseconds of charged time."""

    def __init__(self, budget_ms: float,
                 clock=time.monotonic):
        if not (budget_ms > 0):
            raise ConfigError(
                f"deadline_ms must be positive, got {budget_ms!r}",
                deadline_ms=budget_ms)
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self._start = clock()
        #: Simulated milliseconds charged on top of wall time (slow faults).
        self.charged_ms = 0.0

    @property
    def elapsed_ms(self) -> float:
        """Charged time since the deadline started, in milliseconds."""
        return (self._clock() - self._start) * 1000.0 + self.charged_ms

    @property
    def remaining_ms(self) -> float:
        return self.budget_ms - self.elapsed_ms

    @property
    def expired(self) -> bool:
        return self.elapsed_ms >= self.budget_ms

    def charge(self, seconds: float) -> None:
        """Charge a simulated delay against the budget (no sleeping)."""
        self.charged_ms += float(seconds) * 1000.0


class CancelToken:
    """A one-way flag set by whoever wants the request stopped."""

    def __init__(self):
        self.cancelled = False
        self.reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if not self.cancelled:
            self.cancelled = True
            self.reason = reason


class CancelScope:
    """The ambient deadline + token pair one request runs under."""

    def __init__(self, deadline: Optional[Deadline] = None,
                 token: Optional[CancelToken] = None):
        self.deadline = deadline
        self.token = token

    def checkpoint(self, **context) -> None:
        """Raise the typed error if the request should stop now.

        Cancellation wins over deadline expiry: a drain/disconnect is a
        more specific reason than "the clock also ran out meanwhile".
        """
        token = self.token
        if token is not None and token.cancelled:
            raise RequestCancelled(
                f"request cancelled: {token.reason}",
                reason=token.reason, **context)
        deadline = self.deadline
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                "deadline exceeded",
                deadline_ms=deadline.budget_ms,
                elapsed_ms=round(deadline.elapsed_ms, 3),
                **context)


_ACTIVE_SCOPE: ContextVar[Optional[CancelScope]] = ContextVar(
    "repro_active_cancel_scope", default=None)


def current_cancel_scope() -> Optional[CancelScope]:
    """The active scope, or None outside any deadline-bearing request."""
    return _ACTIVE_SCOPE.get()


def checkpoint(**context) -> None:
    """Module-level cooperative checkpoint: cheap no-op with no scope.

    The hot loops call this between morsels / chain-walk rounds /
    result polls; only requests that actually carry a deadline or a
    cancel token ever pay more than one contextvar read.
    """
    scope = _ACTIVE_SCOPE.get()
    if scope is not None:
        scope.checkpoint(**context)


@contextmanager
def cancel_scope(deadline: Optional[Deadline] = None,
                 token: Optional[CancelToken] = None
                 ) -> Iterator[CancelScope]:
    """Install a scope ambiently for the block (the serve engine's use)."""
    scope = CancelScope(deadline=deadline, token=token)
    cv_token = _ACTIVE_SCOPE.set(scope)
    try:
        yield scope
    finally:
        _ACTIVE_SCOPE.reset(cv_token)
