"""Join output buffers.

The paper models a volcano-style consumer of the join output: each CPU
thread (or GPU thread block) owns a fixed-capacity output buffer, and when
the buffer is full it is simply overwritten from the start (Section III).
:class:`JoinOutputBuffer` reproduces that behaviour, while additionally
maintaining two order-independent summaries used for correctness checks:

* ``count`` — the total number of output tuples produced, and
* ``checksum`` — ``sum(r_payload * s_payload) mod 2**64`` over all produced
  pairs.  Because multiplication distributes over addition mod 2**64, the
  checksum of a full cartesian product for one key equals
  ``sum(R payloads) * sum(S payloads)``, so skew-handling fast paths and the
  analytic verifier can compute it without enumerating the pairs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_U64_MASK = (1 << 64) - 1

#: Default per-worker output-buffer capacity, in tuples.
DEFAULT_CAPACITY = 65536


class JoinOutputBuffer:
    """Fixed-capacity ring buffer of join output tuples.

    Tuples are (r_payload, s_payload) pairs of ``uint32``.  Writes wrap
    around and overwrite earlier output, exactly like the repeatedly
    overwritten per-thread buffers in the paper's experimental setup.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ConfigError(f"output buffer capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._r = np.zeros(self.capacity, dtype=np.uint32)
        self._s = np.zeros(self.capacity, dtype=np.uint32)
        # Reused uint64 scratch for checksum products: write_pairs runs
        # once per probe task, and a fresh temporary per call was a
        # measurable share of its allocation traffic.
        self._prod = np.empty(self.capacity, dtype=np.uint64)
        self._pos = 0
        self.count = 0
        self.checksum = 0

    def _pairs_checksum(self, r_payloads: np.ndarray,
                        s_payloads: np.ndarray) -> int:
        """``sum(r * s) mod 2**64``, chunked through the scratch buffer.

        Oversized writes stream through the capacity-sized scratch in
        chunks; mod-2**64 addition is associative, so the chunked total
        equals the single-temporary result exactly.
        """
        n = int(r_payloads.size)
        chunk = self.capacity
        total = 0
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            scratch = self._prod[:stop - start]
            np.multiply(r_payloads[start:stop], s_payloads[start:stop],
                        out=scratch, dtype=np.uint64)
            total += int(np.sum(scratch, dtype=np.uint64))
        return total & _U64_MASK

    def write_pairs(self, r_payloads: np.ndarray, s_payloads: np.ndarray) -> int:
        """Append matched pairs; returns the number of tuples written.

        ``r_payloads`` and ``s_payloads`` must be equal-length 1-D arrays:
        element ``i`` of each forms one output tuple.
        """
        r_payloads = np.asarray(r_payloads, dtype=np.uint32)
        s_payloads = np.asarray(s_payloads, dtype=np.uint32)
        if r_payloads.shape != s_payloads.shape or r_payloads.ndim != 1:
            raise ValueError("payload arrays must be 1-D and of equal length")
        n = int(r_payloads.size)
        if n == 0:
            return 0
        partial = self._pairs_checksum(r_payloads, s_payloads)
        self.checksum = (self.checksum + partial) & _U64_MASK
        self.count += n
        self._store(r_payloads, s_payloads)
        return n

    def write_cartesian(self, r_payloads: np.ndarray, s_payloads: np.ndarray) -> int:
        """Append the full cartesian product R x S of matched payloads.

        This is the skewed-key fast path: the count and checksum are
        computed in closed form, and only the *tail* of the product (the
        last ``capacity`` pairs in row-major order) is materialized into the
        ring, which is all that overwrite-on-full semantics can retain.
        """
        r_payloads = np.asarray(r_payloads, dtype=np.uint32).ravel()
        s_payloads = np.asarray(s_payloads, dtype=np.uint32).ravel()
        nr, ns = int(r_payloads.size), int(s_payloads.size)
        total = nr * ns
        if total == 0:
            return 0
        sum_r = int(np.sum(r_payloads.astype(np.uint64), dtype=np.uint64))
        sum_s = int(np.sum(s_payloads.astype(np.uint64), dtype=np.uint64))
        self.checksum = (self.checksum + sum_r * sum_s) & _U64_MASK
        self.count += total
        keep = min(total, self.capacity)
        # Row-major tail: the last `keep` pairs of
        # [(r_0,s_0),...,(r_0,s_{ns-1}),(r_1,s_0),...].
        flat_start = total - keep
        idx = np.arange(flat_start, total)
        tail_r = r_payloads[idx // ns]
        tail_s = s_payloads[idx % ns]
        if keep < total:
            # The ring position advances by `total` writes overall.
            skipped = total - keep
            self._pos = (self._pos + skipped) % self.capacity
        self._store(tail_r, tail_s)
        return total

    def _store(self, r_payloads: np.ndarray, s_payloads: np.ndarray) -> None:
        n = int(r_payloads.size)
        if n >= self.capacity:
            # Only the final `capacity` tuples survive a wrapping write.
            tail_r = r_payloads[n - self.capacity:]
            tail_s = s_payloads[n - self.capacity:]
            # After writing n tuples starting at _pos, the cursor lands at
            # (_pos + n) % capacity; the surviving tuples are laid out so
            # that the oldest surviving tuple sits at the cursor.
            end = (self._pos + n) % self.capacity
            order = (np.arange(self.capacity) + end) % self.capacity
            self._r[order] = tail_r
            self._s[order] = tail_s
            self._pos = end
            return
        end = self._pos + n
        if end <= self.capacity:
            self._r[self._pos:end] = r_payloads
            self._s[self._pos:end] = s_payloads
            self._pos = end % self.capacity
        else:
            first = self.capacity - self._pos
            self._r[self._pos:] = r_payloads[:first]
            self._s[self._pos:] = s_payloads[:first]
            rest = n - first
            self._r[:rest] = r_payloads[first:]
            self._s[:rest] = s_payloads[first:]
            self._pos = rest

    def snapshot(self) -> np.ndarray:
        """Return the retained tuples as an ``(n, 2)`` array (for tests)."""
        n = min(self.count, self.capacity)
        if n < self.capacity:
            return np.stack([self._r[:n], self._s[:n]], axis=1)
        order = (np.arange(self.capacity) + self._pos) % self.capacity
        return np.stack([self._r[order], self._s[order]], axis=1)

    def merge_summary(self, other: "JoinOutputBuffer") -> None:
        """Fold another buffer's count/checksum into this one (buffers are
        per-worker; totals are aggregated at the end of a join)."""
        self.count += other.count
        self.checksum = (self.checksum + other.checksum) & _U64_MASK


def combine_summaries(buffers) -> "OutputSummary":
    """Aggregate per-worker buffers into one (count, checksum) summary."""
    count = 0
    checksum = 0
    for buf in buffers:
        count += buf.count
        checksum = (checksum + buf.checksum) & _U64_MASK
    return OutputSummary(count=count, checksum=checksum)


class OutputSummary:
    """Order-independent summary of a join's output."""

    __slots__ = ("count", "checksum")

    def __init__(self, count: int = 0, checksum: int = 0):
        self.count = count
        self.checksum = checksum & _U64_MASK

    def add_pairs_sum(self, count: int, checksum_delta: int) -> None:
        """Fold a (count, checksum delta) contribution in."""
        self.count += count
        self.checksum = (self.checksum + checksum_delta) & _U64_MASK

    def __eq__(self, other) -> bool:
        if not isinstance(other, OutputSummary):
            return NotImplemented
        return self.count == other.count and self.checksum == other.checksum

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutputSummary(count={self.count}, checksum={self.checksum:#x})"
