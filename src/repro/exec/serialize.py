"""JSON-serializable records of join results.

Experiment logging support: convert a :class:`JoinResult` (including its
phase breakdown, counters, and failure reports) to plain dicts and back,
so sweeps can be archived and re-rendered without re-running.

The appender is crash-conscious: lines are flushed and fsynced, and the
``artifact`` injection point simulates a torn append (the process dying
mid-write) by truncating the final line — which the tolerant loader in
:func:`repro.obs.export.read_jsonl` detects and skips with a warning.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.exec.counters import OpCounters
from repro.exec.result import JoinResult, PhaseResult
from repro.faults.plan import ARTIFACT_CORRUPTION
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope
from repro.obs.export import read_jsonl, trace_from_dict, trace_to_dict

_FORMAT_VERSION = 1


def phase_to_dict(phase: PhaseResult) -> Dict:
    """Plain-dict form of one phase result."""
    return {
        "name": phase.name,
        "simulated_seconds": phase.simulated_seconds,
        "wall_seconds": phase.wall_seconds,
        "task_count": phase.task_count,
        "counters": {k: v for k, v in phase.counters.as_dict().items() if v},
        "details": dict(phase.details),
    }


def phase_from_dict(data: Dict) -> PhaseResult:
    """Rebuild a phase result from its dict form."""
    counters = OpCounters(**data.get("counters", {}))
    return PhaseResult(
        name=data["name"],
        simulated_seconds=data["simulated_seconds"],
        counters=counters,
        wall_seconds=data.get("wall_seconds", 0.0),
        task_count=data.get("task_count", 0),
        details=dict(data.get("details", {})),
    )


def result_to_dict(result: JoinResult) -> Dict:
    """Plain-dict form of a join result (JSON compatible)."""
    data = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "n_r": result.n_r,
        "n_s": result.n_s,
        "output_count": result.output_count,
        "output_checksum": result.output_checksum,
        "phases": [phase_to_dict(p) for p in result.phases],
        "meta": _jsonable_meta(result.meta),
    }
    if result.faults:
        data["faults"] = [report.to_dict() for report in result.faults]
    if result.trace is not None:
        data["trace"] = trace_to_dict(result.trace)
    return data


def result_from_dict(data: Dict) -> JoinResult:
    """Rebuild a join result from its dict form."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format version: {version!r} (this build "
            f"reads version {_FORMAT_VERSION}); the artifact was written "
            "by a different build — re-export it with `repro trace --out`",
            found_version=version, expected_version=_FORMAT_VERSION,
        )
    trace = data.get("trace")
    return JoinResult(
        algorithm=data["algorithm"],
        n_r=data["n_r"],
        n_s=data["n_s"],
        output_count=data["output_count"],
        output_checksum=data["output_checksum"],
        phases=[phase_from_dict(p) for p in data["phases"]],
        meta=dict(data.get("meta", {})),
        faults=[FailureReport.from_dict(f)
                for f in data.get("faults", [])],
        trace=trace_from_dict(trace) if trace is not None else None,
    )


def result_to_json(result: JoinResult, indent: int = None) -> str:
    """JSON string form of a join result."""
    return json.dumps(result_to_dict(result), indent=indent)


def result_from_json(text: str) -> JoinResult:
    """Rebuild a join result from JSON."""
    return result_from_dict(json.loads(text))


def results_to_json(results: List[JoinResult], indent: int = None) -> str:
    """Serialize a list of results (e.g. one sweep)."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_from_json(text: str) -> List[JoinResult]:
    """Rebuild a list of join results from JSON."""
    return [result_from_dict(d) for d in json.loads(text)]


def results_to_jsonl(results: List[JoinResult]) -> str:
    """JSONL form: one compact result object per line (trailing newline)."""
    return "".join(
        json.dumps(result_to_dict(r), sort_keys=True) + "\n" for r in results
    )


def results_from_jsonl(text: str) -> List[JoinResult]:
    """Rebuild join results from JSONL text (blank lines skipped)."""
    return [
        result_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def append_results_jsonl(results: List[JoinResult],
                         path: Union[str, Path]) -> int:
    """Append results to a JSONL artifact file; returns lines written.

    Creates parent directories as needed — this is the writer behind the
    benchmark harness's ``REPRO_TRACE_DIR`` artifacts.  Lines are
    serialized before the file is opened, and the write is flushed and
    fsynced, so a crash leaves at worst one torn trailing line.

    The ``artifact`` injection point simulates exactly that torn write:
    when it fires, the final line is truncated mid-record and the
    simulated crash is re-raised as :class:`ArtifactCorruptionError` so
    callers exercise the recovery path (tolerant load + atomic rewrite).
    """
    from repro.errors import ArtifactCorruptionError

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = results_to_jsonl(results)
    scope = current_fault_scope()
    spec = scope.fire("artifact", path=str(path)) if results else None
    if spec is not None:
        # Torn append: drop the second half of the last line, no newline.
        lines = payload.splitlines()
        payload = "".join(line + "\n" for line in lines[:-1])
        payload += lines[-1][:max(len(lines[-1]) // 2, 1)]
    with path.open("a", encoding="utf-8") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    if spec is not None:
        report = scope.record(FailureReport(
            kind=spec.kind, point="artifact", algorithm=scope.algorithm,
            phase=current_phase_name(), action="abort", recovered=False,
            injected=True, error="injected torn append (crash mid-write)",
            context={"path": str(path), "lines": len(results)},
        ))
        raise ArtifactCorruptionError(
            "simulated crash while appending results", report=report,
            path=str(path))
    return len(results)


def results_from_jsonl_file(path: Union[str, Path],
                            tolerant: bool = False) -> List[JoinResult]:
    """Read a JSONL artifact written by :func:`append_results_jsonl`.

    ``tolerant=True`` skips (with a warning) a truncated trailing line
    left by a torn append; see :func:`repro.obs.export.read_jsonl`.
    """
    return [result_from_dict(d)
            for d in read_jsonl(path, tolerant=tolerant)]


def _jsonable_meta(meta: Dict) -> Dict:
    return {key: _jsonable_value(value) for key, value in meta.items()}


def _jsonable_value(value):
    """Recursively coerce a meta value to plain JSON types.

    Nested dicts (the planner's ``meta["plan"]`` bookkeeping) survive
    structurally — the trace-history learner and ``trace --check`` read
    them back from JSONL artifacts.  Anything unrecognized degrades to
    its string form rather than failing the export.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable_value(v) for v in value]
    if hasattr(value, "__int__"):  # numpy integer scalars
        return int(value)
    return str(value)
