"""JSON-serializable records of join results.

Experiment logging support: convert a :class:`JoinResult` (including its
phase breakdown and counters) to plain dicts and back, so sweeps can be
archived and re-rendered without re-running.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.errors import ReproError
from repro.exec.counters import OpCounters
from repro.exec.result import JoinResult, PhaseResult

_FORMAT_VERSION = 1


def phase_to_dict(phase: PhaseResult) -> Dict:
    """Plain-dict form of one phase result."""
    return {
        "name": phase.name,
        "simulated_seconds": phase.simulated_seconds,
        "wall_seconds": phase.wall_seconds,
        "task_count": phase.task_count,
        "counters": {k: v for k, v in phase.counters.as_dict().items() if v},
        "details": dict(phase.details),
    }


def phase_from_dict(data: Dict) -> PhaseResult:
    """Rebuild a phase result from its dict form."""
    counters = OpCounters(**data.get("counters", {}))
    return PhaseResult(
        name=data["name"],
        simulated_seconds=data["simulated_seconds"],
        counters=counters,
        wall_seconds=data.get("wall_seconds", 0.0),
        task_count=data.get("task_count", 0),
        details=dict(data.get("details", {})),
    )


def result_to_dict(result: JoinResult) -> Dict:
    """Plain-dict form of a join result (JSON compatible)."""
    return {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "n_r": result.n_r,
        "n_s": result.n_s,
        "output_count": result.output_count,
        "output_checksum": result.output_checksum,
        "phases": [phase_to_dict(p) for p in result.phases],
        "meta": _jsonable_meta(result.meta),
    }


def result_from_dict(data: Dict) -> JoinResult:
    """Rebuild a join result from its dict form."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ReproError(f"unsupported result format version: {version!r}")
    return JoinResult(
        algorithm=data["algorithm"],
        n_r=data["n_r"],
        n_s=data["n_s"],
        output_count=data["output_count"],
        output_checksum=data["output_checksum"],
        phases=[phase_from_dict(p) for p in data["phases"]],
        meta=dict(data.get("meta", {})),
    )


def result_to_json(result: JoinResult, indent: int = None) -> str:
    """JSON string form of a join result."""
    return json.dumps(result_to_dict(result), indent=indent)


def result_from_json(text: str) -> JoinResult:
    """Rebuild a join result from JSON."""
    return result_from_dict(json.loads(text))


def results_to_json(results: List[JoinResult], indent: int = None) -> str:
    """Serialize a list of results (e.g. one sweep)."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_from_json(text: str) -> List[JoinResult]:
    """Rebuild a list of join results from JSON."""
    return [result_from_dict(d) for d in json.loads(text)]


def _jsonable_meta(meta: Dict) -> Dict:
    out = {}
    for key, value in meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [int(v) if hasattr(v, "__int__") else v
                        for v in value]
        else:
            out[key] = str(value)
    return out
