"""Operation counters shared by all executors.

Every join executor in this library — CPU baselines, GPU kernels running on
the SIMT simulator, and the analytic paper-scale path — reports its work as
an :class:`OpCounters` value.  The cost models in
:mod:`repro.exec.cost_model` convert counters into simulated seconds; the
analytic module in :mod:`repro.analysis.analytic` recomputes the same
counters from key histograms without executing, which is what lets the
benchmarks reason about the paper's 32 M and 560 M tuple configurations.

Counters use plain Python integers so that paper-scale quantities
(~5 * 10**12 output tuples at zipf 1.0) never overflow.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class OpCounters:
    """Exact operation counts for one task, block, phase, or whole join.

    CPU-oriented fields:

    * ``hash_ops`` — hash function evaluations.
    * ``table_inserts`` — hash-table insert operations.
    * ``chain_steps`` — hash-chain node visits while probing or inserting
      (each is a dependent memory access).
    * ``key_compares`` — key equality checks after reaching a chain node.
    * ``tuple_moves`` — tuples copied during partitioning/splitting
      (one read + one write of 8 bytes each).
    * ``seq_tuple_reads`` — tuples read by sequential scans.
    * ``output_tuples`` — join result tuples produced.
    * ``sample_ops`` — tuples touched by skew-detection sampling.

    GPU-oriented fields (also maintained by CPU executors where meaningful,
    but only priced by the GPU cost model):

    * ``atomic_ops`` — atomic read-modify-write operations.
    * ``sync_barriers`` — ``__syncthreads``-style block barriers.
    * ``divergent_steps`` — extra serialized warp-steps caused by
      intra-warp divergence.
    * ``random_accesses`` — non-coalesced (random) memory accesses.

    Byte-level traffic:

    * ``bytes_read`` / ``bytes_written`` — total memory traffic, used by the
      bandwidth terms of the cost models.
    """

    hash_ops: int = 0
    table_inserts: int = 0
    chain_steps: int = 0
    key_compares: int = 0
    tuple_moves: int = 0
    seq_tuple_reads: int = 0
    output_tuples: int = 0
    sample_ops: int = 0
    atomic_ops: int = 0
    sync_barriers: int = 0
    divergent_steps: int = 0
    random_accesses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def __add__(self, other: "OpCounters") -> "OpCounters":
        if not isinstance(other, OpCounters):
            return NotImplemented
        return OpCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in dataclasses.fields(self)
            }
        )

    def __iadd__(self, other: "OpCounters") -> "OpCounters":
        if not isinstance(other, OpCounters):
            return NotImplemented
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: int) -> "OpCounters":
        """Return a copy with every counter multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return OpCounters(
            **{f.name: getattr(self, f.name) * factor for f in dataclasses.fields(self)}
        )

    def copy(self) -> "OpCounters":
        """Deep copy of the counters."""
        return OpCounters(**self.as_dict())

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain ``{name: value}`` dict."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    def total_ops(self) -> int:
        """Sum of all operation counts (excluding the byte-traffic fields)."""
        byte_fields = {"bytes_read", "bytes_written"}
        return sum(
            getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in byte_fields
        )

    def is_zero(self) -> bool:
        """True if every counter is zero."""
        return all(getattr(self, f.name) == 0 for f in dataclasses.fields(self))

    @staticmethod
    def field_names() -> Iterable[str]:
        """Names of all counter fields."""
        return [f.name for f in dataclasses.fields(OpCounters)]

    @staticmethod
    def sum(items: Iterable["OpCounters"]) -> "OpCounters":
        """Sum an iterable of counters into a fresh OpCounters."""
        total = OpCounters()
        for item in items:
            total += item
        return total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "OpCounters(" + ", ".join(parts) + ")"
