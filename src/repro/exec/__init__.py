"""Shared execution engine: counters, output buffers, cost models, results."""

from repro.exec.counters import OpCounters
from repro.exec.cost_model import (
    CPUCostModel,
    DEFAULT_CPU_COST_MODEL,
    DEFAULT_GPU_COST_MODEL,
    GPUCostModel,
)
from repro.exec.output import (
    DEFAULT_CAPACITY,
    JoinOutputBuffer,
    OutputSummary,
    combine_summaries,
)
from repro.exec.phase import PhaseTimer
from repro.exec.report import comparison_report, result_report
from repro.exec.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
    results_from_json,
    results_to_json,
)
from repro.exec.result import JoinResult, PhaseResult, compare_results

__all__ = [
    "OpCounters",
    "CPUCostModel",
    "GPUCostModel",
    "DEFAULT_CPU_COST_MODEL",
    "DEFAULT_GPU_COST_MODEL",
    "JoinOutputBuffer",
    "OutputSummary",
    "combine_summaries",
    "DEFAULT_CAPACITY",
    "PhaseTimer",
    "JoinResult",
    "PhaseResult",
    "compare_results",
    "result_report",
    "comparison_report",
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "result_from_json",
    "results_to_json",
    "results_from_json",
]
