"""Key-equality matching helpers shared by CPU and GPU executors.

These compute the exact join output (count, checksum, and materialized
pairs while small) between two tuple sets, group-wise by key.  They are the
functional core every probe implementation delegates to; operation
*accounting* stays in the callers, which know what the scalar/SIMT
algorithm would have paid.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exec.backend import dispatch
from repro.exec.output import JoinOutputBuffer, OutputSummary

_U64_MASK = (1 << 64) - 1

#: Materialize real output pairs only while the expansion stays this small;
#: beyond it only the closed-form count/checksum is recorded.
MATERIALIZE_LIMIT = 1 << 21


def _group_tallies(
    keys: np.ndarray, payloads: np.ndarray
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Per-key tuple counts and payload sums, tuple-at-a-time."""
    counts: Dict[int, int] = {}
    sums: Dict[int, int] = {}
    for k, p in zip(keys.tolist(), payloads.tolist()):
        counts[k] = counts.get(k, 0) + 1
        sums[k] = sums.get(k, 0) + p
    return counts, sums


def _match_group_stats_scalar(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[int, int]:
    """Literal per-tuple tally of the equi-join count and checksum."""
    if r_keys.size == 0 or s_keys.size == 0:
        return 0, 0
    r_counts, r_sums = _group_tallies(r_keys, r_payloads)
    s_counts, s_sums = _group_tallies(s_keys, s_payloads)
    total = 0
    checksum = 0
    for key, rc in r_counts.items():
        sc = s_counts.get(key)
        if sc is None:
            continue
        total += rc * sc
        checksum += (r_sums[key] & _U64_MASK) * (s_sums[key] & _U64_MASK)
    return total, checksum & _U64_MASK


def _match_group_stats_vector(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[int, int]:
    """Group-wise batch tally of the equi-join count and checksum."""
    if r_keys.size == 0 or s_keys.size == 0:
        return 0, 0
    r_uniq, r_inv = np.unique(r_keys, return_inverse=True)
    s_uniq, s_inv = np.unique(s_keys, return_inverse=True)
    shared, idx_r, idx_s = np.intersect1d(
        r_uniq, s_uniq, assume_unique=True, return_indices=True
    )
    if shared.size == 0:
        return 0, 0
    r_counts = np.bincount(r_inv, minlength=r_uniq.size)
    s_counts = np.bincount(s_inv, minlength=s_uniq.size)
    total = int(np.sum(r_counts[idx_r].astype(object)
                       * s_counts[idx_s].astype(object)))
    r_sums = np.zeros(r_uniq.size, dtype=np.uint64)
    s_sums = np.zeros(s_uniq.size, dtype=np.uint64)
    np.add.at(r_sums, r_inv, r_payloads.astype(np.uint64))
    np.add.at(s_sums, s_inv, s_payloads.astype(np.uint64))
    checksum = int(np.sum(r_sums[idx_r] * s_sums[idx_s], dtype=np.uint64))
    return total, checksum & _U64_MASK


def _s_morsels(n_s: int, pool) -> List[Tuple[int, int]]:
    """Contiguous S-side morsels sized to keep the task queue fed."""
    from repro.cpu.segments import split_segments
    from repro.exec.parallel import MORSELS_PER_WORKER
    return split_segments(n_s, max(pool.n_workers * MORSELS_PER_WORKER, 1))


def _match_group_stats_parallel(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[int, int]:
    """Morsel-parallel tally: R-side group index + per-S-morsel probes.

    The driver builds the per-key (count, payload-sum) index of R once,
    ships it through the arena, and sums per-morsel contributions.  The
    per-tuple checksum ``r_sums[key] * s_payload`` equals the vector
    backend's per-key ``r_sums * s_sums`` because multiplication
    distributes over addition mod 2**64, and morsel merge order is
    irrelevant for the same reason — so the result is bit-identical
    regardless of worker count.
    """
    from repro.exec.parallel import SharedArena, morsel_pool

    pool = morsel_pool(r_keys.size + s_keys.size)
    if pool is None or r_keys.size == 0 or s_keys.size == 0:
        return _match_group_stats_vector(r_keys, r_payloads,
                                         s_keys, s_payloads)
    r_uniq, r_inv = np.unique(r_keys, return_inverse=True)
    r_counts = np.bincount(r_inv, minlength=r_uniq.size)
    r_sums = np.zeros(r_uniq.size, dtype=np.uint64)
    np.add.at(r_sums, r_inv, r_payloads.astype(np.uint64))
    with SharedArena(use_shm=pool.uses_processes) as arena:
        task = dict(r_uniq=arena.share(r_uniq),
                    r_counts=arena.share(r_counts),
                    r_sums=arena.share(r_sums),
                    s_keys=arena.share(s_keys),
                    s_payloads=arena.share(s_payloads))
        results = pool.run("match_stats", [
            dict(task, a=a, b=b) for (a, b) in _s_morsels(s_keys.size, pool)
        ])
    total = sum(t for t, _c in results)
    checksum = sum(c for _t, c in results)
    return total, checksum & _U64_MASK


def match_group_stats(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[int, int]:
    """Exact (count, checksum) of the equi-join of two tuple sets."""
    impl = dispatch(_match_group_stats_scalar, _match_group_stats_vector,
                    _match_group_stats_parallel)
    return impl(r_keys, r_payloads, s_keys, s_payloads)


def emit_matches(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
    buffer: JoinOutputBuffer,
) -> OutputSummary:
    """Join two tuple sets on key equality and feed the output buffer.

    Real pairs are written to the ring while the expansion is small; beyond
    :data:`MATERIALIZE_LIMIT` the buffer receives the closed-form summary
    only (overwrite-on-full semantics discard the bulk anyway).
    """
    summary = OutputSummary()
    total, checksum = match_group_stats(r_keys, r_payloads, s_keys, s_payloads)
    if total == 0:
        return summary
    if total <= MATERIALIZE_LIMIT:
        pairs_r, pairs_s = expand_pairs(r_keys, r_payloads, s_keys, s_payloads)
        buffer.write_pairs(pairs_r, pairs_s)
    else:
        buffer.count += total
        buffer.checksum = (buffer.checksum + checksum) & _U64_MASK
    summary.add_pairs_sum(total, checksum)
    return summary


def expand_pairs(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize all matching (r_payload, s_payload) pairs.

    All backends emit the pairs in the same order — by S tuple, then by R
    insertion order within the key — so buffer snapshots stay bit-identical.
    """
    impl = dispatch(_expand_pairs_scalar, _expand_pairs_vector,
                    _expand_pairs_parallel)
    return impl(r_keys, r_payloads, s_keys, s_payloads)


def _expand_pairs_scalar(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Tuple-at-a-time pair expansion via a per-key payload index."""
    if r_keys.size == 0 or s_keys.size == 0:
        return np.empty(0, np.uint32), np.empty(0, np.uint32)
    by_key: Dict[int, List[int]] = {}
    for k, p in zip(r_keys.tolist(), r_payloads.tolist()):
        by_key.setdefault(k, []).append(p)
    out_r: List[int] = []
    out_s: List[int] = []
    for k, sp in zip(s_keys.tolist(), s_payloads.tolist()):
        group = by_key.get(k)
        if group is None:
            continue
        out_r.extend(group)
        out_s.extend([sp] * len(group))
    return (np.asarray(out_r, dtype=np.uint32),
            np.asarray(out_s, dtype=np.uint32))


def _expand_pairs_vector(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch pair expansion via sort + searchsorted + repeat."""
    if r_keys.size == 0 or s_keys.size == 0:
        return np.empty(0, np.uint32), np.empty(0, np.uint32)
    r_order = np.argsort(r_keys, kind="stable")
    rk = r_keys[r_order]
    rp = r_payloads[r_order]
    group_keys, group_start = np.unique(rk, return_index=True)
    group_count = np.diff(np.append(group_start, rk.size))
    pos = np.searchsorted(group_keys, s_keys)
    pos = np.clip(pos, 0, max(group_keys.size - 1, 0))
    hit = (group_keys[pos] == s_keys) if group_keys.size else np.zeros(
        s_keys.size, bool)
    cnt_per_s = np.where(hit, group_count[pos], 0)
    total = int(cnt_per_s.sum())
    if total == 0:
        return np.empty(0, np.uint32), np.empty(0, np.uint32)
    s_rep = np.repeat(np.arange(s_keys.size), cnt_per_s)
    run_origin = np.repeat(np.cumsum(cnt_per_s) - cnt_per_s, cnt_per_s)
    within = np.arange(total) - run_origin
    r_idx = np.repeat(np.where(hit, group_start[pos], 0), cnt_per_s) + within
    return rp[r_idx], s_payloads[s_rep]


def _expand_pairs_parallel(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two-round morsel-parallel pair expansion.

    Round 1 counts each S morsel's output; the driver prefix-sums those
    counts into per-morsel output offsets; round 2 writes each morsel's
    pairs into its disjoint slice of the shared output.  Because morsels
    are contiguous S spans and pairs are ordered by S tuple then R
    insertion order, the concatenation equals the vector expansion
    bit for bit.
    """
    from repro.exec.parallel import SharedArena, morsel_pool

    pool = morsel_pool(r_keys.size + s_keys.size)
    if pool is None or r_keys.size == 0 or s_keys.size == 0:
        return _expand_pairs_vector(r_keys, r_payloads, s_keys, s_payloads)
    r_order = np.argsort(r_keys, kind="stable")
    rk = r_keys[r_order]
    rp = r_payloads[r_order]
    group_keys, group_start = np.unique(rk, return_index=True)
    group_count = np.diff(np.append(group_start, rk.size))
    morsels = _s_morsels(s_keys.size, pool)
    with SharedArena(use_shm=pool.uses_processes) as arena:
        gk_ref = arena.share(group_keys)
        gs_ref = arena.share(group_start)
        gc_ref = arena.share(group_count)
        rp_ref = arena.share(rp)
        sk_ref = arena.share(s_keys)
        sp_ref = arena.share(s_payloads)
        counts = pool.run("expand_count", [
            dict(group_keys=gk_ref, group_count=gc_ref, s_keys=sk_ref,
                 a=a, b=b)
            for (a, b) in morsels
        ])
        total = int(sum(counts))
        if total == 0:
            return np.empty(0, np.uint32), np.empty(0, np.uint32)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        out_r, out_r_ref = arena.empty(total, np.uint32)
        out_s, out_s_ref = arena.empty(total, np.uint32)
        pool.run("expand_write", [
            dict(group_keys=gk_ref, group_start=gs_ref, group_count=gc_ref,
                 r_pays_sorted=rp_ref, s_keys=sk_ref, s_payloads=sp_ref,
                 out_r=out_r_ref, out_s=out_s_ref, a=a, b=b,
                 offset=int(offsets[i]))
            for i, (a, b) in enumerate(morsels) if counts[i]
        ])
        if pool.uses_processes:
            return out_r.copy(), out_s.copy()
        return out_r, out_s


def per_key_match_counts(
    query_keys: np.ndarray, target_keys: np.ndarray
) -> np.ndarray:
    """For each query key, how many target tuples share it."""
    impl = dispatch(_per_key_match_counts_scalar, _per_key_match_counts_vector)
    return impl(query_keys, target_keys)


def _per_key_match_counts_scalar(
    query_keys: np.ndarray, target_keys: np.ndarray
) -> np.ndarray:
    if target_keys.size == 0 or query_keys.size == 0:
        return np.zeros(query_keys.size, dtype=np.int64)
    counts: Dict[int, int] = {}
    for k in target_keys.tolist():
        counts[k] = counts.get(k, 0) + 1
    out = np.empty(query_keys.size, dtype=np.int64)
    for i, k in enumerate(query_keys.tolist()):
        out[i] = counts.get(k, 0)
    return out


def _per_key_match_counts_vector(
    query_keys: np.ndarray, target_keys: np.ndarray
) -> np.ndarray:
    if target_keys.size == 0 or query_keys.size == 0:
        return np.zeros(query_keys.size, dtype=np.int64)
    t_uniq, t_counts = np.unique(target_keys, return_counts=True)
    pos = np.searchsorted(t_uniq, query_keys)
    pos_clipped = np.minimum(pos, t_uniq.size - 1)
    hit = t_uniq[pos_clipped] == query_keys
    return np.where(hit, t_counts[pos_clipped], 0).astype(np.int64)
