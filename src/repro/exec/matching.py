"""Key-equality matching helpers shared by CPU and GPU executors.

These compute the exact join output (count, checksum, and materialized
pairs while small) between two tuple sets, group-wise by key.  They are the
functional core every probe implementation delegates to; operation
*accounting* stays in the callers, which know what the scalar/SIMT
algorithm would have paid.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exec.output import JoinOutputBuffer, OutputSummary

_U64_MASK = (1 << 64) - 1

#: Materialize real output pairs only while the expansion stays this small;
#: beyond it only the closed-form count/checksum is recorded.
MATERIALIZE_LIMIT = 1 << 21


def match_group_stats(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[int, int]:
    """Exact (count, checksum) of the equi-join of two tuple sets."""
    if r_keys.size == 0 or s_keys.size == 0:
        return 0, 0
    r_uniq, r_inv = np.unique(r_keys, return_inverse=True)
    s_uniq, s_inv = np.unique(s_keys, return_inverse=True)
    shared, idx_r, idx_s = np.intersect1d(
        r_uniq, s_uniq, assume_unique=True, return_indices=True
    )
    if shared.size == 0:
        return 0, 0
    r_counts = np.bincount(r_inv, minlength=r_uniq.size)
    s_counts = np.bincount(s_inv, minlength=s_uniq.size)
    total = int(np.sum(r_counts[idx_r].astype(object)
                       * s_counts[idx_s].astype(object)))
    r_sums = np.zeros(r_uniq.size, dtype=np.uint64)
    s_sums = np.zeros(s_uniq.size, dtype=np.uint64)
    np.add.at(r_sums, r_inv, r_payloads.astype(np.uint64))
    np.add.at(s_sums, s_inv, s_payloads.astype(np.uint64))
    checksum = int(np.sum(r_sums[idx_r] * s_sums[idx_s], dtype=np.uint64))
    return total, checksum & _U64_MASK


def emit_matches(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
    buffer: JoinOutputBuffer,
) -> OutputSummary:
    """Join two tuple sets on key equality and feed the output buffer.

    Real pairs are written to the ring while the expansion is small; beyond
    :data:`MATERIALIZE_LIMIT` the buffer receives the closed-form summary
    only (overwrite-on-full semantics discard the bulk anyway).
    """
    summary = OutputSummary()
    total, checksum = match_group_stats(r_keys, r_payloads, s_keys, s_payloads)
    if total == 0:
        return summary
    if total <= MATERIALIZE_LIMIT:
        pairs_r, pairs_s = expand_pairs(r_keys, r_payloads, s_keys, s_payloads)
        buffer.write_pairs(pairs_r, pairs_s)
    else:
        buffer.count += total
        buffer.checksum = (buffer.checksum + checksum) & _U64_MASK
    summary.add_pairs_sum(total, checksum)
    return summary


def expand_pairs(
    r_keys: np.ndarray,
    r_payloads: np.ndarray,
    s_keys: np.ndarray,
    s_payloads: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Materialize all matching (r_payload, s_payload) pairs, vectorized."""
    if r_keys.size == 0 or s_keys.size == 0:
        return np.empty(0, np.uint32), np.empty(0, np.uint32)
    r_order = np.argsort(r_keys, kind="stable")
    rk = r_keys[r_order]
    rp = r_payloads[r_order]
    group_keys, group_start = np.unique(rk, return_index=True)
    group_count = np.diff(np.append(group_start, rk.size))
    pos = np.searchsorted(group_keys, s_keys)
    pos = np.clip(pos, 0, max(group_keys.size - 1, 0))
    hit = (group_keys[pos] == s_keys) if group_keys.size else np.zeros(
        s_keys.size, bool)
    cnt_per_s = np.where(hit, group_count[pos], 0)
    total = int(cnt_per_s.sum())
    if total == 0:
        return np.empty(0, np.uint32), np.empty(0, np.uint32)
    s_rep = np.repeat(np.arange(s_keys.size), cnt_per_s)
    run_origin = np.repeat(np.cumsum(cnt_per_s) - cnt_per_s, cnt_per_s)
    within = np.arange(total) - run_origin
    r_idx = np.repeat(np.where(hit, group_start[pos], 0), cnt_per_s) + within
    return rp[r_idx], s_payloads[s_rep]


def per_key_match_counts(
    query_keys: np.ndarray, target_keys: np.ndarray
) -> np.ndarray:
    """For each query key, how many target tuples share it."""
    if target_keys.size == 0 or query_keys.size == 0:
        return np.zeros(query_keys.size, dtype=np.int64)
    t_uniq, t_counts = np.unique(target_keys, return_counts=True)
    pos = np.searchsorted(t_uniq, query_keys)
    pos_clipped = np.minimum(pos, t_uniq.size - 1)
    hit = t_uniq[pos_clipped] == query_keys
    return np.where(hit, t_counts[pos_clipped], 0).astype(np.int64)
