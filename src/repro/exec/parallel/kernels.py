"""Worker-side compute kernels for the parallel backend.

Each kernel is a pure function over arena-attached arrays: no fault
scopes, no tracer, no counters.  All accounting (operation counters,
simulated seconds, fault injection and recovery) stays in the driver,
which is what keeps every backend's observable results bit-identical —
a worker can die or be re-ordered without the cost model noticing.

Every kernel mirrors one segment/morsel of the corresponding vector
implementation exactly (same numpy expressions, same stable sorts), so
that concatenating the morsel results reproduces the vector arrays
bit-for-bit.  The differential suite pins this down per algorithm.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exec.parallel.arena import ArrayRef, attached


def worker_identity() -> int:
    """The executing process id (pool diagnostics and tests)."""
    return os.getpid()


def partition_hist(ids: ArrayRef, a: int, b: int, fanout: int) -> np.ndarray:
    """First scan of one segment: the per-thread partition histogram."""
    if b <= a:
        return np.zeros(fanout, dtype=np.int64)
    with attached(ids) as (ids_arr,):
        return np.bincount(ids_arr[a:b], minlength=fanout)


def partition_scatter(
    keys: ArrayRef, payloads: ArrayRef, hashes: ArrayRef, ids: ArrayRef,
    keys_out: ArrayRef, pays_out: ArrayRef, hashes_out: ArrayRef,
    a: int, b: int, base_row: np.ndarray, counts_row: np.ndarray,
) -> None:
    """Second scan of one segment: the contention-free fancy-index scatter.

    ``base_row``/``counts_row`` are this thread's rows of the prefix-sum
    base matrix and histogram — small arrays shipped with the task, so the
    destinations are disjoint across segments by construction.
    """
    if b <= a:
        return None
    with attached(keys, payloads, hashes, ids,
                  keys_out, pays_out, hashes_out) as (
            k, p, h, i, ko, po, ho):
        seg_ids = i[a:b]
        order = np.argsort(seg_ids, kind="stable")
        run_start = np.repeat(base_row, counts_row)
        run_origin = np.repeat(np.cumsum(counts_row) - counts_row, counts_row)
        dest = run_start + (np.arange(b - a) - run_origin)
        ko[dest] = k[a:b][order]
        po[dest] = p[a:b][order]
        ho[dest] = h[a:b][order]
    return None


def refine_chunk(
    keys: ArrayRef, payloads: ArrayRef, hashes: ArrayRef, ids: ArrayRef,
    keys_out: ArrayRef, pays_out: ArrayRef, hashes_out: ArrayRef,
    bounds: Sequence[Tuple[int, int]], sub_fanout: int,
) -> np.ndarray:
    """Refine a chunk of parent partitions, one stable argsort each.

    ``bounds`` holds each partition's [lo, hi) span; partitions only ever
    move tuples within their own span, so chunks are contention free.
    Returns the (len(bounds), sub_fanout) sub-size matrix.
    """
    sub_sizes = np.empty((len(bounds), sub_fanout), dtype=np.int64)
    with attached(keys, payloads, hashes, ids,
                  keys_out, pays_out, hashes_out) as (
            k, p, h, i, ko, po, ho):
        for j, (lo, hi) in enumerate(bounds):
            pid = i[lo:hi]
            order = np.argsort(pid, kind="stable")
            ko[lo:hi] = k[lo:hi][order]
            po[lo:hi] = p[lo:hi][order]
            ho[lo:hi] = h[lo:hi][order]
            sub_sizes[j] = np.bincount(pid, minlength=sub_fanout)
    return sub_sizes


def chain_links(
    buckets: ArrayRef, nxt: ArrayRef, a: int, b: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Local head-insertion chain links for build entries [a, b).

    Writes the within-segment ``next`` links into the shared ``nxt`` array
    (disjoint slice per segment; entries with no in-segment predecessor
    keep the driver's -1 fill) and returns, per bucket present in the
    segment, (bucket id, first entry index, last entry index) in segment
    order — the compact summary the driver stitches across segments.
    """
    empty = np.empty(0, dtype=np.int64)
    if b <= a:
        return empty, empty, empty
    with attached(buckets, nxt) as (bk, nx):
        seg = bk[a:b]
        order = np.argsort(seg, kind="stable")
        sorted_b = seg[order]
        m = b - a
        if m > 1:
            same = sorted_b[1:] == sorted_b[:-1]
            nx[a + order[1:][same]] = a + order[:-1][same]
        is_last = np.empty(m, dtype=bool)
        is_last[:-1] = sorted_b[:-1] != sorted_b[1:]
        is_last[-1] = True
        is_first = np.empty(m, dtype=bool)
        is_first[0] = True
        is_first[1:] = is_last[:-1]
        uniq = sorted_b[is_first].astype(np.int64)
        first_idx = (a + order[is_first]).astype(np.int64)
        last_idx = (a + order[is_last]).astype(np.int64)
    return uniq, first_idx, last_idx


def match_stats(
    r_uniq: ArrayRef, r_counts: ArrayRef, r_sums: ArrayRef,
    s_keys: ArrayRef, s_payloads: ArrayRef, a: int, b: int,
) -> Tuple[int, int]:
    """Join (count, checksum mod 2**64) of one S morsel against the R index.

    Checksum distributivity: summing ``r_sums[key] * s_payload`` per S
    tuple equals the vector backend's per-key ``r_sums * s_sums`` products
    exactly, because multiplication distributes over addition mod 2**64.
    """
    if b <= a:
        return 0, 0
    with attached(r_uniq, r_counts, r_sums, s_keys, s_payloads) as (
            ru, rc, rs, sk, sp):
        seg_keys = sk[a:b]
        if ru.size == 0:
            return 0, 0
        pos = np.searchsorted(ru, seg_keys)
        pos = np.minimum(pos, ru.size - 1)
        hit = ru[pos] == seg_keys
        total = int(rc[pos][hit].sum())
        checksum = int(np.sum(rs[pos][hit] * sp[a:b][hit].astype(np.uint64),
                              dtype=np.uint64))
    return total, checksum


def expand_count(
    group_keys: ArrayRef, group_count: ArrayRef, s_keys: ArrayRef,
    a: int, b: int,
) -> int:
    """Output pairs one S morsel will produce (round 1 of expansion)."""
    if b <= a:
        return 0
    with attached(group_keys, group_count, s_keys) as (gk, gc, sk):
        seg_keys = sk[a:b]
        if gk.size == 0:
            return 0
        pos = np.searchsorted(gk, seg_keys)
        pos = np.minimum(pos, gk.size - 1)
        hit = gk[pos] == seg_keys
        return int(gc[pos][hit].sum())


def expand_write(
    group_keys: ArrayRef, group_start: ArrayRef, group_count: ArrayRef,
    r_pays_sorted: ArrayRef, s_keys: ArrayRef, s_payloads: ArrayRef,
    out_r: ArrayRef, out_s: ArrayRef, a: int, b: int, offset: int,
) -> None:
    """Write one S morsel's expanded pairs at its prefix-sum offset.

    Pair order within the morsel matches the vector expansion: by S tuple,
    then by R insertion order within the key (``r_pays_sorted`` is the
    stable key-sorted payload array, so ``group_start + within`` walks R
    tuples of a key in insertion order).
    """
    if b <= a:
        return None
    with attached(group_keys, group_start, group_count, r_pays_sorted,
                  s_keys, s_payloads, out_r, out_s) as (
            gk, gs, gc, rp, sk, sp, o_r, o_s):
        seg_keys = sk[a:b]
        if gk.size == 0:
            return None
        pos = np.searchsorted(gk, seg_keys)
        pos = np.minimum(pos, gk.size - 1)
        hit = gk[pos] == seg_keys
        cnt_per_s = np.where(hit, gc[pos], 0)
        total = int(cnt_per_s.sum())
        if total == 0:
            return None
        s_rep = np.repeat(np.arange(a, b), cnt_per_s)
        run_origin = np.repeat(np.cumsum(cnt_per_s) - cnt_per_s, cnt_per_s)
        within = np.arange(total) - run_origin
        r_idx = np.repeat(np.where(hit, gs[pos], 0), cnt_per_s) + within
        o_r[offset:offset + total] = rp[r_idx]
        o_s[offset:offset + total] = sp[s_rep]
    return None


#: Name -> callable registry; tasks name their kernel so only small,
#: picklable payloads ever cross the queue.
KERNELS: Dict[str, object] = {
    "worker_identity": worker_identity,
    "partition_hist": partition_hist,
    "partition_scatter": partition_scatter,
    "refine_chunk": refine_chunk,
    "chain_links": chain_links,
    "match_stats": match_stats,
    "expand_count": expand_count,
    "expand_write": expand_write,
}


def run_kernel(name: str, kwargs: Dict) -> object:
    """Execute one named kernel (the worker main loop's dispatch)."""
    return KERNELS[name](**kwargs)
