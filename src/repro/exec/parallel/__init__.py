"""Morsel-driven multicore execution over shared-memory arenas.

The third execution backend (``REPRO_BACKEND=parallel``): a persistent
:class:`~repro.exec.parallel.pool.WorkerPool` of real processes computes
the dominant vector phases — partition scatter/refine, chained-table
build, match-group stats and pair expansion — over
``multiprocessing.shared_memory`` arenas, one morsel at a time.

Division of labour:

* the **driver** (the ordinary pipeline code) decomposes each phase into
  the same per-thread segments and queue tasks the simulated
  :class:`~repro.cpu.threads.ThreadPool` prices, performs all operation
  accounting and fault injection, and merges morsel results with
  order-independent or index-ordered reductions;
* **workers** are pure compute (see :mod:`repro.exec.parallel.kernels`).

That split is what makes the backend observationally identical to
``vector``: counters, simulated seconds, output count/checksum, trace
structure, and fault behaviour cannot depend on the real worker count.

:func:`morsel_pool` is the single gate the hot paths consult: it returns
the pool only when the parallel backend is active, usable on this host,
and the phase is large enough to amortize morsel overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.exec.parallel.arena import ArrayRef, SharedArena, shared_memory_probe
from repro.exec.parallel.pool import (
    DEFAULT_MAX_RESPAWNS,
    DEFAULT_MIN_PARALLEL_TUPLES,
    MIN_TUPLES_ENV,
    RESPAWNS_ENV,
    WORKERS_ENV,
    WorkerPool,
    availability,
    current_liveness,
    current_pool,
    get_pool,
    min_parallel_tuples,
    reset_availability_cache,
    respawn_budget,
    shutdown_pool,
    worker_count,
)

#: Morsels handed out per worker for internal (unpriced) fan-out, so the
#: queue always holds spare morsels for early finishers to steal.
MORSELS_PER_WORKER = 2

_warned_exhausted = False


def reset_exhaustion_warning() -> None:
    """Re-arm the warn-once exhaustion message (tests)."""
    global _warned_exhausted
    _warned_exhausted = False


def morsel_pool(n_tuples: int) -> Optional[WorkerPool]:
    """The pool to run an ``n_tuples``-sized phase on, or None.

    None means "stay on the vector path": the parallel backend is not the
    ambient backend, shared memory is unusable here, the phase is too
    small to engage the pool (``REPRO_PARALLEL_MIN_TUPLES``), or the
    pool's worker-respawn budget is exhausted — the last case warns once
    and degrades every later phase to the (bit-identical) vector
    rendition, mirroring the GPU -> CPU fallback ladder.
    """
    from repro.exec.backend import PARALLEL, current_backend
    if current_backend() != PARALLEL:
        return None
    usable, _reason = availability()
    if not usable:
        return None
    if n_tuples < min_parallel_tuples():
        return None
    pool = get_pool()
    pool.heal()
    if pool.exhausted:
        global _warned_exhausted
        if not _warned_exhausted:
            _warned_exhausted = True
            import warnings
            warnings.warn(
                "parallel worker pool exhausted its respawn budget "
                f"({pool.respawns}/{pool.max_respawns} used); degrading "
                "to the vector backend rendition",
                RuntimeWarning, stacklevel=2)
        return None
    return pool


__all__ = [
    "ArrayRef",
    "DEFAULT_MAX_RESPAWNS",
    "DEFAULT_MIN_PARALLEL_TUPLES",
    "MIN_TUPLES_ENV",
    "MORSELS_PER_WORKER",
    "RESPAWNS_ENV",
    "SharedArena",
    "WORKERS_ENV",
    "WorkerPool",
    "availability",
    "current_liveness",
    "current_pool",
    "get_pool",
    "min_parallel_tuples",
    "morsel_pool",
    "reset_availability_cache",
    "reset_exhaustion_warning",
    "respawn_budget",
    "shutdown_pool",
    "worker_count",
]
