"""The persistent worker pool behind the ``parallel`` backend.

One pool per process, sized by ``REPRO_WORKERS`` (default: the machine's
core count).  Workers are long-lived daemon processes pulling (kernel
name, task id, kwargs) tuples off a single shared queue — morsel-driven
scheduling: whichever worker frees up first takes the next morsel, so a
skewed morsel never idles the rest of the pool.  Results return tagged
with their task id, so completion order is irrelevant.

With one worker the pool runs **inline**: morsels execute in-process
through the same kernel registry with no shared memory and no queues.
Single-core machines (and the tiny inputs of the test grid) therefore
pay nothing for selecting the parallel backend.

The pool **self-heals**: a worker that dies (OOM-killed, segfaulted, or
chaos-killed) is detected by the result-drain liveness poll and by
explicit :meth:`WorkerPool.heal` probes, and is respawned up to a
bounded budget (``REPRO_WORKER_RESPAWNS``).  Outstanding morsels of the
interrupted run are re-enqueued exactly once — tasks are tagged with a
per-run generation, so duplicate or stale results are discarded, and
kernels are pure, so a morsel computed twice writes identical bytes.
When the budget is exhausted the pool finishes in-flight morsels inline
and degrades: :func:`morsel_pool` then routes future phases to the
vector path with a one-time warning, mirroring the GPU -> CPU fallback
ladder.

Determinism does not depend on the worker count: morsel decomposition is
fixed by the driver (the same per-thread segments the simulated
:class:`~repro.cpu.threads.ThreadPool` prices), and every merge the
driver performs is order-independent or index-ordered.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
import signal
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExecutionError
from repro.exec.cancel import checkpoint
from repro.exec.parallel.arena import shared_memory_probe

#: Environment variable fixing the pool size (default: os.cpu_count()).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable for the morsel engagement threshold, in tuples.
MIN_TUPLES_ENV = "REPRO_PARALLEL_MIN_TUPLES"

#: Environment variable bounding worker respawns per pool lifetime.
RESPAWNS_ENV = "REPRO_WORKER_RESPAWNS"

#: Default respawn budget: enough to ride out sporadic kills, small
#: enough that a crash-looping kernel degrades quickly.
DEFAULT_MAX_RESPAWNS = 3

#: Below this many tuples a phase stays on the inline vector path: queue
#: and attach latency would dwarf the compute of a tiny morsel.
DEFAULT_MIN_PARALLEL_TUPLES = 16384

#: Seconds between liveness checks while draining results.
_RESULT_POLL_SECONDS = 1.0


def worker_count() -> int:
    """The configured pool size: ``REPRO_WORKERS``, else the core count."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return max(os.cpu_count() or 1, 1)
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}",
            env=WORKERS_ENV, value=raw,
        ) from None
    if n <= 0:
        raise ConfigError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}",
            env=WORKERS_ENV, value=raw,
        )
    return n


def respawn_budget() -> int:
    """The respawn budget: ``REPRO_WORKER_RESPAWNS``, else the default."""
    raw = os.environ.get(RESPAWNS_ENV, "").strip()
    if not raw:
        return DEFAULT_MAX_RESPAWNS
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(
            f"{RESPAWNS_ENV} must be a non-negative integer, got {raw!r}",
            env=RESPAWNS_ENV, value=raw,
        ) from None
    if n < 0:
        raise ConfigError(
            f"{RESPAWNS_ENV} must be a non-negative integer, got {raw!r}",
            env=RESPAWNS_ENV, value=raw,
        )
    return n


def min_parallel_tuples() -> int:
    """The engagement threshold: phases below it stay on the vector path."""
    raw = os.environ.get(MIN_TUPLES_ENV, "").strip()
    if not raw:
        return DEFAULT_MIN_PARALLEL_TUPLES
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(
            f"{MIN_TUPLES_ENV} must be a non-negative integer, got {raw!r}",
            env=MIN_TUPLES_ENV, value=raw,
        ) from None
    if n < 0:
        raise ConfigError(
            f"{MIN_TUPLES_ENV} must be a non-negative integer, got {raw!r}",
            env=MIN_TUPLES_ENV, value=raw,
        )
    return n


def _worker_main(tasks, results) -> None:  # pragma: no cover - subprocess
    """Worker loop: pull morsels until the None sentinel arrives.

    A kernel failure is reported as a *sentinel result* — ``(generation,
    task_id, False, message)`` — so the driver distinguishes "the kernel
    raised" (worker still alive, typed error) from "the worker died"
    (no result at all, detected by the liveness poll).
    """
    from repro.exec.parallel.kernels import run_kernel
    while True:
        item = tasks.get()
        if item is None:
            return
        generation, kernel, task_id, kwargs = item
        try:
            results.put((generation, task_id, True,
                         run_kernel(kernel, kwargs)))
        except BaseException as exc:
            results.put((generation, task_id, False,
                         f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """A fixed set of worker processes fed from one morsel queue."""

    def __init__(self, n_workers: int,
                 max_respawns: Optional[int] = None):
        if n_workers <= 0:
            raise ConfigError(
                f"worker count must be positive, got {n_workers}")
        self.n_workers = int(n_workers)
        self.max_respawns = (respawn_budget() if max_respawns is None
                             else int(max_respawns))
        self.respawns = 0
        #: True once workers died beyond the respawn budget; the pool
        #: tears its processes down (their queues may be poisoned) and
        #: :func:`morsel_pool` stops engaging it (vector degradation,
        #: warn-once).
        self.exhausted = False
        #: Seconds between liveness polls while draining results (tests
        #: shrink this so healing paths run fast).
        self.poll_seconds = _RESULT_POLL_SECONDS
        self._generation = 0
        self._procs: List = []
        self._ctx = None
        self._tasks = None
        self._results = None
        if self.n_workers > 1:
            import multiprocessing as mp
            # fork shares the (copy-on-write) interpreter state; spawn is
            # the portable fallback where fork is unavailable.
            method = ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")
            self._ctx = mp.get_context(method)
            self._tasks = self._ctx.Queue()
            self._results = self._ctx.Queue()
            for _ in range(self.n_workers):
                self._procs.append(self._spawn_worker())

    def _spawn_worker(self):
        proc = self._ctx.Process(target=_worker_main,
                                 args=(self._tasks, self._results),
                                 daemon=True)
        proc.start()
        return proc

    @property
    def uses_processes(self) -> bool:
        """False for the inline single-worker pool."""
        return bool(self._procs)

    def alive_workers(self) -> int:
        """Worker processes currently alive (inline pools count as 1)."""
        if not self.uses_processes:
            return 0 if self.exhausted else 1
        return sum(1 for p in self._procs if p.is_alive())

    def liveness(self) -> Dict[str, object]:
        """Per-pool health snapshot (the serve ``health`` verb's source)."""
        return {
            "workers": self.n_workers,
            "alive": self.alive_workers(),
            "processes": self.uses_processes,
            "respawns": self.respawns,
            "max_respawns": self.max_respawns,
            "exhausted": self.exhausted,
        }

    def heal(self) -> int:
        """Liveness probe: detect dead workers and rebuild within budget.

        Returns the number of dead workers healed.  Called by the result
        drain when it notices silence, and by the serve health probe, so
        a chaos-killed worker is replaced before the next phase needs it.

        Healing is a full rebuild — fresh queues, fresh complement — not
        a per-slot respawn: a SIGKILLed worker can die *while holding the
        shared task/result queue's reader lock*, which poisons the queue
        for every survivor and any respawn attached to it.  Survivors
        are migrated to the new queues (terminated and respawned; only
        the deaths are charged to the budget).  When the budget cannot
        cover the deaths the pool tears its processes down and marks
        itself :attr:`exhausted` instead of raising — degradation is the
        backend gate's job, and in-flight morsels finish inline.
        """
        if not self.uses_processes:
            return 0
        dead = sum(1 for p in self._procs if not p.is_alive())
        if not dead:
            return 0
        for proc in self._procs:
            if not proc.is_alive():
                proc.join(timeout=0)  # reap the zombie
        if self.respawns + dead > self.max_respawns:
            self.exhausted = True
            self._teardown_processes()
            return 0
        self.respawns += dead
        self._teardown_processes()
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs = [self._spawn_worker()
                       for _ in range(self.n_workers)]
        return dead

    def _teardown_processes(self) -> None:
        """Stop every worker process and discard the (possibly poisoned)
        queues; keeps the context so :meth:`heal` can rebuild."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - unkillable via TERM
                proc.kill()
                proc.join(timeout=1.0)
        for q in (self._tasks, self._results):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()  # unsent items may be stranded
            except Exception:  # pragma: no cover
                pass
        self._procs = []
        self._tasks = None
        self._results = None

    def kill_worker(self, index: int = 0) -> Optional[int]:
        """SIGKILL one worker (chaos harness / tests); returns its pid."""
        if not self.uses_processes or index >= len(self._procs):
            return None
        proc = self._procs[index]
        if proc.pid is None or not proc.is_alive():
            return None
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=5.0)
        return proc.pid

    def run(self, kernel: str, task_specs: Sequence[Dict]) -> List:
        """Execute one kernel over all morsels; results in task order.

        Inline pools call the kernel directly; process pools enqueue
        every morsel at once and drain tagged results.  A worker that
        *reports* a failure raises a typed :class:`ExecutionError`; a
        worker that *dies* triggers healing — respawn within budget,
        outstanding morsels re-enqueued exactly once — and only an
        unservable remainder falls back to inline completion.
        """
        from repro.exec.parallel.kernels import run_kernel
        if not self.uses_processes:
            return [run_kernel(kernel, spec) for spec in task_specs]
        self._generation += 1
        generation = self._generation
        self._drain_stale_results()
        pending: Dict[int, Dict] = dict(enumerate(task_specs))
        out: List = [None] * len(task_specs)
        for task_id, spec in pending.items():
            self._tasks.put((generation, kernel, task_id, spec))
        while pending:
            checkpoint(kernel=kernel, pending=len(pending))
            try:
                item = self._results.get(timeout=self.poll_seconds)
            except queue_mod.Empty:
                self._recover_lost(kernel, generation, pending, out)
                continue
            r_generation, task_id, ok, payload = item
            if r_generation != generation or task_id not in pending:
                continue  # stale generation or duplicate re-enqueue
            if not ok:
                raise ExecutionError(
                    f"parallel worker failed in kernel {kernel!r}: {payload}",
                    kernel=kernel, task_id=task_id, detail=str(payload),
                )
            out[task_id] = payload
            del pending[task_id]
        return out

    def _drain_stale_results(self) -> None:
        """Discard results a dead-and-healed previous run left behind."""
        while True:
            try:
                self._results.get_nowait()
            except queue_mod.Empty:
                return

    def _recover_lost(self, kernel: str, generation: int,
                      pending: Dict[int, Dict], out: List) -> None:
        """The drain went silent: check liveness, heal, re-enqueue.

        A dead worker takes whatever morsels it (and the discarded task
        queue) held with it; healing rebuilds the queues, so every
        still-pending morsel goes on the fresh queue exactly once.
        Results from before the rebuild are gone with the old queue and
        stale generations are discarded, so no morsel is double-counted
        — and kernels are pure, so a recomputed morsel writes identical
        bytes.
        """
        dead = [p.pid for p in self._procs if not p.is_alive()]
        if not dead:
            return  # just slow; keep waiting
        self.heal()
        if self.alive_workers() > 0:
            for task_id in sorted(pending):
                self._tasks.put((generation, kernel, task_id,
                                 pending[task_id]))
            return
        # Every worker is gone and the budget is spent: finish the
        # remaining morsels inline (same pure kernels, same bytes) so
        # the caller still gets its answer, then stay degraded.
        from repro.exec.parallel.kernels import run_kernel
        self.exhausted = True
        for task_id in sorted(pending):
            out[task_id] = run_kernel(kernel, pending[task_id])
        pending.clear()

    def shutdown(self) -> None:
        """Stop every worker and release the queues (idempotent).

        Escalates: sentinel -> join(2s) -> terminate -> join(1s) ->
        kill -> join.  The final ``kill()`` is what guarantees repeated
        pool cycling (tests, ``REPRO_WORKERS`` changes) cannot leak
        processes or their queue semaphores.

        Safe on a pool that never started: a partially-constructed
        instance (``__init__`` raised, or a test built one via
        ``__new__``) has no processes and possibly no attributes at all,
        and a second call after a completed shutdown finds everything
        already cleared — both are no-ops, never ``AttributeError``.
        """
        procs = getattr(self, "_procs", None) or []
        tasks = getattr(self, "_tasks", None)
        results = getattr(self, "_results", None)
        if procs and tasks is not None:
            for _ in procs:
                try:
                    tasks.put(None)
                except Exception:  # pragma: no cover - queue torn down
                    break
        for proc in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - unkillable via TERM
                proc.kill()
                proc.join(timeout=1.0)
        if procs and results is not None:
            self._drain_stale_results()
        for q in (tasks, results):
            if q is None:
                continue
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover
                pass
        self._procs = []
        self._ctx = None
        self._tasks = None
        self._results = None


_pool: Optional[WorkerPool] = None
_atexit_registered = False
_availability: Optional[Tuple[bool, Optional[str]]] = None


def availability() -> Tuple[bool, Optional[str]]:
    """(usable, reason): whether the parallel backend can run here.

    The probe creates and unlinks one tiny shared-memory segment; the
    result is cached for the process.  A False verdict makes the backend
    layer fall back to ``vector`` with a warning (or raise a typed
    :class:`~repro.errors.ConfigError` via ``require_parallel``).
    """
    global _availability
    if _availability is None:
        reason = shared_memory_probe()
        _availability = (reason is None, reason)
    return _availability


def reset_availability_cache() -> None:
    """Forget the cached probe (tests monkeypatching the environment)."""
    global _availability
    _availability = None


def get_pool() -> WorkerPool:
    """The process-wide pool, (re)built when ``REPRO_WORKERS`` changes."""
    global _pool, _atexit_registered
    n = worker_count()
    if _pool is None or _pool.n_workers != n:
        if _pool is not None:
            _pool.shutdown()
        _pool = WorkerPool(n)
        if not _atexit_registered:
            atexit.register(shutdown_pool)
            _atexit_registered = True
    return _pool


def current_pool() -> Optional[WorkerPool]:
    """The live pool if one exists — never creates one (health probes)."""
    return _pool


def current_liveness(heal: bool = False) -> Optional[Dict[str, object]]:
    """Liveness of the existing pool, or None when no pool was built.

    ``heal=True`` lets the probe double as the self-healing trigger: the
    serve ``health`` verb respawns chaos-killed workers (within budget)
    as a side effect of looking at them.
    """
    if _pool is None:
        return None
    if heal:
        _pool.heal()
    return _pool.liveness()


def shutdown_pool() -> None:
    """Tear down the process-wide pool (tests and interpreter exit)."""
    global _pool
    if _pool is not None:
        _pool.shutdown()
        _pool = None
