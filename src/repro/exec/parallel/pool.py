"""The persistent worker pool behind the ``parallel`` backend.

One pool per process, sized by ``REPRO_WORKERS`` (default: the machine's
core count).  Workers are long-lived daemon processes pulling (kernel
name, task id, kwargs) tuples off a single shared queue — morsel-driven
scheduling: whichever worker frees up first takes the next morsel, so a
skewed morsel never idles the rest of the pool.  Results return tagged
with their task id, so completion order is irrelevant.

With one worker the pool runs **inline**: morsels execute in-process
through the same kernel registry with no shared memory and no queues.
Single-core machines (and the tiny inputs of the test grid) therefore
pay nothing for selecting the parallel backend.

Determinism does not depend on the worker count: morsel decomposition is
fixed by the driver (the same per-thread segments the simulated
:class:`~repro.cpu.threads.ThreadPool` prices), and every merge the
driver performs is order-independent or index-ordered.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExecutionError
from repro.exec.parallel.arena import shared_memory_probe

#: Environment variable fixing the pool size (default: os.cpu_count()).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable for the morsel engagement threshold, in tuples.
MIN_TUPLES_ENV = "REPRO_PARALLEL_MIN_TUPLES"

#: Below this many tuples a phase stays on the inline vector path: queue
#: and attach latency would dwarf the compute of a tiny morsel.
DEFAULT_MIN_PARALLEL_TUPLES = 16384

#: Seconds between liveness checks while draining results.
_RESULT_POLL_SECONDS = 1.0


def worker_count() -> int:
    """The configured pool size: ``REPRO_WORKERS``, else the core count."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return max(os.cpu_count() or 1, 1)
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}",
            env=WORKERS_ENV, value=raw,
        ) from None
    if n <= 0:
        raise ConfigError(
            f"{WORKERS_ENV} must be a positive integer, got {raw!r}",
            env=WORKERS_ENV, value=raw,
        )
    return n


def min_parallel_tuples() -> int:
    """The engagement threshold: phases below it stay on the vector path."""
    raw = os.environ.get(MIN_TUPLES_ENV, "").strip()
    if not raw:
        return DEFAULT_MIN_PARALLEL_TUPLES
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(
            f"{MIN_TUPLES_ENV} must be a non-negative integer, got {raw!r}",
            env=MIN_TUPLES_ENV, value=raw,
        ) from None
    if n < 0:
        raise ConfigError(
            f"{MIN_TUPLES_ENV} must be a non-negative integer, got {raw!r}",
            env=MIN_TUPLES_ENV, value=raw,
        )
    return n


def _worker_main(tasks, results) -> None:  # pragma: no cover - subprocess
    """Worker loop: pull morsels until the None sentinel arrives."""
    from repro.exec.parallel.kernels import run_kernel
    while True:
        item = tasks.get()
        if item is None:
            return
        kernel, task_id, kwargs = item
        try:
            results.put((task_id, True, run_kernel(kernel, kwargs)))
        except BaseException as exc:
            results.put((task_id, False, f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """A fixed set of worker processes fed from one morsel queue."""

    def __init__(self, n_workers: int):
        if n_workers <= 0:
            raise ConfigError(
                f"worker count must be positive, got {n_workers}")
        self.n_workers = int(n_workers)
        self._procs: List = []
        self._tasks = None
        self._results = None
        if self.n_workers > 1:
            import multiprocessing as mp
            # fork shares the (copy-on-write) interpreter state; spawn is
            # the portable fallback where fork is unavailable.
            method = ("fork" if "fork" in mp.get_all_start_methods()
                      else "spawn")
            ctx = mp.get_context(method)
            self._tasks = ctx.Queue()
            self._results = ctx.Queue()
            for _ in range(self.n_workers):
                proc = ctx.Process(target=_worker_main,
                                   args=(self._tasks, self._results),
                                   daemon=True)
                proc.start()
                self._procs.append(proc)

    @property
    def uses_processes(self) -> bool:
        """False for the inline single-worker pool."""
        return bool(self._procs)

    def run(self, kernel: str, task_specs: Sequence[Dict]) -> List:
        """Execute one kernel over all morsels; results in task order.

        Inline pools call the kernel directly; process pools enqueue every
        morsel at once and drain tagged results, raising a typed
        :class:`ExecutionError` on a worker failure or death.
        """
        from repro.exec.parallel.kernels import run_kernel
        if not self.uses_processes:
            return [run_kernel(kernel, spec) for spec in task_specs]
        for task_id, spec in enumerate(task_specs):
            self._tasks.put((kernel, task_id, spec))
        out: List = [None] * len(task_specs)
        for _ in range(len(task_specs)):
            task_id, ok, payload = self._next_result(kernel)
            if not ok:
                raise ExecutionError(
                    f"parallel worker failed in kernel {kernel!r}: {payload}",
                    kernel=kernel, task_id=task_id, detail=str(payload),
                )
            out[task_id] = payload
        return out

    def _next_result(self, kernel: str) -> Tuple:
        while True:
            try:
                return self._results.get(timeout=_RESULT_POLL_SECONDS)
            except queue_mod.Empty:
                dead = [p.pid for p in self._procs if not p.is_alive()]
                if dead:
                    raise ExecutionError(
                        f"parallel worker process died during kernel "
                        f"{kernel!r}", kernel=kernel, dead_pids=dead,
                    ) from None

    def shutdown(self) -> None:
        """Stop every worker and release the queues (idempotent)."""
        if not self._procs:
            return
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except Exception:  # pragma: no cover - queue already torn down
                break
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._tasks, self._results):
            try:
                q.close()
                q.join_thread()
            except Exception:  # pragma: no cover
                pass
        self._procs = []
        self._tasks = None
        self._results = None


_pool: Optional[WorkerPool] = None
_atexit_registered = False
_availability: Optional[Tuple[bool, Optional[str]]] = None


def availability() -> Tuple[bool, Optional[str]]:
    """(usable, reason): whether the parallel backend can run here.

    The probe creates and unlinks one tiny shared-memory segment; the
    result is cached for the process.  A False verdict makes the backend
    layer fall back to ``vector`` with a warning (or raise a typed
    :class:`~repro.errors.ConfigError` via ``require_parallel``).
    """
    global _availability
    if _availability is None:
        reason = shared_memory_probe()
        _availability = (reason is None, reason)
    return _availability


def reset_availability_cache() -> None:
    """Forget the cached probe (tests monkeypatching the environment)."""
    global _availability
    _availability = None


def get_pool() -> WorkerPool:
    """The process-wide pool, (re)built when ``REPRO_WORKERS`` changes."""
    global _pool, _atexit_registered
    n = worker_count()
    if _pool is None or _pool.n_workers != n:
        if _pool is not None:
            _pool.shutdown()
        _pool = WorkerPool(n)
        if not _atexit_registered:
            atexit.register(shutdown_pool)
            _atexit_registered = True
    return _pool


def shutdown_pool() -> None:
    """Tear down the process-wide pool (tests and interpreter exit)."""
    global _pool
    if _pool is not None:
        _pool.shutdown()
        _pool = None
