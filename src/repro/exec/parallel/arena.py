"""Shared-memory arenas: zero-copy array transport for the worker pool.

A :class:`SharedArena` is a driver-side collection of POSIX shared-memory
segments, one per array.  The driver copies inputs in (or allocates empty
output arrays), hands the picklable :class:`ArrayRef` handles to worker
tasks, reads results back through its own views, and unlinks every segment
on close.  Workers attach by name, compute, and close — they never unlink,
so segment lifetime is owned entirely by the driver.

When the pool runs inline (a single worker executes morsels in-process),
the arena skips shared memory entirely: refs simply carry the ndarray.
That keeps single-core machines and tiny inputs on the plain vector path
cost-wise while exercising the same kernel code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError

try:  # pragma: no cover - import failure is the restricted-sandbox case
    from multiprocessing import shared_memory as _shm_mod
    _SHM_IMPORT_ERROR: Optional[BaseException] = None
except Exception as exc:  # pragma: no cover
    _shm_mod = None
    _SHM_IMPORT_ERROR = exc


def shared_memory_probe() -> Optional[str]:
    """None when POSIX shared memory works here, else the reason it cannot.

    Restricted sandboxes may lack /dev/shm or forbid shm_open; the backend
    layer turns a non-None reason into a graceful fallback to ``vector``.
    """
    if _shm_mod is None:
        return f"multiprocessing.shared_memory unavailable: {_SHM_IMPORT_ERROR}"
    try:
        seg = _shm_mod.SharedMemory(create=True, size=16)
    except Exception as exc:
        return f"cannot create a shared-memory segment: {exc}"
    try:
        seg.close()
        seg.unlink()
    except Exception:
        pass
    return None


@dataclass(frozen=True)
class ArrayRef:
    """Picklable handle to one arena array.

    Either ``shm_name`` names a shared segment holding the array bytes,
    ``path``/``offset`` locate the bytes in a file every worker can map
    read-only (the out-of-core zero-copy path), or ``array`` carries the
    ndarray directly (inline pools only — such refs must never cross a
    process boundary).
    """

    shape: Tuple[int, ...]
    dtype: str
    shm_name: Optional[str] = None
    array: Optional[np.ndarray] = None
    path: Optional[str] = None
    offset: int = 0


def _memmap_root(array: np.ndarray) -> Optional[np.memmap]:
    """The file-backed memmap an array views, if any (else None)."""
    import mmap

    a = array
    while isinstance(a, np.ndarray):
        if (isinstance(a, np.memmap)
                and isinstance(getattr(a, "base", None), mmap.mmap)
                and getattr(a, "filename", None)):
            return a
        a = a.base
    return None


def file_backed_ref(array: np.ndarray) -> Optional[ArrayRef]:
    """A path/offset ref for a contiguous file-mapped view, else None.

    Out-of-core morsels arrive as slices of raw-codec chunk mappings;
    instead of copying their bytes into a fresh shared segment, workers
    can map the chunk file directly — the page cache shares the physical
    pages, so the morsel crosses the process boundary without a copy.
    """
    root = _memmap_root(array)
    if root is None or root.mode not in ("r", "c"):
        return None
    if array.ndim != 1 or not array.flags["C_CONTIGUOUS"]:
        return None
    delta = (array.__array_interface__["data"][0]
             - root.__array_interface__["data"][0])
    if delta < 0:
        return None
    return ArrayRef(shape=tuple(array.shape), dtype=array.dtype.str,
                    path=str(root.filename),
                    offset=int(root.offset) + int(delta))


class Attachment:
    """Worker-side view of one :class:`ArrayRef` (close, never unlink)."""

    def __init__(self, ref: ArrayRef):
        self._seg = None
        self._mapped: Optional[np.memmap] = None
        if ref.array is not None:
            self.array = ref.array
            return
        if ref.path is not None:
            mapped = np.memmap(ref.path, dtype=np.dtype(ref.dtype),
                               mode="r", offset=ref.offset, shape=ref.shape)
            self.array = mapped
            self._mapped = mapped
            return
        if _shm_mod is None:  # pragma: no cover - guarded by the probe
            raise ExecutionError(
                "worker cannot attach shared memory",
                reason=str(_SHM_IMPORT_ERROR))
        seg = _shm_mod.SharedMemory(name=ref.shm_name)
        _untrack(seg)
        self.array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype),
                                buffer=seg.buf)
        self._seg = seg

    def close(self) -> None:
        self.array = None
        if self._seg is not None:
            self._seg.close()
            self._seg = None
        if self._mapped is not None:
            mapped, self._mapped = self._mapped, None
            try:
                mapped._mmap.close()
            except (BufferError, ValueError, AttributeError):
                pass


class attached:
    """Context manager attaching several refs at once: yields the arrays."""

    def __init__(self, *refs: ArrayRef):
        self._refs = refs
        self._attachments: List[Attachment] = []

    def __enter__(self):
        for ref in self._refs:
            self._attachments.append(Attachment(ref))
        return tuple(a.array for a in self._attachments)

    def __exit__(self, *exc_info):
        for a in self._attachments:
            a.close()
        self._attachments = []
        return False


def _untrack(seg) -> None:
    """Stop the worker's resource tracker from also unlinking this segment.

    Attaching registers the segment with the process-local resource
    tracker on Python < 3.13; without this, worker exit would race the
    driver's unlink and spam KeyError/FileNotFoundError warnings.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - best effort, version dependent
        pass


class SharedArena:
    """Driver-side segment collection with unlink-on-close lifetime."""

    def __init__(self, use_shm: bool = True):
        self.use_shm = bool(use_shm)
        self._segments: List[object] = []

    def share(self, array: np.ndarray) -> ArrayRef:
        """Share an input array with the workers; returns its ref.

        File-mapped inputs (out-of-core morsels under the raw codec)
        ship as path/offset refs and never touch shared memory —
        workers map the chunk file themselves and the kernel page cache
        deduplicates the physical pages.  Everything else is copied
        into a fresh segment.
        """
        array = np.ascontiguousarray(array)
        if not self.use_shm:
            return ArrayRef(shape=array.shape, dtype=array.dtype.str,
                            array=array)
        ref = file_backed_ref(array)
        if ref is not None:
            from repro.obs.trace import current_tracer
            current_tracer().metrics.counter(
                "store.zero_copy_shares").inc()
            return ref
        view, ref = self._allocate(array.shape, array.dtype)
        view[...] = array
        return ref

    def empty(self, shape, dtype) -> Tuple[np.ndarray, ArrayRef]:
        """Allocate an uninitialized output array; returns (view, ref).

        The driver keeps the view to read results back after the workers
        have filled their disjoint slices.
        """
        if not self.use_shm:
            array = np.empty(shape, dtype=dtype)
            return array, ArrayRef(shape=array.shape, dtype=array.dtype.str,
                                   array=array)
        return self._allocate(shape, np.dtype(dtype))

    def output_like(self, array: np.ndarray) -> Tuple[np.ndarray, ArrayRef]:
        """(view, ref) for filling a caller-owned output array.

        Inline arenas return the array itself, so worker writes land
        directly; shared arenas return a fresh segment the caller must
        copy back into ``array`` after the workers finish.
        """
        if not self.use_shm:
            return array, ArrayRef(shape=array.shape, dtype=array.dtype.str,
                                   array=array)
        return self._allocate(array.shape, array.dtype)

    def _allocate(self, shape, dtype) -> Tuple[np.ndarray, ArrayRef]:
        if _shm_mod is None:
            raise ExecutionError(
                "shared memory is unavailable; the parallel backend should "
                "have fallen back to vector", reason=str(_SHM_IMPORT_ERROR))
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        seg = _shm_mod.SharedMemory(create=True, size=max(nbytes, 1))
        self._segments.append(seg)
        view = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        ref = ArrayRef(shape=tuple(view.shape), dtype=dtype.str,
                       shm_name=seg.name)
        return view, ref

    def close(self) -> None:
        """Release every segment (close + unlink); views become invalid."""
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False
