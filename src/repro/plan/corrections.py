"""Learned multiplicative corrections for the planner's cost predictions.

The analytic executors predict *simulated* seconds exactly, but the
planner ranks candidates by predicted *wall* seconds, and the wall/sim
ratio of each (algorithm, phase, backend) depends on the host.  The
:class:`CorrectionStore` closes that gap with one multiplicative factor
per (algorithm, phase, backend):

    predicted_wall = sim_seconds * base_backend_factor * correction

Factors start from the committed ``BENCH_seed.json`` snapshot (the
cold-start calibration: median wall / simulated ratio per phase) and are
refined with an EWMA (:func:`repro.exec.cost_model.blend_correction`) as
planned runs complete — either live via :meth:`CorrectionStore.observe`
or in bulk from the JSONL trace history every planned
:class:`~repro.exec.result.JoinResult` leaves behind.

Persistence is a small JSON file next to the traces (default
``plan_corrections.json``, overridable with ``REPRO_PLAN_CORRECTIONS``),
written atomically and loaded lazily on first use.  A missing or corrupt
file simply starts the store empty — corrections are an optimization,
never a correctness dependency.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.exec.cost_model import (
    DEFAULT_CORRECTION_ALPHA,
    blend_correction,
    clamp_correction,
)

#: Environment variable overriding the corrections file location.
CORRECTIONS_ENV = "REPRO_PLAN_CORRECTIONS"

#: Default file name, created next to wherever traces are being written.
DEFAULT_CORRECTIONS_FILENAME = "plan_corrections.json"

#: Schema version of the persisted corrections file.
CORRECTIONS_SCHEMA_VERSION = 1

#: A key is (algorithm, phase, backend).
CorrectionKey = Tuple[str, str, str]


def corrections_path_from_env() -> Optional[Path]:
    """The corrections file named by ``REPRO_PLAN_CORRECTIONS``, if set."""
    raw = os.environ.get(CORRECTIONS_ENV, "").strip()
    return Path(raw) if raw else None


class CorrectionStore:
    """Per-(algorithm, phase, backend) wall-time correction factors.

    ``path=None`` keeps the store purely in memory (the gate and tests
    use this); a path makes :meth:`save` persist and :meth:`load` lazy.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None,
                 alpha: float = DEFAULT_CORRECTION_ALPHA):
        self.path = Path(path) if path is not None else None
        self.alpha = alpha
        self._factors: Optional[Dict[CorrectionKey, Dict[str, float]]] = None

    # ------------------------------------------------------------------
    # lazy persistence

    def _ensure_loaded(self) -> Dict[CorrectionKey, Dict[str, float]]:
        if self._factors is None:
            self._factors = {}
            if self.path is not None and self.path.exists():
                self._load_file(self.path)
        return self._factors

    def _load_file(self, path: Path) -> None:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            entries = data["entries"]
            if data.get("schema_version") != CORRECTIONS_SCHEMA_VERSION:
                return  # old schema: start fresh, the file is a cache
            for key, entry in entries.items():
                algorithm, phase, backend = key.split("|", 2)
                self._factors[(algorithm, phase, backend)] = {
                    "factor": clamp_correction(float(entry["factor"])),
                    "observations": int(entry.get("observations", 1)),
                }
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt corrections are a stale cache, not an error: the
            # planner falls back to bootstrap/base factors and re-learns.
            self._factors = {}

    def save(self) -> Optional[Path]:
        """Atomically persist the factors; no-op for in-memory stores."""
        if self.path is None:
            return None
        factors = self._ensure_loaded()
        payload = {
            "schema_version": CORRECTIONS_SCHEMA_VERSION,
            "alpha": self.alpha,
            "entries": {
                "|".join(key): dict(entry)
                for key, entry in sorted(factors.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.path)
        return self.path

    # ------------------------------------------------------------------
    # reads and updates

    def __len__(self) -> int:
        return len(self._ensure_loaded())

    def factor(self, algorithm: str, phase: str, backend: str) -> float:
        """The current correction for one key (1.0 when unobserved)."""
        entry = self._ensure_loaded().get((algorithm, phase, backend))
        return entry["factor"] if entry else 1.0

    def observations(self, algorithm: str, phase: str, backend: str) -> int:
        """How many observations shaped this key's factor."""
        entry = self._ensure_loaded().get((algorithm, phase, backend))
        return entry["observations"] if entry else 0

    def observe(self, algorithm: str, phase: str, backend: str,
                base_wall_seconds: float, realized_wall_seconds: float) -> float:
        """Fold one (base prediction, realized wall) pair into the factor.

        ``base_wall_seconds`` must be the *uncorrected* prediction —
        sim seconds times the backend base factor — so the learned factor
        stays an absolute wall/base ratio rather than drifting
        multiplicatively with its own feedback.
        """
        if base_wall_seconds <= 0 or realized_wall_seconds < 0:
            return self.factor(algorithm, phase, backend)
        factors = self._ensure_loaded()
        key = (algorithm, phase, backend)
        ratio = realized_wall_seconds / base_wall_seconds
        entry = factors.get(key)
        if entry is None:
            factors[key] = {"factor": clamp_correction(ratio),
                            "observations": 1}
        else:
            entry["factor"] = blend_correction(entry["factor"], ratio,
                                               alpha=self.alpha)
            entry["observations"] += 1
        return factors[key]["factor"]

    def seed_factor(self, algorithm: str, phase: str, backend: str,
                    factor: float) -> None:
        """Install a bootstrap factor without counting an observation.

        Existing learned entries win: bootstrap only fills gaps.
        """
        factors = self._ensure_loaded()
        key = (algorithm, phase, backend)
        if key not in factors:
            factors[key] = {"factor": clamp_correction(factor),
                            "observations": 0}

    # ------------------------------------------------------------------
    # bulk learning

    def learn_from_results(self, results: Iterable) -> int:
        """Fold every planned result's realized walls in; returns count.

        Accepts any iterable of :class:`~repro.exec.result.JoinResult`
        (live or deserialized from a JSONL trace artifact); results
        without plan metadata are skipped.
        """
        observed = 0
        for result in results:
            plan = getattr(result, "meta", {}).get("plan")
            if not isinstance(plan, dict):
                continue
            algorithm = plan.get("algorithm")
            backend = plan.get("backend")
            phases = plan.get("phases")
            if not (algorithm and backend and isinstance(phases, list)):
                continue
            for phase in phases:
                if not isinstance(phase, dict):
                    continue
                name = phase.get("name")
                base = phase.get("base_wall_seconds")
                realized = phase.get("realized_wall_seconds")
                if name is None or base is None or realized is None:
                    continue
                self.observe(str(algorithm), str(name), str(backend),
                             float(base), float(realized))
                observed += 1
        return observed

    def learn_from_jsonl(self, path: Union[str, Path]) -> int:
        """Learn from a JSONL trace artifact (tolerant of torn tails)."""
        from repro.exec.serialize import results_from_jsonl_file
        return self.learn_from_results(
            results_from_jsonl_file(path, tolerant=True))

    def bootstrap_from_bench(self, record) -> int:
        """Seed factors from a committed bench snapshot (cold start).

        ``record`` is a :class:`~repro.bench.regression.BenchRecord`; for
        every (algorithm, phase, backend) it holds, the seeded factor is
        the snapshot's median wall over the *base* wall prediction for
        that backend at the snapshot's worker count.  Learned entries are
        never overwritten.
        """
        from repro.plan.predict import base_wall_factor

        seeded = 0
        for case in record.cases:
            for phase in case.phases:
                if phase.simulated_seconds <= 0:
                    continue
                for backend, wall in phase.wall_seconds.items():
                    base = (phase.simulated_seconds
                            * base_wall_factor(backend, record.worker_count))
                    if base <= 0 or wall <= 0:
                        continue
                    self.seed_factor(case.algorithm, phase.name, backend,
                                     wall / base)
                    seeded += 1
        return seeded

    def bootstrap_from_bench_file(self, path: Union[str, Path]) -> int:
        """Like :meth:`bootstrap_from_bench` from a BENCH_*.json path.

        Missing or unreadable baselines seed nothing — bootstrap is
        best-effort by design.
        """
        from repro.bench.regression import load_bench
        from repro.errors import BaselineError
        try:
            record = load_bench(path)
        except BaselineError:
            return 0
        return self.bootstrap_from_bench(record)
