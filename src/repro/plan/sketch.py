"""Sampled workload sketches: the planner's view of a join input.

The planner never joins the real tuples to rank candidates — it predicts
from a key histogram.  Small inputs get the exact histogram (cheap); big
inputs get an *estimated* one built from a seeded sample of each side,
reusing the CSH detector's sketch-based skew estimation
(:func:`repro.core.csh.detector.detect_skewed_keys`) for the heavy head:

* keys seen at least ``freq_threshold`` times in a sample scale to
  ``count * n / sample_size`` estimated tuples (the head — this is where
  skew lives, and skew is what separates the candidate algorithms);
* the remaining mass is spread over an estimated tail of
  ``singletons / sample_rate`` distinct synthetic keys.

The estimate preserves the two quantities the cost models are most
sensitive to — total tuple counts exactly, and heavy-hitter frequencies
to sampling accuracy — while the learned corrections absorb what the
tail shape gets wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.analytic import AnalyticWorkload
from repro.core.csh.detector import detect_skewed_keys
from repro.data.relation import JoinInput
from repro.types import SeedLike, make_rng

#: Inputs at or below this many tuples per side sketch exactly — building
#: the true histogram costs less than joining them would.
DEFAULT_EXACT_BELOW = 4096

#: Default sampling rate for estimated sketches (5%: cheap on millions of
#: tuples, and heavy hitters at that rate are detected with near
#: certainty — the same regime as CSH's 1% detection pass).
DEFAULT_SAMPLE_RATE = 0.05

#: A sampled key this frequent in the sample is a head key (matches the
#: CSH detector's default threshold).
DEFAULT_FREQ_THRESHOLD = 2


@dataclass
class WorkloadSketch:
    """An (estimated) histogram of one join input, plus how it was made."""

    workload: AnalyticWorkload
    n_r: int
    n_s: int
    exact: bool
    sample_rate: float
    sample_size_r: int = 0
    sample_size_s: int = 0
    #: Skewed keys the CSH detector reported on the R sample.
    n_skewed: int = 0

    @property
    def estimated_output(self) -> int:
        """Estimated join cardinality of the sketch."""
        return self.workload.output_count()

    @property
    def estimated_bytes(self) -> int:
        """Resident bytes of the partitioned inputs (12 bytes/tuple:
        key + payload + hash), the spill plane's budget currency."""
        return 12 * (self.n_r + self.n_s)

    def summary(self) -> dict:
        """Plan-metadata form of the sketch provenance."""
        return {
            "n_r": self.n_r,
            "n_s": self.n_s,
            "exact": self.exact,
            "sample_rate": self.sample_rate,
            "sample_size_r": self.sample_size_r,
            "sample_size_s": self.sample_size_s,
            "skewed_keys": self.n_skewed,
            "distinct_keys": int(self.workload.keys.size),
            "estimated_output": self.estimated_output,
        }


def _estimate_side(keys: np.ndarray, sample_rate: float,
                   freq_threshold: int, rng) -> "tuple[dict, int, int]":
    """(head key -> estimated count, singleton sample count, sample size)."""
    n = int(keys.size)
    sample_size = max(int(round(n * sample_rate)), min(n, 1))
    if sample_size == 0:
        return {}, 0, 0
    sample = keys[rng.integers(0, n, size=sample_size)]
    uniq, counts = np.unique(sample, return_counts=True)
    head_mask = counts >= freq_threshold
    scale = n / sample_size
    head = {
        int(k): max(int(round(c * scale)), 1)
        for k, c in zip(uniq[head_mask], counts[head_mask])
    }
    singletons = int(counts[~head_mask].sum())
    return head, singletons, sample_size


def _synthetic_tail_keys(n_keys: int, used: np.ndarray) -> np.ndarray:
    """``n_keys`` uint32 keys disjoint from ``used`` (sequential from just
    past the used maximum, wrapping into the low range if need be)."""
    if n_keys <= 0:
        return np.empty(0, dtype=np.uint32)
    start = (int(used.max()) + 1) if used.size else 0
    candidates = np.arange(start, start + n_keys + used.size,
                           dtype=np.uint64) % (1 << 32)
    fresh = candidates[~np.isin(candidates.astype(np.uint32), used)]
    return fresh[:n_keys].astype(np.uint32)


def _spread_tail(total: int, n_keys: int) -> np.ndarray:
    """Integer counts spreading ``total`` tuples over ``n_keys`` keys."""
    if n_keys <= 0 or total <= 0:
        return np.empty(0, dtype=np.int64)
    counts = np.full(n_keys, total // n_keys, dtype=np.int64)
    counts[:total % n_keys] += 1
    return counts


def sketch_workload(
    join_input: JoinInput,
    sample_rate: float = DEFAULT_SAMPLE_RATE,
    freq_threshold: int = DEFAULT_FREQ_THRESHOLD,
    seed: SeedLike = 0,
    exact_below: int = DEFAULT_EXACT_BELOW,
) -> WorkloadSketch:
    """Sketch one join input into an :class:`AnalyticWorkload`.

    Deterministic for a given (input, seed): the planner must make the
    same choice for the same request every time.
    """
    n_r = len(join_input.r)
    n_s = len(join_input.s)
    if max(n_r, n_s) <= exact_below:
        return WorkloadSketch(
            workload=AnalyticWorkload.from_join_input(join_input,
                                                      label="exact"),
            n_r=n_r, n_s=n_s, exact=True, sample_rate=1.0,
            sample_size_r=n_r, sample_size_s=n_s,
        )

    rng = make_rng(seed)
    detection = detect_skewed_keys(join_input.r.keys,
                                   sample_rate=sample_rate,
                                   freq_threshold=freq_threshold,
                                   seed=seed)
    head_r, single_r, m_r = _estimate_side(join_input.r.keys, sample_rate,
                                           freq_threshold, rng)
    head_s, single_s, m_s = _estimate_side(join_input.s.keys, sample_rate,
                                           freq_threshold, rng)
    # The head is the union of both sides' frequent keys plus whatever the
    # CSH detector flagged — a key skewed on either side matters to both.
    head_keys = sorted(set(head_r) | set(head_s)
                       | {int(k) for k in detection.skewed_keys})
    head_arr = np.asarray(head_keys, dtype=np.uint32)

    cr_head = np.asarray([head_r.get(k, 0) for k in head_keys],
                         dtype=np.int64)
    cs_head = np.asarray([head_s.get(k, 0) for k in head_keys],
                         dtype=np.int64)
    # Clip head mass to the side totals, largest keys keeping their share.
    for counts, total in ((cr_head, n_r), (cs_head, n_s)):
        excess = int(counts.sum()) - total
        while excess > 0 and counts.sum() > 0:
            i = int(np.argmax(counts))
            take = min(excess, int(counts[i]))
            counts[i] -= take
            excess -= take

    rest_r = n_r - int(cr_head.sum())
    rest_s = n_s - int(cs_head.sum())
    # Estimated distinct tail keys: every singleton sample represents
    # ~1/sample_rate unseen keys of similar rarity.
    est_tail = int(round(max(single_r, single_s) / sample_rate))
    n_tail = max(min(est_tail, max(rest_r, rest_s)), 1 if
                 (rest_r or rest_s) else 0)
    tail_arr = _synthetic_tail_keys(n_tail, head_arr)
    n_tail = int(tail_arr.size)

    keys = np.concatenate([head_arr, tail_arr])
    cr = np.concatenate([cr_head, _spread_tail(rest_r, n_tail)
                         if n_tail else np.empty(0, dtype=np.int64)])
    cs = np.concatenate([cs_head, _spread_tail(rest_s, n_tail)
                         if n_tail else np.empty(0, dtype=np.int64)])
    cr = np.pad(cr, (0, keys.size - cr.size))
    cs = np.pad(cs, (0, keys.size - cs.size))
    workload = AnalyticWorkload(keys, cr, cs, label="sampled-sketch")
    return WorkloadSketch(
        workload=workload, n_r=n_r, n_s=n_s, exact=False,
        sample_rate=sample_rate, sample_size_r=m_r, sample_size_s=m_s,
        n_skewed=detection.n_skewed,
    )
