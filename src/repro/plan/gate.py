"""The plan gate: regret measurement of planner picks against an oracle.

CI's ``plan-gate`` job runs :func:`run_plan_gate` over the differential
diff grid (five algorithms x four datasets).  For every dataset the gate

1. asks the planner for its pick,
2. measures *every* feasible candidate for real (median wall of
   ``repeats`` runs — the oracle is whichever candidate was actually
   fastest),
3. scores the pick's **regret**: measured wall of the planner's choice
   over the oracle's wall.  The gate passes when every dataset's regret
   is at most ``threshold`` (2x by default — the planner must land
   within a factor of two of perfect hindsight),
4. checks **bit-identity**: the planner-executed result must compare
   clean (``compare_results``) against the same point forced by hand.

A calibration pass on a disjoint-seed workload warms the corrections
first, and the gate keeps learning dataset to dataset — the same loop
production traffic drives.  Oracles faster than ``floor_seconds`` are
scored but auto-pass: at sub-centisecond walls, scheduler jitter
dominates and regret is noise.

Artifacts (``plan-candidates.json``, ``regret-report.json``) land in
``out_dir`` for CI upload.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.backend import VECTOR, use_backend
from repro.exec.differential import compare_results, default_datasets
from repro.plan.candidates import CandidatePoint, Constraints
from repro.plan.corrections import CorrectionStore
from repro.plan.planner import DEFAULT_BOOTSTRAP_BENCH, Plan, Planner, \
    pinned_workers

#: Default gate scale: small enough for a CI smoke leg, big enough that
#: the backends meaningfully separate.  Nightly runs 4x this.
DEFAULT_GATE_TUPLES = 20000

#: A pick within this factor of the oracle passes.
DEFAULT_REGRET_THRESHOLD = 2.0

#: Oracles faster than this are auto-pass: regret on sub-centisecond
#: walls measures scheduler jitter, not planning quality.
GATE_WALL_FLOOR_SECONDS = 0.05

#: Backends the gate measures by default.  Scalar is excluded: it is
#: deliberately ~10x slower interpretation, never a competitive pick,
#: and measuring it across the grid would multiply gate runtime for no
#: additional signal.  ``backends=None`` restores the full set.
DEFAULT_GATE_BACKENDS = (VECTOR, "parallel")


@dataclass
class CandidateMeasurement:
    """One candidate's predicted and measured cost on one dataset."""

    algorithm: str
    backend: str
    workers: int
    predicted_wall_seconds: float
    measured_wall_seconds: float
    picked: bool = False

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "workers": self.workers,
            "predicted_wall_seconds": self.predicted_wall_seconds,
            "measured_wall_seconds": self.measured_wall_seconds,
            "picked": self.picked,
        }


@dataclass
class DatasetGateResult:
    """The gate's verdict for one dataset."""

    dataset: str
    picked: str
    oracle: str
    picked_wall_seconds: float
    oracle_wall_seconds: float
    regret: float
    sub_floor: bool
    ok: bool
    identical: bool
    mismatches: List[str] = field(default_factory=list)
    measurements: List[CandidateMeasurement] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "picked": self.picked,
            "oracle": self.oracle,
            "picked_wall_seconds": self.picked_wall_seconds,
            "oracle_wall_seconds": self.oracle_wall_seconds,
            "regret": self.regret,
            "sub_floor": self.sub_floor,
            "ok": self.ok,
            "identical": self.identical,
            "mismatches": list(self.mismatches),
        }


@dataclass
class GateReport:
    """The full plan-gate outcome across every dataset."""

    n_tuples: int
    seed: int
    repeats: int
    threshold: float
    datasets: List[DatasetGateResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(d.ok and d.identical for d in self.datasets)

    @property
    def max_regret(self) -> float:
        return max((d.regret for d in self.datasets), default=0.0)

    def to_dict(self) -> dict:
        return {
            "n_tuples": self.n_tuples,
            "seed": self.seed,
            "repeats": self.repeats,
            "threshold": self.threshold,
            "ok": self.ok,
            "max_regret": self.max_regret,
            "datasets": [d.to_dict() for d in self.datasets],
        }

    def render(self) -> str:
        lines = [
            f"plan gate — {self.n_tuples} tuples, seed {self.seed}, "
            f"{self.repeats} repeat(s), regret threshold {self.threshold}x",
            "",
            f"  {'dataset':<10} {'picked':<22} {'oracle':<22} "
            f"{'regret':>8} {'status'}",
        ]
        for d in self.datasets:
            status = "ok" if (d.ok and d.identical) else "FAIL"
            if d.sub_floor and d.ok:
                status += " (sub-floor)"
            if not d.identical:
                status += " (diff!)"
            lines.append(
                f"  {d.dataset:<10} {d.picked:<22} {d.oracle:<22} "
                f"{d.regret:>7.2f}x {status}")
        lines.append("")
        lines.append(
            f"{'PASS' if self.ok else 'FAIL'}: max regret "
            f"{self.max_regret:.2f}x over {len(self.datasets)} dataset(s)")
        return "\n".join(lines)


def _measure_point(join_input, point: CandidatePoint, repeats: int) -> \
        Tuple[float, object]:
    """Median wall of running one point ``repeats`` times (plus the last
    result, for the identity check)."""
    from repro.api import make_join

    walls = []
    result = None
    with use_backend(point.backend), pinned_workers(point):
        for _ in range(max(repeats, 1)):
            result = make_join(point.algorithm).run(join_input)
            walls.append(result.wall_seconds)
    return statistics.median(walls), result


def _calibrate(planner: Planner, join_input, repeats: int) -> None:
    """Warm the corrections by measuring every candidate once on a
    calibration workload the gate never scores."""
    plan = planner.plan(join_input)
    for candidate in plan.candidates:
        if not candidate.feasible:
            continue
        wall, _ = _measure_point(join_input, candidate.point,
                                 repeats=max(repeats - 1, 1))
        total_base = candidate.prediction.base_wall_seconds
        if total_base <= 0:
            continue
        for phase in candidate.prediction.phases:
            # Apportion the measured wall across phases by base share.
            share = phase.base_wall_seconds / total_base
            planner.corrections.observe(
                candidate.point.algorithm, phase.name,
                candidate.point.backend,
                phase.base_wall_seconds, wall * share)


def run_plan_gate(
    n_tuples: int = DEFAULT_GATE_TUPLES,
    seed: int = 42,
    repeats: int = 2,
    threshold: float = DEFAULT_REGRET_THRESHOLD,
    backends: Optional[Sequence[str]] = DEFAULT_GATE_BACKENDS,
    out_dir: Optional[str] = None,
    bootstrap_bench: Optional[str] = DEFAULT_BOOTSTRAP_BENCH,
    floor_seconds: float = GATE_WALL_FLOOR_SECONDS,
) -> GateReport:
    """Measure planner regret over the diff grid; write CI artifacts."""
    constraints = Constraints.from_environment(backends=backends)
    planner = Planner(corrections=CorrectionStore(),  # in-memory
                      constraints=constraints,
                      bootstrap_bench=bootstrap_bench)
    datasets = default_datasets(n_tuples, seed)

    # Calibration workload: same scale, disjoint seed — the gate must
    # not calibrate on the exact inputs it scores.
    from repro.data import uniform_input
    _calibrate(planner, uniform_input(n_tuples, n_tuples, seed=seed + 1),
               repeats)

    report = GateReport(n_tuples=n_tuples, seed=seed, repeats=repeats,
                        threshold=threshold)
    tables: Dict[str, dict] = {}
    for name, join_input in datasets.items():
        plan = planner.plan(join_input)
        tables[name] = plan.to_dict()
        planned_result = planner.execute(join_input, plan)
        picked = plan.chosen.point

        measurements: List[CandidateMeasurement] = []
        best_wall, best_point = float("inf"), picked
        picked_wall = float("inf")
        reference = None
        # Group by worker count so the pool restarts once per rung, not
        # once per candidate.
        feasible = [c for c in plan.candidates if c.feasible]
        for candidate in sorted(feasible, key=lambda c: c.point.workers):
            wall, result = _measure_point(join_input, candidate.point,
                                          repeats)
            measurements.append(CandidateMeasurement(
                algorithm=candidate.point.algorithm,
                backend=candidate.point.backend,
                workers=candidate.point.workers,
                predicted_wall_seconds=candidate.predicted_wall_seconds,
                measured_wall_seconds=wall,
                picked=candidate.point == picked,
            ))
            if wall < best_wall:
                best_wall, best_point = wall, candidate.point
            if candidate.point == picked:
                picked_wall = wall
                reference = result

        # Bit-identity: the planner-executed run against the hand-forced
        # reference of the same point.
        mismatches = (compare_results(planned_result, reference)
                      if reference is not None else
                      ["no reference run for the picked point"])

        regret = (picked_wall / best_wall if best_wall > 0 else 1.0)
        sub_floor = best_wall < floor_seconds
        result = DatasetGateResult(
            dataset=name,
            picked=picked.label(),
            oracle=best_point.label(),
            picked_wall_seconds=picked_wall,
            oracle_wall_seconds=best_wall,
            regret=regret,
            sub_floor=sub_floor,
            ok=(regret <= threshold) or sub_floor,
            identical=not mismatches,
            mismatches=mismatches,
            measurements=measurements,
        )
        report.datasets.append(result)
        # Learn as we go — later datasets benefit from earlier walls,
        # the same loop production traffic drives.
        planner.learn(planned_result)

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        candidates_payload = {
            name: {
                **table,
                "measurements": [
                    m.to_dict()
                    for d in report.datasets if d.dataset == name
                    for m in d.measurements
                ],
            }
            for name, table in tables.items()
        }
        (out / "plan-candidates.json").write_text(
            json.dumps(candidates_payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        (out / "regret-report.json").write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    return report
