"""Adaptive planning: sample -> predict -> argmin -> execute -> learn.

The plan layer chooses the (algorithm, backend, workers) execution point
for a join instead of making the caller pick: it sketches the input with
the CSH detector's sampling machinery, prices every candidate through
the calibrated analytic cost models, applies the operational constraints
(backend availability, memory budget, deadline), executes the argmin,
and learns per-(algorithm, phase, backend) wall-time corrections from
every planned run's trace.  Planning never changes answers — a planned
run is bit-identical to the same configuration forced by hand.

Entry points: ``repro plan`` (explain mode), ``repro run --auto``,
``repro serve --planner auto``, and the CI ``plan-gate``
(:func:`repro.plan.gate.run_plan_gate`).
"""

from repro.plan.candidates import (
    CandidatePoint,
    Constraints,
    Feasibility,
    check_feasibility,
    enumerate_candidates,
    worker_ladder,
)
from repro.plan.corrections import (
    CORRECTIONS_ENV,
    CorrectionStore,
    corrections_path_from_env,
)
from repro.plan.gate import (
    DEFAULT_GATE_TUPLES,
    DEFAULT_REGRET_THRESHOLD,
    GateReport,
    run_plan_gate,
)
from repro.plan.planner import (
    DEFAULT_BOOTSTRAP_BENCH,
    PLAN_META_KEY,
    Plan,
    PlanCandidate,
    Planner,
    pinned_workers,
)
from repro.plan.predict import (
    AnalyticCache,
    CandidatePrediction,
    PhasePrediction,
    base_wall_factor,
    predict_candidate,
)
from repro.plan.serve_hook import ProbeDecision, ServeProbePlanner
from repro.plan.sketch import WorkloadSketch, sketch_workload
from repro.plan.verify import verify_result_plan

__all__ = [
    "AnalyticCache",
    "CandidatePoint",
    "CandidatePrediction",
    "Constraints",
    "CorrectionStore",
    "CORRECTIONS_ENV",
    "DEFAULT_BOOTSTRAP_BENCH",
    "DEFAULT_GATE_TUPLES",
    "DEFAULT_REGRET_THRESHOLD",
    "Feasibility",
    "GateReport",
    "PLAN_META_KEY",
    "Plan",
    "PlanCandidate",
    "Planner",
    "PhasePrediction",
    "ProbeDecision",
    "ServeProbePlanner",
    "WorkloadSketch",
    "base_wall_factor",
    "check_feasibility",
    "corrections_path_from_env",
    "enumerate_candidates",
    "pinned_workers",
    "predict_candidate",
    "run_plan_gate",
    "sketch_workload",
    "verify_result_plan",
    "worker_ladder",
]
