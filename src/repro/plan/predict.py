"""Per-candidate cost prediction: analytic sim seconds -> wall seconds.

The analytic executors (:mod:`repro.analysis.analytic`) already price
every algorithm's phases in *simulated* seconds from a histogram — and
simulated seconds are backend-invariant by the differential harness's
contract.  What separates the backends is wall time per simulated
second, so a candidate's predicted wall is::

    sim_seconds(phase) * base_wall_factor(backend, workers)
                       * correction(algorithm, phase, backend)

The base factors are deliberately coarse priors (scalar interprets
tuple-at-a-time Python; vector runs NumPy kernels; parallel is vector
plus an Amdahl-style speedup on its morsel phases).  The committed
``BENCH_seed.json`` bootstrap and the learned corrections carry the
per-algorithm, per-phase truth — see :mod:`repro.plan.corrections`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.analytic import ANALYTIC_EXECUTORS, AnalyticWorkload
from repro.exec.backend import PARALLEL, SCALAR, VECTOR
from repro.exec.result import JoinResult
from repro.plan.candidates import CandidatePoint
from repro.plan.corrections import CorrectionStore

#: Wall seconds per simulated second, cold-start prior per backend.  The
#: scalar figure comes from the committed bench snapshot's median
#: scalar/vector ratio (~12x at the bench scale); vector is the
#: reference the cost model was calibrated against.
BASE_WALL_PER_SIM: Dict[str, float] = {
    SCALAR: 12.0,
    VECTOR: 1.0,
    PARALLEL: 1.0,
}

#: Fraction of a parallel run that does not scale with workers (partition
#: passes, morsel dispatch, result merging) — Amdahl's prior.
PARALLEL_SERIAL_FRACTION = 0.5


def base_wall_factor(backend: str, workers: int = 1) -> float:
    """Uncorrected wall-per-sim factor of one backend at one pool size."""
    factor = BASE_WALL_PER_SIM.get(backend, 1.0)
    if backend == PARALLEL and workers > 1:
        factor *= (PARALLEL_SERIAL_FRACTION
                   + (1.0 - PARALLEL_SERIAL_FRACTION) / workers)
    return factor


@dataclass
class PhasePrediction:
    """One phase's predicted costs for one candidate."""

    name: str
    simulated_seconds: float
    #: Uncorrected wall prediction (sim * base factor) — what corrections
    #: are learned against.
    base_wall_seconds: float
    #: Corrected wall prediction — what the argmin ranks.
    predicted_wall_seconds: float
    correction: float = 1.0


@dataclass
class CandidatePrediction:
    """A candidate point with its full per-phase cost prediction."""

    point: CandidatePoint
    phases: List[PhasePrediction] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        return sum(p.simulated_seconds for p in self.phases)

    @property
    def base_wall_seconds(self) -> float:
        return sum(p.base_wall_seconds for p in self.phases)

    @property
    def predicted_wall_seconds(self) -> float:
        return sum(p.predicted_wall_seconds for p in self.phases)


class AnalyticCache:
    """Memoizes one workload's analytic run per algorithm.

    Every backend/worker variant of an algorithm shares the same analytic
    result, so a full candidate sweep runs each executor exactly once.
    """

    def __init__(self, workload: AnalyticWorkload):
        self.workload = workload
        self._results: Dict[str, JoinResult] = {}

    def result(self, algorithm: str) -> JoinResult:
        if algorithm not in self._results:
            self._results[algorithm] = ANALYTIC_EXECUTORS[algorithm](
                self.workload)
        return self._results[algorithm]


def predict_candidate(
    analytic: AnalyticCache,
    point: CandidatePoint,
    corrections: Optional[CorrectionStore] = None,
) -> CandidatePrediction:
    """Price one candidate point from the shared analytic results."""
    result = analytic.result(point.algorithm)
    base_factor = base_wall_factor(point.backend, point.workers)
    prediction = CandidatePrediction(point=point)
    for phase in result.phases:
        base = phase.simulated_seconds * base_factor
        correction = (corrections.factor(point.algorithm, phase.name,
                                         point.backend)
                      if corrections is not None else 1.0)
        prediction.phases.append(PhasePrediction(
            name=phase.name,
            simulated_seconds=phase.simulated_seconds,
            base_wall_seconds=base,
            predicted_wall_seconds=base * correction,
            correction=correction,
        ))
    return prediction
