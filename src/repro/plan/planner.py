"""The adaptive planner: sketch, predict, argmin, execute, learn.

:class:`Planner` ties the plan layer together.  One :meth:`Planner.plan`
call sketches the input (:mod:`repro.plan.sketch`), prices every
candidate (algorithm x backend x workers) point through the calibrated
cost models (:mod:`repro.plan.predict`), filters by constraints
(:mod:`repro.plan.candidates`), and returns the argmin with the full
explain table.  :meth:`Planner.execute` then runs the chosen point —
*exactly* as a hand-forced run would: the plan only selects
``use_backend`` / ``REPRO_WORKERS``, never touches the pipelines, so a
planned answer is bit-identical to the same configuration forced by
hand (property-tested in ``tests/plan/test_plan_independence.py``).

Every executed plan stamps ``result.meta["plan"]`` with the predicted
and realized costs; the trace validator (``repro trace --check``) audits
that bookkeeping via :func:`repro.plan.verify.verify_result_plan`, and
the correction store learns from it so predictions improve with traffic.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.data.relation import JoinInput
from repro.errors import ConfigError
from repro.exec.backend import PARALLEL, use_backend
from repro.exec.result import JoinResult
from repro.plan.candidates import (
    CandidatePoint,
    Constraints,
    check_feasibility,
    enumerate_candidates,
)
from repro.plan.corrections import CorrectionStore
from repro.plan.predict import AnalyticCache, CandidatePrediction, predict_candidate
from repro.plan.sketch import (
    DEFAULT_EXACT_BELOW,
    DEFAULT_SAMPLE_RATE,
    WorkloadSketch,
    sketch_workload,
)

#: The meta key planned results carry their bookkeeping under.
PLAN_META_KEY = "plan"

#: Default committed bench snapshot used for cold-start calibration.
DEFAULT_BOOTSTRAP_BENCH = "BENCH_seed.json"


@dataclass
class PlanCandidate:
    """One ranked candidate: prediction plus feasibility."""

    prediction: CandidatePrediction
    feasible: bool = True
    reasons: List[str] = field(default_factory=list)

    @property
    def point(self) -> CandidatePoint:
        return self.prediction.point

    @property
    def predicted_wall_seconds(self) -> float:
        return self.prediction.predicted_wall_seconds


@dataclass
class Plan:
    """The outcome of planning one join input."""

    sketch: WorkloadSketch
    candidates: List[PlanCandidate]
    constraints: Constraints
    chosen: Optional[PlanCandidate] = None

    @property
    def n_feasible(self) -> int:
        return sum(1 for c in self.candidates if c.feasible)

    def meta(self) -> dict:
        """The ``result.meta['plan']`` payload for the chosen point."""
        if self.chosen is None:
            raise ConfigError("plan has no feasible candidate to execute")
        point = self.chosen.point
        return {
            "algorithm": point.algorithm,
            "backend": point.backend,
            "workers": point.workers,
            "predicted_wall_seconds":
                self.chosen.prediction.predicted_wall_seconds,
            "predicted_simulated_seconds":
                self.chosen.prediction.simulated_seconds,
            "phases": [
                {
                    "name": p.name,
                    "simulated_seconds": p.simulated_seconds,
                    "base_wall_seconds": p.base_wall_seconds,
                    "predicted_wall_seconds": p.predicted_wall_seconds,
                }
                for p in self.chosen.prediction.phases
            ],
            "candidates": len(self.candidates),
            "feasible": self.n_feasible,
            "sketch": self.sketch.summary(),
            "constraints": self.constraints.describe(),
        }

    def render(self) -> str:
        """The explain table: every candidate, predicted costs, the pick."""
        lines = [
            "plan — candidate table "
            f"({self.sketch.n_r} x {self.sketch.n_s} tuples, "
            + ("exact sketch"
               if self.sketch.exact else
               f"sampled at {self.sketch.sample_rate:.0%}, "
               f"{self.sketch.n_skewed} skewed key(s)") + ")",
            "",
            f"  {'candidate':<22} {'pred wall':>12} {'pred sim':>12} "
            f"{'status':<10}",
        ]
        for candidate in self.candidates:
            mark = ("*" if self.chosen is not None
                    and candidate.point == self.chosen.point else " ")
            status = "ok" if candidate.feasible else "infeasible"
            lines.append(
                f" {mark}{candidate.point.label():<22} "
                f"{candidate.predicted_wall_seconds:>11.4f}s "
                f"{candidate.prediction.simulated_seconds:>11.4f}s "
                f"{status:<10}")
            for reason in candidate.reasons:
                lines.append(f"      - {reason}")
        lines.append("")
        if self.chosen is None:
            lines.append("no feasible candidate under the constraints")
        else:
            lines.append(
                f"chosen: {self.chosen.point.label()} "
                f"(predicted {self.chosen.predicted_wall_seconds:.4f}s wall, "
                f"{self.n_feasible}/{len(self.candidates)} feasible)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable candidate table (the plan-gate artifact)."""
        return {
            "sketch": self.sketch.summary(),
            "constraints": self.constraints.describe(),
            "chosen": (self.chosen.point.label()
                       if self.chosen is not None else None),
            "candidates": [
                {
                    "algorithm": c.point.algorithm,
                    "backend": c.point.backend,
                    "workers": c.point.workers,
                    "predicted_wall_seconds": c.predicted_wall_seconds,
                    "predicted_simulated_seconds":
                        c.prediction.simulated_seconds,
                    "feasible": c.feasible,
                    "reasons": list(c.reasons),
                }
                for c in self.candidates
            ],
        }


@contextmanager
def pinned_workers(point: CandidatePoint) -> Iterator[None]:
    """Pin the parallel pool to the candidate's worker count.

    The pool is process-wide and sized by ``REPRO_WORKERS`` at spawn, so
    choosing a different count means restarting it — exactly what a hand
    run with ``REPRO_WORKERS=N`` does, which keeps planned and forced
    runs on identical code paths.  Non-parallel candidates are no-ops.
    """
    from repro.exec import parallel

    if point.backend != PARALLEL or parallel.worker_count() == point.workers:
        yield
        return
    previous = os.environ.get(parallel.WORKERS_ENV)
    os.environ[parallel.WORKERS_ENV] = str(point.workers)
    parallel.shutdown_pool()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(parallel.WORKERS_ENV, None)
        else:
            os.environ[parallel.WORKERS_ENV] = previous
        parallel.shutdown_pool()


class Planner:
    """Sample -> predict -> argmin -> execute -> learn."""

    def __init__(
        self,
        corrections: Optional[CorrectionStore] = None,
        constraints: Optional[Constraints] = None,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        seed: int = 0,
        exact_below: int = DEFAULT_EXACT_BELOW,
        bootstrap_bench: Optional[str] = DEFAULT_BOOTSTRAP_BENCH,
    ):
        self.constraints = constraints or Constraints.from_environment()
        self.sample_rate = sample_rate
        self.seed = seed
        self.exact_below = exact_below
        if corrections is None:
            from repro.plan.corrections import corrections_path_from_env
            corrections = CorrectionStore(path=corrections_path_from_env())
        self.corrections = corrections
        # Cold-start calibration: the committed bench snapshot's
        # wall/sim ratios fill every factor no trace has taught yet.
        if bootstrap_bench is not None and os.path.exists(bootstrap_bench):
            self.corrections.bootstrap_from_bench_file(bootstrap_bench)

    # ------------------------------------------------------------------
    # planning

    def sketch(self, join_input: JoinInput) -> WorkloadSketch:
        """Sketch one input with the planner's sampling settings."""
        return sketch_workload(join_input, sample_rate=self.sample_rate,
                               seed=self.seed,
                               exact_below=self.exact_below)

    def predict_point(self, sketch: WorkloadSketch,
                      point: CandidatePoint) -> CandidatePrediction:
        """Price one explicit point against a sketch (gate calibration)."""
        return predict_candidate(AnalyticCache(sketch.workload), point,
                                 self.corrections)

    def plan(self, join_input: JoinInput,
             constraints: Optional[Constraints] = None) -> Plan:
        """Enumerate, predict, and rank every candidate for one input."""
        constraints = constraints or self.constraints
        sketch = self.sketch(join_input)
        analytic = AnalyticCache(sketch.workload)
        candidates: List[PlanCandidate] = []
        for point in enumerate_candidates(constraints):
            prediction = predict_candidate(analytic, point, self.corrections)
            feasibility = check_feasibility(
                point, prediction.predicted_wall_seconds,
                sketch.estimated_bytes, constraints)
            candidates.append(PlanCandidate(
                prediction=prediction, feasible=feasibility.ok,
                reasons=feasibility.reasons))
        if not candidates:
            raise ConfigError(
                "no candidates to plan over; constraints exclude every "
                "(algorithm, backend) point",
                constraints=constraints.describe())
        # Stable rank: predicted wall, then enumeration order — ties
        # (e.g. an empty input predicting ~0 everywhere) stay
        # deterministic across processes.
        order = {id(c): i for i, c in enumerate(candidates)}
        candidates.sort(key=lambda c: (c.predicted_wall_seconds,
                                       order[id(c)]))
        plan = Plan(sketch=sketch, candidates=candidates,
                    constraints=constraints)
        for candidate in candidates:
            if candidate.feasible:
                plan.chosen = candidate
                break
        return plan

    # ------------------------------------------------------------------
    # execution

    def execute(self, join_input: JoinInput, plan: Plan) -> JoinResult:
        """Run a plan's chosen point and stamp the bookkeeping.

        The execution is byte-for-byte the hand-forced path: ambient
        backend selection plus the standard pipeline entry point.  The
        plan metadata rides in ``result.meta`` — which the differential
        harness ignores, the same as the backend tag.
        """
        from repro.api import make_join

        if plan.chosen is None:
            raise ConfigError(
                "cannot execute a plan with no feasible candidate",
                candidates=len(plan.candidates))
        point = plan.chosen.point
        with use_backend(point.backend), pinned_workers(point):
            result = make_join(point.algorithm).run(join_input)
        meta = plan.meta()
        realized = {p.name: 0.0 for p in result.phases}
        for phase in result.phases:
            realized[phase.name] = realized.get(phase.name, 0.0) \
                + phase.wall_seconds
        for entry in meta["phases"]:
            entry["realized_wall_seconds"] = realized.get(entry["name"])
        meta["realized_wall_seconds"] = result.wall_seconds
        meta["realized_simulated_seconds"] = result.simulated_seconds
        result.meta[PLAN_META_KEY] = meta
        return result

    def run(self, join_input: JoinInput,
            constraints: Optional[Constraints] = None,
            learn: bool = True) -> JoinResult:
        """Plan, execute, and (by default) learn from one input."""
        result = self.execute(join_input, self.plan(join_input, constraints))
        if learn:
            self.learn(result)
        return result

    # ------------------------------------------------------------------
    # learning

    def learn(self, result: JoinResult) -> int:
        """Fold a planned result's realized walls into the corrections
        (persisting when the store has a path)."""
        observed = self.corrections.learn_from_results([result])
        if observed:
            self.corrections.save()
        return observed
