"""Validation of planner bookkeeping on executed results.

``repro trace --check`` runs :func:`verify_result_plan` alongside the
trace and fault validators: a result that claims it was planned must
carry a complete, internally consistent ``meta["plan"]`` — the chosen
point matches the algorithm that actually ran, realized totals agree
with the result's own accounting, and every prediction is a finite
non-negative number.  Results without plan metadata pass trivially
(hand-forced runs are not planned runs).
"""

from __future__ import annotations

import math
from typing import Optional

#: Keys every plan-metadata payload must carry.
REQUIRED_PLAN_KEYS = (
    "algorithm", "backend", "workers",
    "predicted_wall_seconds", "predicted_simulated_seconds",
    "realized_wall_seconds", "realized_simulated_seconds",
    "phases",
)

#: Relative tolerance for realized-total bookkeeping checks.
PLAN_TOLERANCE = 1e-6


def _bad_number(value) -> bool:
    try:
        v = float(value)
    except (TypeError, ValueError):
        return True
    return not math.isfinite(v) or v < 0


def verify_result_plan(result, tolerance: float = PLAN_TOLERANCE
                       ) -> Optional[str]:
    """Check a JoinResult's plan metadata for internal consistency.

    Returns ``None`` when the result carries no plan (nothing to check)
    or the plan's bookkeeping holds; otherwise a human-readable
    description of the first problem found.
    """
    meta = getattr(result, "meta", None) or {}
    plan = meta.get("plan")
    if plan is None:
        return None
    algorithm = getattr(result, "algorithm", "?")
    if not isinstance(plan, dict):
        return (f"{algorithm}: meta['plan'] is {type(plan).__name__}, "
                "not a dict — it was flattened in serialization")
    missing = [k for k in REQUIRED_PLAN_KEYS if k not in plan]
    if missing:
        return f"{algorithm}: plan metadata is missing {missing}"
    # The serve layer re-labels its results "serve"; every other planned
    # result must be the algorithm the plan chose.
    if algorithm not in (plan["algorithm"], "serve"):
        return (f"{algorithm}: result ran {algorithm!r} but the plan "
                f"chose {plan['algorithm']!r}")
    for key in ("predicted_wall_seconds", "predicted_simulated_seconds",
                "realized_wall_seconds", "realized_simulated_seconds"):
        if _bad_number(plan[key]):
            return (f"{algorithm}: plan {key} is {plan[key]!r}, not a "
                    "finite non-negative number")
    phases = plan["phases"]
    if not isinstance(phases, list) or not phases:
        return f"{algorithm}: plan phase list is empty"
    predicted_sum = 0.0
    for i, phase in enumerate(phases):
        if not isinstance(phase, dict) or "name" not in phase:
            return f"{algorithm}: plan phase #{i} is malformed: {phase!r}"
        for key in ("simulated_seconds", "base_wall_seconds",
                    "predicted_wall_seconds"):
            if _bad_number(phase.get(key)):
                return (f"{algorithm}: plan phase {phase['name']!r} {key} "
                        f"is {phase.get(key)!r}")
        predicted_sum += float(phase["predicted_wall_seconds"])
    total = float(plan["predicted_wall_seconds"])
    scale = max(abs(total), abs(predicted_sum), 1.0)
    if abs(total - predicted_sum) > tolerance * scale:
        return (f"{algorithm}: plan phases predict {predicted_sum!r} s "
                f"but the plan total claims {total!r} s")
    # Realized totals must agree with the result's own accounting when
    # this is the live result (serve results re-time the probe, and
    # algorithm-level totals no longer apply).
    if algorithm == plan["algorithm"]:
        result_sim = getattr(result, "simulated_seconds", None)
        if result_sim is not None:
            claimed = float(plan["realized_simulated_seconds"])
            scale = max(abs(result_sim), abs(claimed), 1.0)
            if abs(result_sim - claimed) > tolerance * scale:
                return (f"{algorithm}: plan claims "
                        f"{claimed!r} realized simulated seconds but the "
                        f"result reports {result_sim!r}")
        phase_names = {p.name for p in getattr(result, "phases", [])}
        if phase_names:
            extra = [p["name"] for p in phases
                     if p["name"] not in phase_names]
            if extra:
                return (f"{algorithm}: plan predicts phases {extra} the "
                        f"result never ran (ran: {sorted(phase_names)})")
    return None
