"""Candidate enumeration and constraint handling for the planner.

A candidate is one (algorithm, backend, workers) execution point.  The
planner enumerates every point the host can actually run — the parallel
backend only where shared memory works, worker counts up the power-of-two
ladder to the configured pool size — then filters by the operational
constraints the rest of the system already defines:

* **memory budget** (``REPRO_MEMORY_BUDGET`` / the spill plane): an input
  whose partitioned form exceeds the budget is only feasible on the
  spill-capable algorithms;
* **deadline** (the serve layer's ``deadline_ms``): a candidate whose
  predicted wall time already exceeds the request budget is refused
  up front instead of burning the slot and dying mid-probe.

Infeasible candidates stay in the explain table with their reason — the
point of ``repro plan`` is showing the decision, not hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exec.backend import BACKENDS, PARALLEL, parallel_status

#: Spill-capable algorithms (the ones that can honor a memory budget).
from repro.faults.plan import SPILL_ALGORITHM_NAMES


@dataclass(frozen=True)
class CandidatePoint:
    """One (algorithm, backend, workers) execution point."""

    algorithm: str
    backend: str
    workers: int = 1

    def label(self) -> str:
        """Short display form, e.g. ``csh/parallel@2``."""
        base = f"{self.algorithm}/{self.backend}"
        return f"{base}@{self.workers}" if self.backend == PARALLEL else base


@dataclass
class Constraints:
    """Operational constraints a plan must respect."""

    #: Algorithms to consider (None = every registered algorithm).
    algorithms: Optional[Sequence[str]] = None
    #: Backends to consider (None = all usable on this host).
    backends: Optional[Sequence[str]] = None
    #: Upper bound on the parallel worker ladder (None = the configured
    #: pool size, i.e. ``REPRO_WORKERS`` or the core count).
    max_workers: Optional[int] = None
    #: Resident-bytes budget; inputs beyond it need a spill-capable
    #: algorithm.  None = unconstrained.
    memory_budget_bytes: Optional[int] = None
    #: Wall-clock budget for the run, milliseconds.  None = none.
    deadline_ms: Optional[float] = None

    @staticmethod
    def from_environment(**overrides) -> "Constraints":
        """Constraints implied by the ambient environment: the spill
        plane's memory budget, every backend the host can run."""
        from repro.store.spill import memory_budget_from_env
        values = {"memory_budget_bytes": memory_budget_from_env()}
        values.update(overrides)
        return Constraints(**values)

    def describe(self) -> dict:
        """Plan-metadata form."""
        return {
            "algorithms": list(self.algorithms) if self.algorithms else None,
            "backends": list(self.backends) if self.backends else None,
            "max_workers": self.max_workers,
            "memory_budget_bytes": self.memory_budget_bytes,
            "deadline_ms": self.deadline_ms,
        }


def worker_ladder(max_workers: Optional[int] = None) -> Tuple[int, ...]:
    """Power-of-two worker counts up to the pool bound: 1, 2, 4, ...

    The pool is sized by ``REPRO_WORKERS`` (else the core count); probing
    every intermediate count would be quadratic noise for no signal.
    """
    from repro.exec.parallel import worker_count
    cap = worker_count() if max_workers is None else max(int(max_workers), 1)
    ladder = []
    w = 1
    while w < cap:
        ladder.append(w)
        w *= 2
    ladder.append(cap)
    return tuple(sorted(set(ladder)))


def enumerate_candidates(
    constraints: Optional[Constraints] = None,
) -> List[CandidatePoint]:
    """Every execution point the host can run under the constraints.

    Deterministic order: algorithms sorted, backends in registry order,
    workers ascending — ties in predicted cost resolve reproducibly.
    """
    from repro.api import ALGORITHMS

    constraints = constraints or Constraints()
    algorithms = (sorted(ALGORITHMS) if constraints.algorithms is None
                  else list(constraints.algorithms))
    wanted = (tuple(constraints.backends) if constraints.backends
              else BACKENDS)
    usable_parallel, _reason = parallel_status()
    points: List[CandidatePoint] = []
    for algorithm in algorithms:
        for backend in BACKENDS:
            if backend not in wanted:
                continue
            if backend == PARALLEL:
                if not usable_parallel:
                    continue
                for workers in worker_ladder(constraints.max_workers):
                    points.append(CandidatePoint(algorithm, backend, workers))
            else:
                points.append(CandidatePoint(algorithm, backend, 1))
    return points


@dataclass
class Feasibility:
    """Whether one candidate passes the constraints, and why not."""

    ok: bool
    reasons: List[str] = field(default_factory=list)


def check_feasibility(
    point: CandidatePoint,
    predicted_wall_seconds: float,
    estimated_bytes: int,
    constraints: Constraints,
) -> Feasibility:
    """Apply the memory-budget and deadline constraints to one point."""
    reasons: List[str] = []
    budget = constraints.memory_budget_bytes
    if (budget is not None and estimated_bytes > budget
            and point.algorithm not in SPILL_ALGORITHM_NAMES):
        reasons.append(
            f"input ~{estimated_bytes} bytes exceeds the {budget}-byte "
            f"memory budget and {point.algorithm!r} cannot spill")
    if (constraints.deadline_ms is not None
            and predicted_wall_seconds * 1000.0 > constraints.deadline_ms):
        reasons.append(
            f"predicted {predicted_wall_seconds * 1000.0:.1f} ms exceeds "
            f"the {constraints.deadline_ms:g} ms deadline")
    return Feasibility(ok=not reasons, reasons=reasons)
