"""Planner integration for the serve engine (``planner: auto`` mode).

The serve path has exactly one planning degree of freedom per request:
which backend executes the build and probe kernels.  The algorithm is
fixed (the engine *is* the no-partition join), workers are the simulated
pool, and the deadline/admission constraints are enforced by the engine
itself — so :class:`ServeProbePlanner` is a small, per-request
specialization of the batch planner: price the request's ``build`` (cold
keys only) and ``probe`` phases through the npj analytic model, pick the
cheapest usable backend, and learn serve-specific corrections (keyed
``("serve", phase, backend)``) from every answered request.

The decision is stamped into ``result.meta["plan"]`` in the same shape
the batch planner uses, so ``repro trace --check`` validates served
bookkeeping with the same :func:`repro.plan.verify.verify_result_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.analytic import ANALYTIC_EXECUTORS
from repro.data.relation import JoinInput, Relation
from repro.exec.backend import BACKENDS, PARALLEL, parallel_status
from repro.plan.corrections import CorrectionStore, corrections_path_from_env
from repro.plan.predict import base_wall_factor
from repro.plan.sketch import (
    DEFAULT_EXACT_BELOW,
    DEFAULT_SAMPLE_RATE,
    sketch_workload,
)

#: The pseudo-algorithm serve corrections are keyed under.
SERVE_PLAN_ALGORITHM = "serve"

#: The analytic model that prices a served request: the engine's build +
#: morsel-probe is the no-partition join's execution shape.
_SERVE_ANALYTIC = "cbase-npj"

#: Persist learned serve corrections every this many answered requests.
SAVE_EVERY = 32


@dataclass
class _PhaseEstimate:
    name: str
    simulated_seconds: float
    base_wall_seconds: float
    predicted_wall_seconds: float


@dataclass
class ProbeDecision:
    """One request's backend choice with its full candidate table."""

    backend: str
    cold: bool
    phases: List[_PhaseEstimate] = field(default_factory=list)
    #: (backend, predicted wall) for every candidate considered.
    candidates: List[dict] = field(default_factory=list)
    sketch: Optional[dict] = None

    @property
    def predicted_wall_seconds(self) -> float:
        return sum(p.predicted_wall_seconds for p in self.phases)

    @property
    def predicted_simulated_seconds(self) -> float:
        return sum(p.simulated_seconds for p in self.phases)


class ServeProbePlanner:
    """Backend auto-selection + correction learning for served probes."""

    def __init__(
        self,
        corrections: Optional[CorrectionStore] = None,
        backends: Optional[Sequence[str]] = None,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        exact_below: int = DEFAULT_EXACT_BELOW,
        seed: int = 0,
    ):
        if corrections is None:
            corrections = CorrectionStore(path=corrections_path_from_env())
        self.corrections = corrections
        self.backends = tuple(backends) if backends else None
        self.sample_rate = sample_rate
        self.exact_below = exact_below
        self.seed = seed
        self.planned = 0
        self.observed = 0

    def _usable_backends(self) -> List[str]:
        usable_parallel, _ = parallel_status()
        out = []
        for backend in BACKENDS:
            if self.backends is not None and backend not in self.backends:
                continue
            if backend == PARALLEL and not usable_parallel:
                continue
            out.append(backend)
        return out

    def plan_probe(self, build_rel: Relation, probe_rel: Relation,
                   cold: bool) -> ProbeDecision:
        """Pick the backend for one request (deterministic per input)."""
        sketch = sketch_workload(
            JoinInput(build_rel, probe_rel), sample_rate=self.sample_rate,
            seed=self.seed, exact_below=self.exact_below)
        analytic = ANALYTIC_EXECUTORS[_SERVE_ANALYTIC](sketch.workload)
        sims = {p.name: p.simulated_seconds for p in analytic.phases}
        if not cold:
            # Warm keys never build: the cached table is free.
            sims.pop("build", None)

        best: Optional[ProbeDecision] = None
        candidates: List[dict] = []
        for backend in self._usable_backends():
            factor = base_wall_factor(backend)
            phases = [
                _PhaseEstimate(
                    name=name,
                    simulated_seconds=sim,
                    base_wall_seconds=sim * factor,
                    predicted_wall_seconds=sim * factor
                    * self.corrections.factor(SERVE_PLAN_ALGORITHM, name,
                                              backend),
                )
                for name, sim in sims.items()
            ]
            decision = ProbeDecision(backend=backend, cold=cold,
                                     phases=phases)
            candidates.append({
                "backend": backend,
                "predicted_wall_seconds": decision.predicted_wall_seconds,
            })
            # Strict less-than: ties keep registry order, deterministic.
            if (best is None or decision.predicted_wall_seconds
                    < best.predicted_wall_seconds):
                best = decision
        if best is None:
            raise_from = self.backends
            from repro.errors import ConfigError
            raise ConfigError(
                "serve planner has no usable backend to choose from",
                requested=list(raise_from) if raise_from else None)
        best.candidates = candidates
        best.sketch = sketch.summary()
        self.planned += 1
        return best

    def finish(self, result, decision: ProbeDecision) -> None:
        """Stamp the plan into a served result and learn from it.

        Phases that were predicted but never ran (a build that another
        request shared mid-flight) are dropped from the stamped plan so
        the bookkeeping always describes the request that actually
        happened — ``verify_result_plan`` holds either way.
        """
        realized = {}
        for phase in result.phases:
            realized[phase.name] = realized.get(phase.name, 0.0) \
                + phase.wall_seconds
        kept = [p for p in decision.phases if p.name in realized]
        result.meta["plan"] = {
            "algorithm": SERVE_PLAN_ALGORITHM,
            "backend": decision.backend,
            "workers": 1,
            "predicted_wall_seconds":
                sum(p.predicted_wall_seconds for p in kept),
            "predicted_simulated_seconds":
                sum(p.simulated_seconds for p in kept),
            "realized_wall_seconds": result.wall_seconds,
            "realized_simulated_seconds": result.simulated_seconds,
            "phases": [
                {
                    "name": p.name,
                    "simulated_seconds": p.simulated_seconds,
                    "base_wall_seconds": p.base_wall_seconds,
                    "predicted_wall_seconds": p.predicted_wall_seconds,
                    "realized_wall_seconds": realized[p.name],
                }
                for p in kept
            ],
            "candidates": len(decision.candidates),
            "feasible": len(decision.candidates),
            "cold": decision.cold,
            "backend_candidates": list(decision.candidates),
            "sketch": decision.sketch,
            "constraints": {"backends": (list(self.backends)
                                         if self.backends else None)},
        }
        for p in kept:
            self.corrections.observe(SERVE_PLAN_ALGORITHM, p.name,
                                     decision.backend,
                                     p.base_wall_seconds, realized[p.name])
            self.observed += 1
        if self.observed and self.observed % SAVE_EVERY == 0:
            self.corrections.save()
