"""The paper's contribution: skew-conscious hash joins CSH and GSH."""

from repro.core.adaptive import AdaptiveConfig, AdaptiveJoin
from repro.core.csh import CSHConfig, CSHJoin
from repro.core.gsh import GSHConfig, GSHJoin

__all__ = ["CSHJoin", "CSHConfig", "GSHJoin", "GSHConfig",
           "AdaptiveJoin", "AdaptiveConfig"]
