"""CSH skew detection: sample R before partitioning.

Section IV-A, step (1): "CSH samples (e.g., 1%) keys from table R and uses
a hash table to compute the frequencies of the sampled keys.  If the
frequency of a key exceeds the pre-defined threshold (e.g., 2), the key is
marked as a skewed key.  Each skewed key is allocated a skewed partition."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.csh.checkup import SkewCheckupTable
from repro.cpu.linear_table import count_sample_frequencies
from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from repro.types import SeedLike, make_rng


@dataclass
class SkewDetection:
    """Result of the pre-partition sampling pass."""

    checkup: SkewCheckupTable
    sample_size: int
    counters: OpCounters

    @property
    def skewed_keys(self) -> np.ndarray:
        """The detected skewed keys (sorted)."""
        return self.checkup.keys

    @property
    def n_skewed(self) -> int:
        """Number of detected skewed keys."""
        return len(self.checkup)


def detect_skewed_keys(
    r_keys: np.ndarray,
    sample_rate: float = 0.01,
    freq_threshold: int = 2,
    seed: SeedLike = 0,
    max_skewed: int = None,
    capacity: int = None,
) -> SkewDetection:
    """Sample R's keys and mark frequent sampled keys as skewed.

    ``max_skewed`` optionally caps the number of skewed keys (most frequent
    first); the paper does not cap, and the default keeps that behaviour.
    ``capacity`` overrides the frequency counter's table size — the
    capacity-overflow recovery path retries detection with a grown table.
    """
    if not 0 < sample_rate <= 1:
        raise ConfigError(f"sample_rate must be in (0, 1], got {sample_rate}")
    if freq_threshold < 1:
        raise ConfigError(f"freq_threshold must be >= 1, got {freq_threshold}")
    r_keys = np.asarray(r_keys, dtype=np.uint32)
    n = r_keys.size
    sample_size = max(int(round(n * sample_rate)), min(n, 1))
    rng = make_rng(seed)
    counters = OpCounters()
    if sample_size == 0:
        return SkewDetection(
            checkup=SkewCheckupTable(np.empty(0, dtype=np.uint32)),
            sample_size=0, counters=counters,
        )
    idx = rng.integers(0, n, size=sample_size)
    sample = r_keys[idx]
    freq = count_sample_frequencies(sample, counters=counters,
                                    capacity=capacity)
    skewed = freq.above_threshold(freq_threshold)
    if max_skewed is not None and skewed.size > max_skewed:
        # above_threshold preserves descending frequency order.
        skewed = skewed[:max_skewed]
    counters.seq_tuple_reads += sample_size  # reading the sampled tuples
    counters.bytes_read += 8 * sample_size
    return SkewDetection(
        checkup=SkewCheckupTable(skewed),
        sample_size=sample_size,
        counters=counters,
    )
