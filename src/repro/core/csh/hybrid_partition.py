"""CSH's hybrid partition phase.

Section IV-A, steps (2) and (3): while partitioning R, skewed tuples are
diverted into per-key skewed partitions; while partitioning S, skewed
tuples are *not copied at all* — their join results are produced on the fly
by sequentially scanning the matching skewed R partition, in the style of
the hybrid hash join.  Normal tuples of both tables flow through the same
two-pass radix partitioning as Cbase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.csh.checkup import SkewCheckupTable, SkewedPartitionSet
from repro.cpu.hashing import hash_keys
from repro.cpu.partition import PartitionedRelation, partition_pass, refine_pass
from repro.cpu.segments import split_segments
from repro.cpu.threads import ThreadPool
from repro.data.relation import Relation
from repro.exec.counters import OpCounters
from repro.exec.output import JoinOutputBuffer, OutputSummary, combine_summaries


@dataclass
class HybridPartitionR:
    """Outcome of partitioning R with skew diversion."""

    normal: PartitionedRelation
    skewed: SkewedPartitionSet
    simulated_seconds: float
    counters: OpCounters
    n_skewed_tuples: int


@dataclass
class HybridPartitionS:
    """Outcome of partitioning S with on-the-fly skew joining."""

    normal: PartitionedRelation
    simulated_seconds: float
    counters: OpCounters
    summary: OutputSummary
    n_skewed_tuples: int
    buffers: List[JoinOutputBuffer] = field(default_factory=list)


def partition_r_hybrid(
    r: Relation,
    checkup: SkewCheckupTable,
    bits1: int,
    bits2: int,
    pool: ThreadPool,
) -> HybridPartitionR:
    """Partition R, diverting skewed tuples to per-key skewed partitions."""
    n = len(r)
    hashes = hash_keys(r.keys)
    lookup_counters = OpCounters()
    pids = checkup.lookup(r.keys, counters=lookup_counters)
    skew_mask = pids >= 0
    skewed = SkewedPartitionSet(len(checkup))
    skewed.fill(pids[skew_mask], r.keys[skew_mask], r.payloads[skew_mask])
    normal_idx = np.flatnonzero(~skew_mask)

    # Pass 1 counters follow the original per-thread segments: every tuple
    # is read twice (count scan + copy scan), checked in the checkup table
    # once, hashed, and moved exactly once (to a skewed partition or to its
    # normal pass-1 partition).
    per_thread = []
    for a, b in split_segments(n, pool.n_threads):
        m = b - a
        per_thread.append(OpCounters(
            seq_tuple_reads=2 * m,
            hash_ops=2 * m,
            key_compares=m,
            tuple_moves=m,
            bytes_read=2 * m * 8,
            bytes_written=m * 8,
        ))
    seconds = pool.static_phase_seconds(per_thread)
    counters = OpCounters.sum(per_thread)

    pass1 = partition_pass(
        r.keys[normal_idx], r.payloads[normal_idx], hashes[normal_idx],
        0, bits1, pool.n_threads,
    )
    normal = pass1.partitioned
    if bits2 > 0:
        pass2 = refine_pass(normal, bits1, bits2)
        schedule = pool.queue_phase_seconds(pass2.unit_counters)
        seconds += schedule.makespan
        counters += pass2.total_counters
        normal = pass2.partitioned
    return HybridPartitionR(
        normal=normal,
        skewed=skewed,
        simulated_seconds=seconds,
        counters=counters,
        n_skewed_tuples=int(skew_mask.sum()),
    )


def partition_s_hybrid(
    s: Relation,
    checkup: SkewCheckupTable,
    skewed_r: SkewedPartitionSet,
    bits1: int,
    bits2: int,
    pool: ThreadPool,
    output_capacity: int,
) -> HybridPartitionS:
    """Partition S; skewed S tuples join the skewed R partitions on the fly.

    For a skewed S tuple the worker sequentially reads every R tuple of the
    associated skewed partition and emits one output tuple per R tuple — no
    hash probe and no key verification are needed, because the skewed
    partition holds exactly the tuples of that key (Section IV-A).
    """
    n = len(s)
    hashes = hash_keys(s.keys)
    lookup_counters = OpCounters()
    pids = checkup.lookup(s.keys, counters=lookup_counters)
    skew_mask = pids >= 0
    normal_idx = np.flatnonzero(~skew_mask)
    skew_sizes = skewed_r.sizes() if len(checkup) else np.empty(0, np.int64)
    # Per-tuple on-the-fly work: |skewed R partition| reads and writes.
    fly_per_tuple = np.zeros(n, dtype=np.int64)
    if skew_mask.any():
        fly_per_tuple[skew_mask] = skew_sizes[pids[skew_mask]]

    per_thread = []
    for a, b in split_segments(n, pool.n_threads):
        m = b - a
        seg_mask = skew_mask[a:b]
        n_norm = int((~seg_mask).sum())
        fly = int(fly_per_tuple[a:b].sum())
        per_thread.append(OpCounters(
            # First scan reads and checks every tuple; only normal tuples
            # are re-read and copied by the second scan.
            seq_tuple_reads=m + n_norm + fly,
            hash_ops=m + n_norm,
            key_compares=m,
            tuple_moves=n_norm,
            output_tuples=fly,
            bytes_read=(m + n_norm) * 8 + fly * 8,
            bytes_written=n_norm * 8 + fly * 8,
        ))
    seconds = pool.static_phase_seconds(per_thread)
    counters = OpCounters.sum(per_thread)

    # Functional emission of the skewed join results, grouped per skewed key.
    buffers = [JoinOutputBuffer(output_capacity) for _ in range(pool.n_threads)]
    summaries = []
    if skew_mask.any():
        skew_pids = pids[skew_mask]
        skew_pays = s.payloads[skew_mask]
        order = np.argsort(skew_pids, kind="stable")
        sorted_pids = skew_pids[order]
        boundaries = np.flatnonzero(np.diff(sorted_pids)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [sorted_pids.size]])
        for i, (a, b) in enumerate(zip(starts, stops)):
            pid = int(sorted_pids[a])
            buf = buffers[i % len(buffers)]
            before = OutputSummary(buf.count, buf.checksum)
            buf.write_cartesian(skewed_r.payloads[pid], skew_pays[order[a:b]])
            summaries.append(OutputSummary(
                buf.count - before.count,
                (buf.checksum - before.checksum) & ((1 << 64) - 1),
            ))
    summary = combine_summaries(summaries)

    pass1 = partition_pass(
        s.keys[normal_idx], s.payloads[normal_idx], hashes[normal_idx],
        0, bits1, pool.n_threads,
    )
    normal = pass1.partitioned
    if bits2 > 0:
        pass2 = refine_pass(normal, bits1, bits2)
        schedule = pool.queue_phase_seconds(pass2.unit_counters)
        seconds += schedule.makespan
        counters += pass2.total_counters
        normal = pass2.partitioned
    return HybridPartitionS(
        normal=normal,
        simulated_seconds=seconds,
        counters=counters,
        summary=summary,
        n_skewed_tuples=int(skew_mask.sum()),
        buffers=buffers,
    )
