"""CSH: the CPU Skew-conscious Hash join (the paper's Section IV-A).

Pipeline: (1) detect skewed keys by sampling R; (2) partition R, diverting
skewed tuples into per-key skewed partitions; (3) partition S, joining
skewed S tuples against the skewed partitions on the fly (hybrid-hash-join
style); (4) NM-join the remaining normal partition pairs exactly like
Cbase's join phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.csh.detector import SkewDetection, detect_skewed_keys
from repro.core.csh.checkup import SkewCheckupTable
from repro.core.csh.hybrid_partition import partition_r_hybrid, partition_s_hybrid
from repro.cpu.spacesaving import streaming_skew_detection
from repro.exec.backend import current_backend
from repro.exec.counters import OpCounters
from repro.cpu.join_phase import join_partition_pairs
from repro.cpu.partition import choose_radix_bits
from repro.cpu.threads import ThreadPool
from repro.data.relation import JoinInput
from repro.errors import CapacityError, ConfigError, UnrecoveredFaultError
from repro.exec.cost_model import CPUCostModel, DEFAULT_CPU_COST_MODEL
from repro.exec.output import DEFAULT_CAPACITY
from repro.exec.result import JoinResult
from repro.faults.plan import CAPACITY_OVERFLOW
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope, fault_scope
from repro.obs.rss import peak_rss_bytes
from repro.obs.trace import Tracer, activate
from repro.store.spill import current_spill_session
from repro.types import SeedLike


@dataclass(frozen=True)
class CSHConfig:
    """Tuning knobs for CSH (paper defaults: 1% sample, threshold 2)."""

    n_threads: int = 20
    sample_rate: float = 0.01
    freq_threshold: int = 2
    #: Skew detection strategy: "sample" (the paper's) or "spacesaving"
    #: (extension: one-pass Misra-Gries summary with guaranteed recall).
    detector: str = "sample"
    #: Minimum key frequency treated as skewed by the streaming detector.
    min_skew_frequency: float = 1e-4
    target_partition_tuples: int = 2048
    bits_pass1: Optional[int] = None
    bits_pass2: Optional[int] = None
    output_capacity: int = DEFAULT_CAPACITY
    cost_model: CPUCostModel = DEFAULT_CPU_COST_MODEL
    sample_seed: SeedLike = 0

    def __post_init__(self):
        if self.n_threads <= 0:
            raise ConfigError("n_threads must be positive")
        if not 0 < self.sample_rate <= 1:
            raise ConfigError("sample_rate must be in (0, 1]")
        if self.freq_threshold < 1:
            raise ConfigError("freq_threshold must be >= 1")
        if self.detector not in ("sample", "spacesaving"):
            raise ConfigError(
                f"unknown detector {self.detector!r}; use 'sample' or "
                "'spacesaving'")
        if not 0 < self.min_skew_frequency < 1:
            raise ConfigError("min_skew_frequency must be in (0, 1)")

    def resolve_bits(self, n_tuples: int) -> Tuple[int, int]:
        """Radix bit widths for the two partition passes."""
        if self.bits_pass1 is not None:
            return self.bits_pass1, self.bits_pass2 or 0
        return choose_radix_bits(n_tuples, self.target_partition_tuples)


class CSHJoin:
    """The CSH pipeline."""

    name = "csh"

    def __init__(self, config: CSHConfig = CSHConfig()):
        self.config = config
        self.pool = ThreadPool(config.n_threads, config.cost_model)

    def run(self, join_input: JoinInput) -> JoinResult:
        """Execute CSH: sample, hybrid partition, NM-join."""
        cfg = self.config
        r, s = join_input.r, join_input.s
        bits1, bits2 = cfg.resolve_bits(max(len(r), len(s)))
        result = JoinResult(
            algorithm=self.name, n_r=len(r), n_s=len(s),
            output_count=0, output_checksum=0,
            meta={"bits_pass1": bits1, "bits_pass2": bits2,
                  "backend": current_backend()},
        )
        tracer = Tracer(self.name, algorithm=self.name,
                        n_r=len(r), n_s=len(s))
        metrics = tracer.metrics
        with activate(tracer), fault_scope(self.name) as faults:
            metrics.counter("join.tuples_scanned").inc(len(r) + len(s))

            with tracer.span("sample", algo=self.name,
                             detector=cfg.detector) as span:
                detection, detect_overhead = self._detect(r.keys)
                # Detection parallelizes across the pool like every other
                # phase.
                span.finish(
                    simulated_seconds=(
                        cfg.cost_model.seconds(detection.counters)
                        / cfg.n_threads
                        + detect_overhead
                    ),
                    counters=detection.counters,
                    skewed_keys=float(detection.n_skewed),
                    sample_size=float(detection.sample_size),
                )
            result.phases.append(span.phase_result)
            result.meta["skewed_keys"] = detection.n_skewed
            metrics.counter("skew.keys_detected").inc(detection.n_skewed)
            metrics.counter("skew.tuples_sampled").inc(detection.sample_size)

            with tracer.span("partition", algo=self.name) as span:
                part_r = partition_r_hybrid(r, detection.checkup, bits1,
                                            bits2, self.pool)
                part_s = partition_s_hybrid(
                    s, detection.checkup, part_r.skewed, bits1, bits2,
                    self.pool, cfg.output_capacity,
                )
                span.finish(
                    simulated_seconds=(part_r.simulated_seconds
                                       + part_s.simulated_seconds),
                    counters=part_r.counters + part_s.counters,
                    skewed_r_tuples=float(part_r.n_skewed_tuples),
                    skewed_s_tuples=float(part_s.n_skewed_tuples),
                    skewed_output=float(part_s.summary.count),
                )
            result.phases.append(span.phase_result)
            result.meta["skewed_r_tuples"] = part_r.n_skewed_tuples
            result.meta["skewed_s_tuples"] = part_s.n_skewed_tuples
            result.meta["skewed_output"] = part_s.summary.count
            metrics.counter("skew.tuples_diverted").inc(
                part_r.n_skewed_tuples + part_s.n_skewed_tuples
            )
            metrics.histogram("partition.sizes").observe_many(
                part_r.normal.sizes()
            )

            # Out-of-core gate on the NM-join inputs (the skewed side is
            # joined on the fly during partitioning and never spills).
            # Zero simulated seconds, and the span stays out of
            # result.phases so the spilled run keeps the in-RAM phase
            # structure exactly.
            norm_r, norm_s = part_r.normal, part_s.normal
            spill = current_spill_session()
            if spill is not None:
                with tracer.span("spill", algo=self.name) as span:
                    norm_r, norm_s = spill.spill_pair(norm_r, norm_s,
                                                      label="nm-join")
                    span.finish(
                        simulated_seconds=0.0,
                        spilled_partitions=spill.spilled_partitions,
                    )

            with tracer.span("nm-join", algo=self.name) as span:
                phase = join_partition_pairs(
                    norm_r, norm_s, self.pool,
                    output_capacity=cfg.output_capacity,
                )
                span.finish(
                    simulated_seconds=phase.simulated_seconds,
                    counters=phase.counters,
                    task_count=phase.task_count,
                    idle_fraction=phase.schedule.idle_fraction,
                )
            result.phases.append(span.phase_result)
            metrics.gauge("taskqueue.join_idle_fraction").set(
                phase.schedule.idle_fraction
            )

        result.output_count = part_s.summary.count + phase.summary.count
        result.output_checksum = (
            part_s.summary.checksum + phase.summary.checksum
        ) & ((1 << 64) - 1)
        if spill is not None:
            spill.annotate(result)
        metrics.counter("join.output_tuples").inc(result.output_count)
        result.meta["peak_rss_bytes"] = peak_rss_bytes()
        result.faults = faults.reports
        result.trace = tracer.record()
        return result

    def _detect(self, r_keys):
        """Run the configured skew detector, regrowing on overflow.

        The sampling detector's frequency counter is a fixed-capacity
        structure; on a (injected or organic) :class:`CapacityError` the
        detection retries with the table grown by the policy's regrow
        factor.  Returns ``(detection, overhead_seconds)`` where the
        overhead prices the wasted detection attempts plus backoff.
        """
        cfg = self.config
        scope = current_fault_scope()
        policy = scope.policy
        retries = 0
        backoff_total = 0.0
        capacity = None
        injected = False
        last_error = ""
        while True:
            error = None
            spec = scope.fire("detect")
            if spec is not None:
                injected = True
                error = CapacityError(
                    "injected skew-detector overflow",
                    detector=cfg.detector, capacity=capacity or 0,
                )
            else:
                try:
                    detection = self._detect_once(r_keys, capacity)
                except CapacityError as exc:
                    error = exc
            if error is None:
                break
            retries += 1
            last_error = str(error)
            backoff_total += policy.backoff_seconds(retries)
            if retries > policy.max_retries:
                report = scope.record(FailureReport(
                    kind=CAPACITY_OVERFLOW, point="detect",
                    algorithm=scope.algorithm, phase=current_phase_name(),
                    action="abort", recovered=False, injected=injected,
                    retries=retries, backoff_seconds=backoff_total,
                    error=last_error,
                    context=dict(getattr(error, "context", {})),
                ))
                raise UnrecoveredFaultError(last_error, report=report)
            base = capacity if capacity is not None else max(
                4 * max(int(round(r_keys.size * cfg.sample_rate)), 1), 16)
            capacity = base * policy.regrow_factor
        overhead = 0.0
        if retries:
            per_attempt = (cfg.cost_model.seconds(detection.counters)
                           / cfg.n_threads)
            overhead = (retries * policy.crash_cost_fraction * per_attempt
                        + backoff_total)
            scope.record(FailureReport(
                kind=CAPACITY_OVERFLOW, point="detect",
                algorithm=scope.algorithm, phase=current_phase_name(),
                action="regrow", recovered=True, injected=injected,
                retries=retries, backoff_seconds=backoff_total,
                error=last_error,
                context={"capacity": capacity or 0,
                         "detector": cfg.detector},
            ))
        return detection, overhead

    def _detect_once(self, r_keys, capacity=None) -> SkewDetection:
        """One detection attempt with an optional counter-capacity override."""
        cfg = self.config
        if cfg.detector == "sample":
            return detect_skewed_keys(
                r_keys,
                sample_rate=cfg.sample_rate,
                freq_threshold=cfg.freq_threshold,
                seed=cfg.sample_seed,
                capacity=capacity,
            )
        counters = OpCounters()
        skewed = streaming_skew_detection(
            r_keys, min_frequency=cfg.min_skew_frequency, counters=counters)
        return SkewDetection(
            checkup=SkewCheckupTable(skewed),
            sample_size=int(len(r_keys)),
            counters=counters,
        )
