"""The skew checkup table.

CSH consults this table for every tuple during partitioning: "For each R
tuple, it checks the tuple in the skew checkup table.  If the join key is a
skewed key, then the tuple is appended to the associated skewed partition as
indicated by the part_id in the skew checkup table" (Section IV-A).

The lookup is a hash-table probe in the original; here it is a vectorized
sorted-array lookup whose per-tuple cost (one hash + one compare) is
accounted explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.exec.backend import dispatch
from repro.exec.counters import OpCounters


class SkewCheckupTable:
    """Maps each skewed key to its skewed partition id.

    Keys not in the table map to ``-1`` (normal route).  Partition ids are
    assigned densely in key order: skewed key ``i`` owns skewed partition
    ``i``.
    """

    def __init__(self, skewed_keys: np.ndarray):
        keys = np.unique(np.asarray(skewed_keys, dtype=np.uint32))
        self.keys = keys
        self.n_skewed = int(keys.size)
        self._index = {int(k): i for i, k in enumerate(keys.tolist())}

    def lookup(self, keys: np.ndarray,
               counters: OpCounters = None) -> np.ndarray:
        """Return the skewed partition id per key (-1 for normal keys)."""
        keys = np.asarray(keys, dtype=np.uint32)
        n = keys.size
        if counters is not None:
            counters.hash_ops += n
            counters.key_compares += n
        if self.n_skewed == 0 or n == 0:
            return np.full(n, -1, dtype=np.int64)
        return dispatch(self._lookup_scalar, self._lookup_vector)(keys)

    def _lookup_vector(self, keys: np.ndarray) -> np.ndarray:
        """Batch lookup: one searchsorted over the sorted key array."""
        pos = np.searchsorted(self.keys, keys)
        pos_clipped = np.minimum(pos, self.n_skewed - 1)
        hit = self.keys[pos_clipped] == keys
        return np.where(hit, pos_clipped, -1).astype(np.int64)

    def _lookup_scalar(self, keys: np.ndarray) -> np.ndarray:
        """Literal per-tuple probe of the checkup table."""
        index = self._index
        out = np.empty(keys.size, dtype=np.int64)
        for i, k in enumerate(keys.tolist()):
            out[i] = index.get(k, -1)
        return out

    def part_id_of(self, key: int) -> int:
        """Skewed partition id of one key, or -1."""
        ids = self.lookup(np.asarray([key], dtype=np.uint32))
        return int(ids[0])

    def __len__(self) -> int:
        return self.n_skewed


class SkewedPartitionSet:
    """Per-skewed-key R tuple arrays (the "skewed partitions").

    Built once while partitioning R; read sequentially for every skewed S
    tuple during the S partitioning pass.
    """

    def __init__(self, n_skewed: int):
        if n_skewed < 0:
            raise ConfigError("n_skewed must be non-negative")
        self.n_skewed = n_skewed
        self.payloads = [np.empty(0, dtype=np.uint32) for _ in range(n_skewed)]
        self.keys = [np.empty(0, dtype=np.uint32) for _ in range(n_skewed)]

    def fill(self, part_ids: np.ndarray, keys: np.ndarray,
             payloads: np.ndarray) -> None:
        """Group skewed tuples by partition id, preserving arrival order."""
        if part_ids.size == 0:
            return
        dispatch(self._fill_scalar, self._fill_vector)(part_ids, keys,
                                                       payloads)

    def _fill_scalar(self, part_ids: np.ndarray, keys: np.ndarray,
                     payloads: np.ndarray) -> None:
        """Literal append of each skewed tuple to its partition array."""
        by_pid = {}
        for i, pid in enumerate(part_ids.tolist()):
            by_pid.setdefault(pid, []).append(i)
        for pid, idx in by_pid.items():
            sel = np.asarray(idx, dtype=np.int64)
            self.payloads[pid] = payloads[sel].copy()
            self.keys[pid] = keys[sel].copy()

    def _fill_vector(self, part_ids: np.ndarray, keys: np.ndarray,
                     payloads: np.ndarray) -> None:
        """Batch grouping via one stable sort over partition ids."""
        order = np.argsort(part_ids, kind="stable")
        sorted_ids = part_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [sorted_ids.size]])
        for a, b in zip(starts, stops):
            pid = int(sorted_ids[a])
            self.payloads[pid] = payloads[order[a:b]].copy()
            self.keys[pid] = keys[order[a:b]].copy()

    def size_of(self, part_id: int) -> int:
        """Tuples stored for one skewed partition."""
        return int(self.payloads[part_id].size)

    def sizes(self) -> np.ndarray:
        """Tuples per skewed partition."""
        return np.asarray([p.size for p in self.payloads], dtype=np.int64)

    def total_tuples(self) -> int:
        """Total skewed tuples stored."""
        return int(self.sizes().sum())
