"""CSH: CPU Skew-conscious Hash join."""

from repro.core.csh.checkup import SkewCheckupTable, SkewedPartitionSet
from repro.core.csh.detector import SkewDetection, detect_skewed_keys
from repro.core.csh.hybrid_partition import (
    HybridPartitionR,
    HybridPartitionS,
    partition_r_hybrid,
    partition_s_hybrid,
)
from repro.core.csh.pipeline import CSHConfig, CSHJoin

__all__ = [
    "SkewCheckupTable",
    "SkewedPartitionSet",
    "SkewDetection",
    "detect_skewed_keys",
    "HybridPartitionR",
    "HybridPartitionS",
    "partition_r_hybrid",
    "partition_s_hybrid",
    "CSHConfig",
    "CSHJoin",
]
