"""GSH skew detection: sample large partitions after partitioning.

Section IV-B, step (2): after the partition phase the size of every
partition is known; partitions above a threshold are *large*.  For each
large partition GSH samples ~1% of its tuples, counts frequencies in a
linear-probing hash table, and marks the top-k most frequent keys (k = 3 in
the paper's experiments) as skewed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.cpu.linear_table import count_sample_frequencies
from repro.cpu.partition import PartitionedRelation
from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from repro.types import SeedLike, make_rng


@dataclass
class PartitionSkewInfo:
    """Skewed keys detected in one large partition."""

    partition: int
    skewed_keys: np.ndarray
    sample_size: int


@dataclass
class GpuSkewDetection:
    """Detection outcome across all large partitions."""

    large_partitions: np.ndarray
    per_partition: List[PartitionSkewInfo] = field(default_factory=list)
    #: Per-large-partition block counters (one detection block each).
    block_counters: List[OpCounters] = field(default_factory=list)

    @property
    def n_large(self) -> int:
        """Number of large partitions."""
        return int(self.large_partitions.size)

    def skewed_keys_of(self, partition: int) -> np.ndarray:
        """Skewed keys detected in one partition."""
        for info in self.per_partition:
            if info.partition == partition:
                return info.skewed_keys
        return np.empty(0, dtype=np.uint32)

    def all_skewed_keys(self) -> np.ndarray:
        """Union of skewed keys over all large partitions."""
        if not self.per_partition:
            return np.empty(0, dtype=np.uint32)
        return np.unique(np.concatenate(
            [info.skewed_keys for info in self.per_partition]
        ))


def find_large_partitions(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    threshold_tuples: int,
) -> np.ndarray:
    """Partitions whose R or S side exceeds the size threshold."""
    if threshold_tuples <= 0:
        raise ConfigError("threshold_tuples must be positive")
    r_sizes = part_r.sizes()
    s_sizes = part_s.sizes()
    return np.flatnonzero((r_sizes > threshold_tuples)
                          | (s_sizes > threshold_tuples))


def detect_partition_skew(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    threshold_tuples: int,
    sample_rate: float = 0.01,
    top_k: int = 3,
    seed: SeedLike = 0,
    adaptive_k: bool = False,
    max_k: int = 64,
) -> GpuSkewDetection:
    """Sample each large partition (both sides) and take its top-k keys.

    With ``adaptive_k=True`` the per-partition k follows the paper's
    selection rule directly — "k should be chosen to remove most skewed
    keys so that the normal partition containing the remaining tuples can
    fit into the shared memory": the smallest k (capped at ``max_k``)
    whose estimated removal brings the partition under the threshold.
    ``top_k`` then acts as the minimum.
    """
    if not 0 < sample_rate <= 1:
        raise ConfigError("sample_rate must be in (0, 1]")
    if top_k < 1:
        raise ConfigError("top_k must be >= 1")
    if adaptive_k and max_k < top_k:
        raise ConfigError("max_k must be >= top_k")
    rng = make_rng(seed)
    large = find_large_partitions(part_r, part_s, threshold_tuples)
    detection = GpuSkewDetection(large_partitions=large)
    for p in large:
        p = int(p)
        r_keys, _ = part_r.partition(p)
        s_keys, _ = part_s.partition(p)
        pool = np.concatenate([r_keys, s_keys])
        n = pool.size
        sample_size = max(int(round(n * sample_rate)), min(n, 1))
        counters = OpCounters()
        idx = rng.integers(0, n, size=sample_size)
        freq = count_sample_frequencies(pool[idx], counters=counters)
        counters.seq_tuple_reads += sample_size
        counters.bytes_read += 8 * sample_size
        k = top_k
        if adaptive_k:
            k = _choose_k(freq.counts, n, sample_size, threshold_tuples,
                          min_k=top_k, max_k=max_k)
        detection.per_partition.append(PartitionSkewInfo(
            partition=p,
            skewed_keys=np.sort(freq.top_k(k)).astype(np.uint32),
            sample_size=sample_size,
        ))
        detection.block_counters.append(counters)
    return detection


def _choose_k(sampled_counts: np.ndarray, partition_tuples: int,
              sample_size: int, threshold_tuples: int,
              min_k: int, max_k: int) -> int:
    """Smallest k whose estimated removal fits the partition in memory.

    Sampled frequencies scale by ``partition_tuples / sample_size`` to
    estimate each hot key's true tuple count; keys are stripped greedily
    (they arrive sorted by frequency) until the remainder estimate drops
    under the threshold or ``max_k`` is reached.
    """
    if sample_size <= 0 or sampled_counts.size == 0:
        return min_k
    scale = partition_tuples / sample_size
    remaining = float(partition_tuples)
    k = 0
    for count in sampled_counts[:max_k]:
        if k >= min_k and remaining <= threshold_tuples:
            break
        remaining -= float(count) * scale
        k += 1
    return max(k, min_k)
