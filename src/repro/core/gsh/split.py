"""GSH's large-partition split.

Section IV-B, step (3): each large partition is divided into per-skewed-key
tuple arrays plus a normal partition.  Every tuple is checked against the
partition's (at most k) skewed keys; skewed tuples are appended to the
array of their key, normal tuples to the normal partition.  The same
procedure runs on the R and the S side, so the normal partitions stay
aligned for the NM-join and the skewed arrays pair up by key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.gsh.detector import GpuSkewDetection
from repro.cpu.partition import PartitionedRelation
from repro.exec.backend import dispatch
from repro.exec.counters import OpCounters
from repro.gpu.kernel import BlockWork, uniform_grid
from repro.gpu.partitioning import PARTITION_TUPLES_PER_BLOCK
from repro.types import KEY_DTYPE, PAYLOAD_DTYPE


@dataclass
class SkewedArrays:
    """Per-skewed-key tuple arrays for one table side."""

    payloads: Dict[int, np.ndarray] = field(default_factory=dict)

    def size_of(self, key: int) -> int:
        """Tuples stored for one skewed key."""
        arr = self.payloads.get(int(key))
        return 0 if arr is None else int(arr.size)

    def keys(self) -> List[int]:
        """Skewed keys with stored tuples (sorted)."""
        return sorted(self.payloads)

    def total_tuples(self) -> int:
        """Total tuples across all skewed arrays."""
        return sum(arr.size for arr in self.payloads.values())


@dataclass
class SplitResult:
    """Aligned normal partitions plus per-key skewed arrays."""

    normal_r: PartitionedRelation
    normal_s: PartitionedRelation
    skewed_r: SkewedArrays
    skewed_s: SkewedArrays
    #: Block work of the split kernel (empty if nothing was large).
    block_work: List[BlockWork] = field(default_factory=list)

    @property
    def counters(self) -> OpCounters:
        """Total operation counters of the split kernel."""
        return OpCounters.sum(w.total_counters for w in self.block_work)


def _split_one_vector(
    k: np.ndarray,
    v: np.ndarray,
    h: np.ndarray,
    skew_keys: np.ndarray,
    skewed: SkewedArrays,
):
    """Batch split of one large partition: mask + stable sort scatter."""
    mask = np.isin(k, skew_keys)
    if mask.any():
        sk, sv = k[mask], v[mask]
        order = np.argsort(sk, kind="stable")
        sk, sv = sk[order], sv[order]
        bounds = np.flatnonzero(np.diff(sk)) + 1
        starts = np.concatenate([[0], bounds])
        stops = np.concatenate([bounds, [sk.size]])
        for a, b in zip(starts, stops):
            skewed.payloads[int(sk[a])] = sv[a:b].copy()
        return k[~mask], v[~mask], h[~mask]
    return k, v, h


def _split_one_scalar(
    k: np.ndarray,
    v: np.ndarray,
    h: np.ndarray,
    skew_keys: np.ndarray,
    skewed: SkewedArrays,
):
    """Literal split of one large partition, tuple-at-a-time appends."""
    skew_set = {int(key) for key in np.asarray(skew_keys).tolist()}
    per_key: Dict[int, List[int]] = {}
    normal: List[int] = []
    for i, key in enumerate(k.tolist()):
        if key in skew_set:
            per_key.setdefault(key, []).append(int(v[i]))
        else:
            normal.append(i)
    for key, pays in per_key.items():
        skewed.payloads[key] = np.asarray(pays, dtype=PAYLOAD_DTYPE)
    if not per_key:
        return k, v, h
    idx = np.asarray(normal, dtype=np.int64)
    return k[idx], v[idx], h[idx]


def _split_side(
    part: PartitionedRelation,
    detection: GpuSkewDetection,
    skewed: SkewedArrays,
    block_work: List[BlockWork],
    top_k: int,
) -> PartitionedRelation:
    """Split one table side; returns its new normal partitioning."""
    keys_parts: List[np.ndarray] = []
    pays_parts: List[np.ndarray] = []
    hash_parts: List[np.ndarray] = []
    sizes = np.zeros(part.fanout, dtype=np.int64)
    large_set = {int(p) for p in detection.large_partitions}
    split_one = dispatch(_split_one_scalar, _split_one_vector)
    for p in range(part.fanout):
        k, v = part.partition(p)
        h = part.partition_hashes(p)
        if p in large_set and k.size:
            n_full = int(k.size)
            skew_keys = detection.skewed_keys_of(p)
            k, v, h = split_one(k, v, h, skew_keys, skewed)
            # Split kernel: every tuple re-read twice (count + scatter),
            # compared against <= k skewed keys, and copied once.
            per_tuple = OpCounters(
                seq_tuple_reads=2,
                key_compares=top_k,
                tuple_moves=1,
                bytes_read=16,
                bytes_written=8,
            )
            block_work.extend(
                uniform_grid(n_full, PARTITION_TUPLES_PER_BLOCK, per_tuple)
            )
        keys_parts.append(k)
        pays_parts.append(v)
        hash_parts.append(h)
        sizes[p] = k.size
    offsets = np.zeros(part.fanout + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return PartitionedRelation(
        np.concatenate(keys_parts) if keys_parts else np.empty(0, KEY_DTYPE),
        np.concatenate(pays_parts) if pays_parts else np.empty(0, PAYLOAD_DTYPE),
        offsets,
        np.concatenate(hash_parts) if hash_parts else np.empty(0, np.uint32),
    )


def split_large_partitions(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    detection: GpuSkewDetection,
    top_k: int,
) -> SplitResult:
    """Divide every large partition into skewed arrays + normal partition."""
    skewed_r = SkewedArrays()
    skewed_s = SkewedArrays()
    block_work: List[BlockWork] = []
    normal_r = _split_side(part_r, detection, skewed_r, block_work, top_k)
    normal_s = _split_side(part_s, detection, skewed_s, block_work, top_k)
    return SplitResult(
        normal_r=normal_r,
        normal_s=normal_s,
        skewed_r=skewed_r,
        skewed_s=skewed_s,
        block_work=block_work,
    )
