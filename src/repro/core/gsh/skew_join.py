"""GSH's skewed-tuple join kernel.

Section IV-B, step (5): "GSH computes join result tuples for a skewed key
using multiple thread blocks.  Each thread block focuses on one R tuple
from the skewed R tuple array.  The threads in the thread blocks read the
skewed S tuples and write the join result tuples in parallel ... the
thread block performs coalesced memory accesses."

For a key with nR R tuples and nS S tuples this launches nR blocks, each
streaming the nS S payloads with coalesced reads and writing nS output
tuples with coalesced writes — a purely bandwidth-bound kernel that spreads
one key's work across the whole device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.gsh.split import SkewedArrays
from repro.exec.counters import OpCounters
from repro.exec.output import (
    DEFAULT_CAPACITY,
    JoinOutputBuffer,
    OutputSummary,
    combine_summaries,
)
from repro.gpu.kernel import BlockWork
from repro.gpu.simulator import GPUSimulator


@dataclass
class SkewJoinResult:
    """Outcome of the skewed-key join kernel."""

    summary: OutputSummary
    seconds: float
    counters: OpCounters
    n_blocks: int
    #: Keys that actually produced output (matched on both sides).
    joined_keys: List[int] = field(default_factory=list)


def skew_join_phase(
    skewed_r: SkewedArrays,
    skewed_s: SkewedArrays,
    sim: GPUSimulator,
    output_capacity: int = DEFAULT_CAPACITY,
    kernel_name: str = "gsh_skew_join",
) -> SkewJoinResult:
    """Join the per-key skewed arrays with one block per R tuple."""
    work: List[BlockWork] = []
    summaries: List[OutputSummary] = []
    joined: List[int] = []
    buffer = JoinOutputBuffer(output_capacity)
    shared_keys = sorted(set(skewed_r.keys()) & set(skewed_s.keys()))
    for key in shared_keys:
        r_pays = skewed_r.payloads[key]
        s_pays = skewed_s.payloads[key]
        n_r, n_s = int(r_pays.size), int(s_pays.size)
        if n_r == 0 or n_s == 0:
            continue
        # One block per R tuple: stream the S array, write n_s outputs.
        per_block = OpCounters(
            seq_tuple_reads=n_s,
            output_tuples=n_s,
            atomic_ops=1,  # output-offset reservation
            bytes_read=8 + 8 * n_s,
            bytes_written=8 * n_s,
        )
        work.append(BlockWork(n_r, per_block))
        before_count, before_ck = buffer.count, buffer.checksum
        buffer.write_cartesian(r_pays, s_pays)
        summaries.append(OutputSummary(
            buffer.count - before_count,
            (buffer.checksum - before_ck) & ((1 << 64) - 1),
        ))
        joined.append(key)
    launch = sim.launch(kernel_name, work)
    return SkewJoinResult(
        summary=combine_summaries(summaries),
        seconds=launch.seconds,
        counters=launch.counters,
        n_blocks=launch.n_blocks,
        joined_keys=joined,
    )
