"""GSH: the GPU Skew-conscious Hash join (the paper's Section IV-B).

Pipeline: (1) partition R and S with the simple count-then-scatter, two
passes; (2) detect skewed keys by sampling *large* partitions (top-k per
partition, k = 3); (3) split large partitions into per-key skewed arrays
plus a normal partition; (4) NM-join the normal partition pairs, one thread
block each; (5) join the skewed arrays with multiple thread blocks per
skewed key.

Unlike CSH, detection runs *after* partitioning: a skew check inside the
partitioning kernel would diverge the warps, and the GPU's bandwidth makes
the extra copy of S tuples cheap (Section IV-B's design discussion).

Fault degradation follows a two-rung ladder.  A skew-split failure
(injected or organic capacity overflow in detect/split) degrades to
Gbase's sub-list decomposition over the *already partitioned* data — the
partition phase's work is reused, only the skew machinery is abandoned.
A kernel that exhausts its retries degrades all the way to the CPU
no-partition join.  Both degradations preserve the exact join output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.gsh.detector import detect_partition_skew
from repro.core.gsh.skew_join import skew_join_phase
from repro.core.gsh.split import split_large_partitions
from repro.data.relation import JoinInput
from repro.errors import CapacityError, ConfigError, UnrecoveredFaultError
from repro.exec.backend import current_backend
from repro.exec.output import DEFAULT_CAPACITY
from repro.exec.result import JoinResult
from repro.faults.plan import CAPACITY_OVERFLOW
from repro.faults.recovery import append_partial_phases
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope, fault_scope
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.gbase.join_kernels import gbase_join_phase
from repro.gpu.gbase.pipeline import run_cpu_fallback
from repro.gpu.kernel import BlockWork
from repro.gpu.partitioning import choose_gpu_bits, gsh_partition
from repro.gpu.simulator import GPUSimulator, cost_model_for
from repro.obs.rss import peak_rss_bytes
from repro.obs.trace import Tracer, activate
from repro.types import SeedLike


@dataclass(frozen=True)
class GSHConfig:
    """Tuning knobs for GSH (paper defaults: 1% sample, top-3)."""

    device: DeviceSpec = A100
    sample_rate: float = 0.01
    top_k: int = 3
    #: Extension: choose k per partition so the remainder fits shared
    #: memory (the paper's stated selection rule), with ``top_k`` as the
    #: floor and ``max_k`` as the cap.
    adaptive_k: bool = False
    max_k: int = 64
    #: A partition is "large" above this multiple of the shared-memory
    #: hash-table capacity.
    large_partition_factor: float = 1.0
    bits_pass1: Optional[int] = None
    bits_pass2: Optional[int] = None
    output_capacity: int = DEFAULT_CAPACITY
    sample_seed: SeedLike = 0

    def __post_init__(self):
        if not 0 < self.sample_rate <= 1:
            raise ConfigError("sample_rate must be in (0, 1]")
        if self.top_k < 1:
            raise ConfigError("top_k must be >= 1")
        if self.large_partition_factor <= 0:
            raise ConfigError("large_partition_factor must be positive")
        if self.adaptive_k and self.max_k < self.top_k:
            raise ConfigError("max_k must be >= top_k")

    def large_threshold_tuples(self) -> int:
        """Partition size above which a partition counts as large."""
        return max(int(self.large_partition_factor
                       * self.device.shared_capacity_tuples), 1)

    def resolve_bits(self, n_tuples: int) -> Tuple[int, int]:
        """Radix bit widths for the two partition passes."""
        if self.bits_pass1 is not None:
            return self.bits_pass1, self.bits_pass2 or 0
        return choose_gpu_bits(n_tuples, self.device.shared_capacity_tuples)


class GSHJoin:
    """The GSH pipeline on the SIMT cost simulator."""

    name = "gsh"

    def __init__(self, config: GSHConfig = GSHConfig()):
        self.config = config

    def run(self, join_input: JoinInput) -> JoinResult:
        """Execute GSH: partition, detect, split, NM-join, skew join."""
        cfg = self.config
        r, s = join_input.r, join_input.s
        sim = GPUSimulator(device=cfg.device,
                           cost_model=cost_model_for(cfg.device))
        bits1, bits2 = cfg.resolve_bits(max(len(r), len(s)))
        result = JoinResult(
            algorithm=self.name, n_r=len(r), n_s=len(s),
            output_count=0, output_checksum=0,
            meta={"bits_pass1": bits1, "bits_pass2": bits2,
                  "device": cfg.device.name, "backend": current_backend()},
        )

        tracer = Tracer(self.name, algorithm=self.name,
                        n_r=len(r), n_s=len(s), device=cfg.device.name)
        metrics = tracer.metrics
        with activate(tracer), fault_scope(self.name) as faults:
            metrics.counter("join.tuples_scanned").inc(len(r) + len(s))

            try:
                with tracer.span("partition", algo=self.name) as span:
                    part_r = gsh_partition(r.keys, r.payloads, bits1, bits2,
                                           sim, "r")
                    part_s = gsh_partition(s.keys, s.payloads, bits1, bits2,
                                           sim, "s")
                    span.finish(
                        simulated_seconds=part_r.seconds + part_s.seconds,
                        counters=part_r.counters + part_s.counters,
                    )
                result.phases.append(span.phase_result)
                metrics.histogram("partition.sizes").observe_many(
                    part_r.partitioned.sizes()
                )

                try:
                    split = self._detect_and_split(result, tracer, metrics,
                                                   sim, part_r, part_s)
                except CapacityError as exc:
                    # Skew-split failure: degrade to Gbase's sub-list
                    # decomposition over the already-partitioned data (the
                    # partition phase is reused; only the skew machinery is
                    # abandoned).  Output is unchanged — decomposition only
                    # affects cost.
                    if not faults.policy.gsh_sublist_fallback:
                        raise
                    split = None
                    append_partial_phases(result, tracer)
                    faults.record(FailureReport(
                        kind=CAPACITY_OVERFLOW, point="split",
                        algorithm=self.name, phase=current_phase_name(),
                        action="fallback:gbase-sublist", recovered=True,
                        injected=bool(getattr(exc, "context", {})
                                      .get("injected", False)),
                        error=str(exc),
                        context=dict(getattr(exc, "context", {})),
                    ))
                    result.meta["degraded"] = "gbase-sublist"

                if split is not None:
                    join_r, join_s = split.normal_r, split.normal_s
                    sublist_capacity = None
                else:
                    join_r, join_s = part_r.partitioned, part_s.partitioned
                    sublist_capacity = cfg.device.shared_capacity_tuples

                with tracer.span("nm-join", algo=self.name,
                                 degraded=float(split is None)) as span:
                    nm = gbase_join_phase(
                        join_r, join_s, sim,
                        sublist_capacity=sublist_capacity,
                        output_capacity=cfg.output_capacity,
                        kernel_name="gsh_nm_join",
                    )
                    span.finish(
                        simulated_seconds=nm.seconds,
                        counters=nm.counters,
                        task_count=nm.n_blocks,
                    )
                result.phases.append(span.phase_result)

                if split is not None:
                    with tracer.span("skew-join", algo=self.name) as span:
                        skew = skew_join_phase(
                            split.skewed_r, split.skewed_s, sim,
                            output_capacity=cfg.output_capacity,
                        )
                        span.finish(
                            simulated_seconds=skew.seconds,
                            counters=skew.counters,
                            task_count=skew.n_blocks,
                        )
                    result.phases.append(span.phase_result)
                    result.meta["skew_join_blocks"] = skew.n_blocks
                    result.meta["skewed_output"] = skew.summary.count
                    skew_count = skew.summary.count
                    skew_checksum = skew.summary.checksum
                else:
                    skew_count = 0
                    skew_checksum = 0

                result.output_count = nm.summary.count + skew_count
                result.output_checksum = (
                    nm.summary.checksum + skew_checksum
                ) & ((1 << 64) - 1)
            except UnrecoveredFaultError as exc:
                run_cpu_fallback(result, tracer, faults, exc, join_input,
                                 cfg.output_capacity)

            metrics.counter("join.output_tuples").inc(result.output_count)
        result.meta["peak_rss_bytes"] = peak_rss_bytes()
        result.faults = faults.reports
        result.trace = tracer.record()
        return result

    def _detect_and_split(self, result, tracer, metrics, sim, part_r,
                          part_s):
        """The skew machinery: detect large partitions, split skewed keys.

        An injected ``split`` fault (or an organic overflow in either
        phase) raises :class:`CapacityError`, which the caller degrades to
        Gbase sub-list decomposition.
        """
        cfg = self.config
        faults = current_fault_scope()
        with tracer.span("detect", algo=self.name) as span:
            detection = detect_partition_skew(
                part_r.partitioned, part_s.partitioned,
                threshold_tuples=cfg.large_threshold_tuples(),
                sample_rate=cfg.sample_rate,
                top_k=cfg.top_k,
                seed=cfg.sample_seed,
                adaptive_k=cfg.adaptive_k,
                max_k=cfg.max_k,
            )
            launch = sim.launch("gsh_detect", [
                BlockWork(1, c) for c in detection.block_counters
            ])
            span.finish(
                simulated_seconds=launch.seconds,
                counters=launch.counters,
                large_partitions=float(detection.n_large),
            )
        result.phases.append(span.phase_result)
        result.meta["large_partitions"] = detection.n_large
        metrics.counter("skew.large_partitions").inc(detection.n_large)

        with tracer.span("split", algo=self.name) as span:
            spec = faults.fire("split")
            if spec is not None:
                raise CapacityError(
                    "injected skew-split overflow", injected=True,
                    threshold=cfg.large_threshold_tuples(),
                    large_partitions=detection.n_large,
                )
            split = split_large_partitions(
                part_r.partitioned, part_s.partitioned, detection,
                cfg.top_k
            )
            launch = sim.launch("gsh_split", split.block_work)
            span.finish(
                simulated_seconds=launch.seconds,
                counters=launch.counters,
                skewed_keys=float(len(split.skewed_r.keys())),
            )
        result.phases.append(span.phase_result)
        skewed_keys = sorted(
            set(split.skewed_r.keys()) | set(split.skewed_s.keys())
        )
        result.meta["skewed_keys"] = skewed_keys
        metrics.counter("skew.keys_detected").inc(len(skewed_keys))
        return split
