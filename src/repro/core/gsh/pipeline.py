"""GSH: the GPU Skew-conscious Hash join (the paper's Section IV-B).

Pipeline: (1) partition R and S with the simple count-then-scatter, two
passes; (2) detect skewed keys by sampling *large* partitions (top-k per
partition, k = 3); (3) split large partitions into per-key skewed arrays
plus a normal partition; (4) NM-join the normal partition pairs, one thread
block each; (5) join the skewed arrays with multiple thread blocks per
skewed key.

Unlike CSH, detection runs *after* partitioning: a skew check inside the
partitioning kernel would diverge the warps, and the GPU's bandwidth makes
the extra copy of S tuples cheap (Section IV-B's design discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.gsh.detector import detect_partition_skew
from repro.core.gsh.skew_join import skew_join_phase
from repro.core.gsh.split import split_large_partitions
from repro.data.relation import JoinInput
from repro.errors import ConfigError
from repro.exec.output import DEFAULT_CAPACITY
from repro.exec.result import JoinResult
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.gbase.join_kernels import gbase_join_phase
from repro.gpu.kernel import BlockWork
from repro.gpu.partitioning import choose_gpu_bits, gsh_partition
from repro.gpu.simulator import GPUSimulator, cost_model_for
from repro.obs.trace import Tracer, activate
from repro.types import SeedLike


@dataclass(frozen=True)
class GSHConfig:
    """Tuning knobs for GSH (paper defaults: 1% sample, top-3)."""

    device: DeviceSpec = A100
    sample_rate: float = 0.01
    top_k: int = 3
    #: Extension: choose k per partition so the remainder fits shared
    #: memory (the paper's stated selection rule), with ``top_k`` as the
    #: floor and ``max_k`` as the cap.
    adaptive_k: bool = False
    max_k: int = 64
    #: A partition is "large" above this multiple of the shared-memory
    #: hash-table capacity.
    large_partition_factor: float = 1.0
    bits_pass1: Optional[int] = None
    bits_pass2: Optional[int] = None
    output_capacity: int = DEFAULT_CAPACITY
    sample_seed: SeedLike = 0

    def __post_init__(self):
        if not 0 < self.sample_rate <= 1:
            raise ConfigError("sample_rate must be in (0, 1]")
        if self.top_k < 1:
            raise ConfigError("top_k must be >= 1")
        if self.large_partition_factor <= 0:
            raise ConfigError("large_partition_factor must be positive")
        if self.adaptive_k and self.max_k < self.top_k:
            raise ConfigError("max_k must be >= top_k")

    def large_threshold_tuples(self) -> int:
        """Partition size above which a partition counts as large."""
        return max(int(self.large_partition_factor
                       * self.device.shared_capacity_tuples), 1)

    def resolve_bits(self, n_tuples: int) -> Tuple[int, int]:
        """Radix bit widths for the two partition passes."""
        if self.bits_pass1 is not None:
            return self.bits_pass1, self.bits_pass2 or 0
        return choose_gpu_bits(n_tuples, self.device.shared_capacity_tuples)


class GSHJoin:
    """The GSH pipeline on the SIMT cost simulator."""

    name = "gsh"

    def __init__(self, config: GSHConfig = GSHConfig()):
        self.config = config

    def run(self, join_input: JoinInput) -> JoinResult:
        """Execute GSH: partition, detect, split, NM-join, skew join."""
        cfg = self.config
        r, s = join_input.r, join_input.s
        sim = GPUSimulator(device=cfg.device,
                           cost_model=cost_model_for(cfg.device))
        bits1, bits2 = cfg.resolve_bits(max(len(r), len(s)))
        result = JoinResult(
            algorithm=self.name, n_r=len(r), n_s=len(s),
            output_count=0, output_checksum=0,
            meta={"bits_pass1": bits1, "bits_pass2": bits2,
                  "device": cfg.device.name},
        )

        tracer = Tracer(self.name, algorithm=self.name,
                        n_r=len(r), n_s=len(s), device=cfg.device.name)
        metrics = tracer.metrics
        with activate(tracer):
            metrics.counter("join.tuples_scanned").inc(len(r) + len(s))

            with tracer.span("partition", algo=self.name) as span:
                part_r = gsh_partition(r.keys, r.payloads, bits1, bits2,
                                       sim, "r")
                part_s = gsh_partition(s.keys, s.payloads, bits1, bits2,
                                       sim, "s")
                span.finish(
                    simulated_seconds=part_r.seconds + part_s.seconds,
                    counters=part_r.counters + part_s.counters,
                )
            result.phases.append(span.phase_result)
            metrics.histogram("partition.sizes").observe_many(
                part_r.partitioned.sizes()
            )

            with tracer.span("detect", algo=self.name) as span:
                detection = detect_partition_skew(
                    part_r.partitioned, part_s.partitioned,
                    threshold_tuples=cfg.large_threshold_tuples(),
                    sample_rate=cfg.sample_rate,
                    top_k=cfg.top_k,
                    seed=cfg.sample_seed,
                    adaptive_k=cfg.adaptive_k,
                    max_k=cfg.max_k,
                )
                launch = sim.launch("gsh_detect", [
                    BlockWork(1, c) for c in detection.block_counters
                ])
                span.finish(
                    simulated_seconds=launch.seconds,
                    counters=launch.counters,
                    large_partitions=float(detection.n_large),
                )
            result.phases.append(span.phase_result)
            result.meta["large_partitions"] = detection.n_large
            metrics.counter("skew.large_partitions").inc(detection.n_large)

            with tracer.span("split", algo=self.name) as span:
                split = split_large_partitions(
                    part_r.partitioned, part_s.partitioned, detection,
                    cfg.top_k
                )
                launch = sim.launch("gsh_split", split.block_work)
                span.finish(
                    simulated_seconds=launch.seconds,
                    counters=launch.counters,
                    skewed_keys=float(len(split.skewed_r.keys())),
                )
            result.phases.append(span.phase_result)
            skewed_keys = sorted(
                set(split.skewed_r.keys()) | set(split.skewed_s.keys())
            )
            result.meta["skewed_keys"] = skewed_keys
            metrics.counter("skew.keys_detected").inc(len(skewed_keys))

            with tracer.span("nm-join", algo=self.name) as span:
                nm = gbase_join_phase(
                    split.normal_r, split.normal_s, sim,
                    sublist_capacity=None,
                    output_capacity=cfg.output_capacity,
                    kernel_name="gsh_nm_join",
                )
                span.finish(
                    simulated_seconds=nm.seconds,
                    counters=nm.counters,
                    task_count=nm.n_blocks,
                )
            result.phases.append(span.phase_result)

            with tracer.span("skew-join", algo=self.name) as span:
                skew = skew_join_phase(
                    split.skewed_r, split.skewed_s, sim,
                    output_capacity=cfg.output_capacity,
                )
                span.finish(
                    simulated_seconds=skew.seconds,
                    counters=skew.counters,
                    task_count=skew.n_blocks,
                )
            result.phases.append(span.phase_result)

        result.output_count = nm.summary.count + skew.summary.count
        result.output_checksum = (
            nm.summary.checksum + skew.summary.checksum
        ) & ((1 << 64) - 1)
        result.meta["skew_join_blocks"] = skew.n_blocks
        result.meta["skewed_output"] = skew.summary.count
        metrics.counter("join.output_tuples").inc(result.output_count)
        result.trace = tracer.record()
        return result
