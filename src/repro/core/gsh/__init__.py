"""GSH: GPU Skew-conscious Hash join."""

from repro.core.gsh.detector import (
    GpuSkewDetection,
    PartitionSkewInfo,
    detect_partition_skew,
    find_large_partitions,
)
from repro.core.gsh.pipeline import GSHConfig, GSHJoin
from repro.core.gsh.skew_join import SkewJoinResult, skew_join_phase
from repro.core.gsh.split import SkewedArrays, SplitResult, split_large_partitions

__all__ = [
    "GpuSkewDetection",
    "PartitionSkewInfo",
    "detect_partition_skew",
    "find_large_partitions",
    "SkewedArrays",
    "SplitResult",
    "split_large_partitions",
    "SkewJoinResult",
    "skew_join_phase",
    "GSHConfig",
    "GSHJoin",
]
