"""Adaptive join: choose skew handling only when the data warrants it.

A natural extension of the paper (its skew steps are free when unused on
the GPU, but CSH's checkup probes and skewed-partition bookkeeping are not
entirely free on the CPU): sample R first, and run plain Cbase when no key
crosses the skew threshold, CSH otherwise.  The sampling cost is charged
either way, so the choice is honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.csh.detector import detect_skewed_keys
from repro.core.csh.pipeline import CSHConfig, CSHJoin
from repro.cpu.radix_join import CbaseConfig, CbaseJoin
from repro.data.relation import JoinInput
from repro.exec.phase import PhaseTimer
from repro.exec.result import JoinResult


@dataclass(frozen=True)
class AdaptiveConfig:
    """Configuration for the adaptive CPU join."""

    csh: CSHConfig = CSHConfig()
    #: Run CSH only when at least this many skewed keys are detected.
    min_skewed_keys: int = 1

    def cbase_config(self) -> CbaseConfig:
        """Cbase configuration mirroring the CSH tuning."""
        return CbaseConfig(
            n_threads=self.csh.n_threads,
            target_partition_tuples=self.csh.target_partition_tuples,
            bits_pass1=self.csh.bits_pass1,
            bits_pass2=self.csh.bits_pass2,
            output_capacity=self.csh.output_capacity,
            cost_model=self.csh.cost_model,
        )


class AdaptiveJoin:
    """Sample first, then dispatch to Cbase or CSH."""

    name = "adaptive"

    def __init__(self, config: AdaptiveConfig = AdaptiveConfig()):
        self.config = config

    def run(self, join_input: JoinInput) -> JoinResult:
        """Sample R, then run Cbase (no skew) or CSH (skew detected)."""
        cfg = self.config
        with PhaseTimer("probe-sample") as timer:
            detection = detect_skewed_keys(
                join_input.r.keys,
                sample_rate=cfg.csh.sample_rate,
                freq_threshold=cfg.csh.freq_threshold,
                seed=cfg.csh.sample_seed,
            )
            timer.finish(
                simulated_seconds=(
                    cfg.csh.cost_model.seconds(detection.counters)
                    / cfg.csh.n_threads),
                counters=detection.counters,
                skewed_keys=float(detection.n_skewed),
            )
        sample_phase = timer.result

        if detection.n_skewed >= cfg.min_skewed_keys:
            inner = CSHJoin(cfg.csh).run(join_input)
            chosen = "csh"
            # CSH re-samples internally with the same seed and rate; drop
            # its sample phase in favour of ours to avoid double counting.
            inner.phases = [p for p in inner.phases if p.name != "sample"]
        else:
            inner = CbaseJoin(cfg.cbase_config()).run(join_input)
            chosen = "cbase"

        result = JoinResult(
            algorithm=self.name,
            n_r=inner.n_r,
            n_s=inner.n_s,
            output_count=inner.output_count,
            output_checksum=inner.output_checksum,
            phases=[sample_phase, *inner.phases],
            meta={**inner.meta, "chosen": chosen,
                  "skewed_keys": detection.n_skewed},
        )
        return result
