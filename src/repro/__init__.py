"""repro: a reproduction of "CPU and GPU Hash Joins on Skewed Data" (ICDE 2024).

The package implements the paper's skew-conscious hash joins — CSH (CPU)
and GSH (GPU) — together with every substrate they are evaluated against:
the Cbase parallel radix join, the cbase-npj no-partition join, the Gbase
GPU hash join, a simulated CPU thread pool, and a SIMT GPU cost simulator.

Quick start::

    from repro import ZipfWorkload, join

    workload = ZipfWorkload(n_r=1 << 20, n_s=1 << 20, theta=0.9, seed=42)
    result = join(workload.generate(), algorithm="csh")
    print(result.summary_line())
"""

from repro.api import ALGORITHMS, CPU_ALGORITHMS, GPU_ALGORITHMS, join, make_join, run_all
from repro.core.adaptive import AdaptiveConfig, AdaptiveJoin
from repro.core.csh import CSHConfig, CSHJoin
from repro.core.gsh import GSHConfig, GSHJoin
from repro.cpu.no_partition_join import NoPartitionConfig, NoPartitionJoin
from repro.cpu.radix_join import CbaseConfig, CbaseJoin
from repro.data.relation import JoinInput, Relation
from repro.data.zipf import ZipfWorkload
from repro.errors import ReproError
from repro.exec.backend import BACKENDS, current_backend, use_backend
from repro.exec.result import JoinResult
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.gbase import GbaseConfig, GbaseJoin

__version__ = "1.0.0"

__all__ = [
    "join",
    "make_join",
    "run_all",
    "ALGORITHMS",
    "CPU_ALGORITHMS",
    "GPU_ALGORITHMS",
    "Relation",
    "JoinInput",
    "ZipfWorkload",
    "JoinResult",
    "ReproError",
    "BACKENDS",
    "current_backend",
    "use_backend",
    "CbaseJoin",
    "CbaseConfig",
    "NoPartitionJoin",
    "NoPartitionConfig",
    "CSHJoin",
    "CSHConfig",
    "GbaseJoin",
    "GbaseConfig",
    "GSHJoin",
    "GSHConfig",
    "DeviceSpec",
    "A100",
    "AdaptiveJoin",
    "AdaptiveConfig",
]
