"""Shared type aliases used across the repro library."""

from __future__ import annotations

from typing import Union

import numpy as np

#: The dtype used for join keys (paper: 4-byte keys).
KEY_DTYPE = np.uint32

#: The dtype used for payloads (paper: 4-byte payloads).
PAYLOAD_DTYPE = np.uint32

#: The number of bytes in one stored tuple (4 B key + 4 B payload).
TUPLE_BYTES = 8

#: The number of bytes in one join output tuple (R payload + S payload).
OUTPUT_TUPLE_BYTES = 8

#: Anything accepted as a random seed by the generators.
SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike) -> np.random.Generator:
    """Return a numpy Generator from an int seed, Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
