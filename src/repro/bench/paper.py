"""The paper's reported numbers, used for side-by-side comparison.

Source: "CPU and GPU Hash Joins on Skewed Data", ICDE 2024 — Table I,
Figure 4's derived claims (Section V-B), and the scale-up paragraph.
All values in seconds.
"""

from __future__ import annotations

#: Table I: execution time breakdown, zipf factor 0.5 .. 1.0.
#: (The Gbase partition entry for 0.8 is printed as "6.9s" in the paper —
#: an obvious typo for 6.9 ms given the surrounding row; recorded as ms.)
TABLE1 = {
    "cbase partition": {0.5: 0.29, 0.6: 0.29, 0.7: 0.29, 0.8: 0.29,
                        0.9: 0.28, 1.0: 0.26},
    "cbase join": {0.5: 0.16, 0.6: 0.59, 0.7: 7.05, 0.8: 96.9,
                   0.9: 1084.0, 1.0: 7593.0},
    "csh sample+part": {0.5: 0.22, 0.6: 0.36, 0.7: 2.24, 0.8: 17.6,
                        0.9: 152.0, 1.0: 941.0},
    "csh nm-join": {0.5: 0.25, 0.6: 0.47, 0.7: 0.9, 0.8: 1.65,
                    0.9: 2.36, 1.0: 2.55},
    "gbase partition": {0.5: 6.78e-3, 0.6: 6.6e-3, 0.7: 6.8e-3,
                        0.8: 6.9e-3, 0.9: 7.0e-3, 1.0: 7.4e-3},
    "gbase join": {0.5: 52e-3, 0.6: 0.33, 0.7: 1.7, 0.8: 16.0,
                   0.9: 115.0, 1.0: 643.0},
    "gsh partition": {0.5: 5.9e-3, 0.6: 5.9e-3, 0.7: 6.1e-3,
                      0.8: 7.7e-3, 0.9: 12.8e-3, 1.0: 24.5e-3},
    "gsh all other": {0.5: 25.8e-3, 0.6: 49.3e-3, 0.7: 0.214,
                      0.8: 1.17, 0.9: 9.37, 1.0: 54.5},
}

#: Zipf factors covered by Table I.
TABLE1_THETAS = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Figure 1 / Figure 4 sweep range.
FIGURE_THETAS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Paper workload: both tables hold 32 M tuples of 4 B key + 4 B payload.
PAPER_N_TUPLES = 32_000_000

#: Section V-B claims.
MAX_CPU_SPEEDUP = 8.0        # CSH over Cbase, zipf 0.5-1.0
MAX_GPU_SPEEDUP = 13.5       # GSH over Gbase, zipf 0.5-1.0
LOW_SKEW_RANGE = (0.0, 0.4)  # where CSH ~ Cbase and GSH ~ Gbase

#: "When the zipf factor is 1.0, CSH detects 870 skewed [keys], which
#: contribute to about 99.6% of the total output."
DETECTED_SKEWED_KEYS_AT_1 = 870
SKEWED_OUTPUT_SHARE_AT_1 = 0.996

#: Scale-up experiment: 560 M tuples, zipf 0.7.
SCALEUP_N_TUPLES = 560_000_000
SCALEUP_THETA = 0.7
SCALEUP_CPU_SPEEDUP = 3.5    # CSH over Cbase
SCALEUP_GPU_SPEEDUP = 10.4   # GSH over Gbase
SCALEUP_GBASE_MEMORY_GB = 38.5
