"""One entry point per paper experiment (see DESIGN.md's index).

Each function runs the experiment at the harness scale, prints the rows or
series the paper reports (with the paper's own numbers alongside when
available), and returns the structured data for assertions.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.analysis.analytic import (
    AnalyticWorkload,
    analytic_cbase,
    analytic_csh,
    analytic_gbase,
    analytic_gsh,
    simulate_csh_detection,
)
from repro.analysis.speedup import max_speedup
from repro.bench import paper
from repro.bench.runner import (
    bench_tuples,
    scale_label,
    sweep,
    sweep_points,
)
from repro.bench.tables import render_csv, render_series, render_table
from repro.core.csh.pipeline import CSHConfig
from repro.types import TUPLE_BYTES


def _export_csv(name: str, series: Dict[str, Dict[float, float]],
                x_values) -> None:
    """Write an experiment's series as CSV when REPRO_BENCH_OUTPUT is set.

    The environment variable names a directory; files are named
    ``<experiment>.csv`` and overwrite previous runs.
    """
    out_dir = os.environ.get("REPRO_BENCH_OUTPUT", "").strip()
    if not out_dir:
        return
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"{name}.csv").write_text(
        render_csv(series, list(x_values)) + "\n")


def _phase_rows(results, scale_factor: float = 1.0):
    """Extract Table-I-style rows from a sweep of all four algorithms."""
    rows: Dict[str, Dict[float, float]] = {
        "cbase partition": {}, "cbase join": {},
        "csh sample+part": {}, "csh nm-join": {},
        "gbase partition": {}, "gbase join": {},
        "gsh partition": {}, "gsh all other": {},
    }
    for theta, algs in results.items():
        cb, csh = algs["cbase"], algs["csh"]
        gb, gsh = algs["gbase"], algs["gsh"]
        rows["cbase partition"][theta] = cb.phase("partition").simulated_seconds
        rows["cbase join"][theta] = cb.phase("join").simulated_seconds
        rows["csh sample+part"][theta] = csh.phase_seconds("sample",
                                                           "partition")
        rows["csh nm-join"][theta] = csh.phase("nm-join").simulated_seconds
        rows["gbase partition"][theta] = gb.phase("partition").simulated_seconds
        rows["gbase join"][theta] = gb.phase("join").simulated_seconds
        rows["gsh partition"][theta] = gsh.phase("partition").simulated_seconds
        rows["gsh all other"][theta] = gsh.phase_seconds(
            "detect", "split", "nm-join", "skew-join")
    return rows


def run_figure1(thetas=paper.FIGURE_THETAS, n: Optional[int] = None):
    """Figure 1: Cbase and Gbase time breakdowns vs the zipf factor."""
    n = bench_tuples() if n is None else n
    results = sweep(("cbase", "gbase"), thetas, n=n)
    fig1a = {"partition": {}, "join": {}}
    fig1b = {"partition": {}, "join": {}}
    for theta, algs in results.items():
        fig1a["partition"][theta] = algs["cbase"].phase(
            "partition").simulated_seconds
        fig1a["join"][theta] = algs["cbase"].phase("join").simulated_seconds
        fig1b["partition"][theta] = algs["gbase"].phase(
            "partition").simulated_seconds
        fig1b["join"][theta] = algs["gbase"].phase("join").simulated_seconds
    print()
    print(render_series(fig1a, thetas,
                        f"Figure 1a: Cbase breakdown — {scale_label(n)}"))
    print(render_series(fig1b, thetas,
                        f"Figure 1b: Gbase breakdown — {scale_label(n)}"))
    _export_csv("fig1a", fig1a, thetas)
    _export_csv("fig1b", fig1b, thetas)
    return {"fig1a": fig1a, "fig1b": fig1b}


def run_figure4(thetas=paper.FIGURE_THETAS, n: Optional[int] = None):
    """Figure 4: total join time of all five algorithms vs zipf factor."""
    n = bench_tuples() if n is None else n
    results = sweep(("cbase", "cbase-npj", "csh"), thetas, n=n)
    fig4a = {
        alg: {theta: algs[alg].simulated_seconds
              for theta, algs in results.items()}
        for alg in ("cbase", "cbase-npj", "csh")
    }
    results_gpu = sweep(("gbase", "gsh"), thetas, n=n)
    fig4b = {
        alg: {theta: algs[alg].simulated_seconds
              for theta, algs in results_gpu.items()}
        for alg in ("gbase", "gsh")
    }
    print()
    print(render_series(fig4a, thetas,
                        f"Figure 4a: CPU hash joins — {scale_label(n)}"))
    print(render_series(fig4b, thetas,
                        f"Figure 4b: GPU hash joins — {scale_label(n)}"))

    merged = {theta: {**results[theta], **results_gpu[theta]}
              for theta in results}
    points = sweep_points(merged)
    cpu_best = max_speedup(points, "cbase", "csh", parameter_range=(0.5, 1.0))
    gpu_best = max_speedup(points, "gbase", "gsh", parameter_range=(0.5, 1.0))
    print(f"\nmax CPU speedup (zipf 0.5-1.0): {cpu_best[1]:.1f}x at "
          f"zipf={cpu_best[0]} (paper: up to {paper.MAX_CPU_SPEEDUP}x)")
    print(f"max GPU speedup (zipf 0.5-1.0): {gpu_best[1]:.1f}x at "
          f"zipf={gpu_best[0]} (paper: up to {paper.MAX_GPU_SPEEDUP}x)")
    _export_csv("fig4a", fig4a, thetas)
    _export_csv("fig4b", fig4b, thetas)
    return {"fig4a": fig4a, "fig4b": fig4b, "points": points,
            "cpu_best": cpu_best, "gpu_best": gpu_best}


def run_table1(thetas=paper.TABLE1_THETAS, n: Optional[int] = None):
    """Table I: per-phase execution-time breakdown, zipf 0.5-1.0."""
    n = bench_tuples() if n is None else n
    results = sweep(("cbase", "csh", "gbase", "gsh"), thetas, n=n)
    rows = _phase_rows(results)
    reference = paper.TABLE1 if n == paper.PAPER_N_TUPLES else None
    print()
    print(render_table(rows, thetas,
                       f"Table I: execution time breakdown — {scale_label(n)}",
                       reference=reference))
    if reference is None:
        print("(paper reference rows shown only at REPRO_BENCH_SCALE=paper; "
              "the paper's numbers are for 32M tuples)")
    _export_csv("table1", rows, thetas)
    return rows


def run_scaleup(n: Optional[int] = None, theta: float = paper.SCALEUP_THETA):
    """Section V-B scale-up: 560 M tuples at zipf 0.7.

    At the full 560 M scale the key domain is capped (head-exact histogram;
    see AnalyticWorkload.from_zipf) so the experiment fits in laptop RAM.
    """
    n = paper.SCALEUP_N_TUPLES if n is None else n
    wl = AnalyticWorkload.from_zipf(n, n, theta, seed=7)
    cb = analytic_cbase(wl)
    csh = analytic_csh(wl)
    gb = analytic_gbase(wl)
    gsh = analytic_gsh(wl)
    cpu_speedup = cb.simulated_seconds / csh.simulated_seconds
    gpu_speedup = gb.simulated_seconds / gsh.simulated_seconds
    # Device-memory footprint: input + partitioned copy + skew arrays.
    input_gb = 2 * n * TUPLE_BYTES / 1024**3
    footprint_gb = 4 * input_gb  # two tables, raw + two partition passes
    print(f"\nScale-up: {n} tuples per table, zipf {theta}")
    print(f"  cbase {cb.simulated_seconds:.3g}s vs csh "
          f"{csh.simulated_seconds:.3g}s -> {cpu_speedup:.1f}x "
          f"(paper: {paper.SCALEUP_CPU_SPEEDUP}x)")
    print(f"  gbase {gb.simulated_seconds:.3g}s vs gsh "
          f"{gsh.simulated_seconds:.3g}s -> {gpu_speedup:.1f}x "
          f"(paper: {paper.SCALEUP_GPU_SPEEDUP}x)")
    print(f"  est. GPU working set ~{footprint_gb:.1f} GB "
          f"(paper: Gbase used {paper.SCALEUP_GBASE_MEMORY_GB} GB of 40 GB)")
    return {
        "cpu_speedup": cpu_speedup,
        "gpu_speedup": gpu_speedup,
        "results": {"cbase": cb, "csh": csh, "gbase": gb, "gsh": gsh},
    }


def run_detection(n: Optional[int] = None, theta: float = 1.0,
                  sample_rate: float = 0.001):
    """The paper's detection-quality claim at zipf 1.0.

    "CSH detects 870 skewed [keys], which contribute to about 99.6% of the
    total output."  The 870-key count corresponds to a 0.1% sample at
    threshold 2 (with the text's example 1% sample, proportionally more
    keys cross the threshold and coverage only improves).
    """
    n = bench_tuples() if n is None else n
    wl = AnalyticWorkload.from_zipf(n, n, theta, seed=11)
    config = CSHConfig(sample_rate=sample_rate, freq_threshold=2)
    skewed = simulate_csh_detection(wl, config)
    mask = np.isin(wl.keys, skewed)
    skew_output = int(np.sum(wl.cr[mask] * wl.cs[mask]))
    total = wl.output_count()
    share = skew_output / total if total else 0.0
    print(f"\nDetection at zipf {theta}, {n} tuples, "
          f"{sample_rate:.2%} sample, threshold {config.freq_threshold}:")
    print(f"  detected skewed keys: {skewed.size} "
          f"(paper at 32M: {paper.DETECTED_SKEWED_KEYS_AT_1})")
    print(f"  output covered by skewed keys: {share:.2%} "
          f"(paper: {paper.SKEWED_OUTPUT_SHARE_AT_1:.1%})")
    return {"skewed_keys": int(skewed.size), "share": share}
