"""Benchmark recording and the wall-time regression gate.

``repro bench --record`` executes every join pipeline at the executed
bench scale, several repeats per backend, and writes a schema-versioned
``BENCH_<tag>.json`` snapshot: per-phase **median wall seconds** per
backend, plus the operation counters (which are backend-invariant by
construction — the differential suite enforces that).

``repro bench --compare BASELINE`` records a fresh candidate under the
baseline's own settings and fails (exit nonzero) when any phase's median
wall time regresses more than the threshold (default 25%) beyond a small
absolute floor that keeps microsecond phases from tripping the gate.

Baselines age: a missing file or an old schema raises the typed
:class:`~repro.errors.BaselineError` with the command that re-records it —
never a stack trace.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.data.zipf import ZipfWorkload
from repro.errors import BaselineError, VerificationError
from repro.exec.backend import BACKENDS, PARALLEL, SCALAR, VECTOR, use_backend

#: Version of the BENCH_<tag>.json schema this module reads and writes.
#: v2 added the parallel backend's wall-seconds column and the
#: ``worker_count`` field; v1 baselines load as a typed BaselineError
#: with the re-record hint.
BENCH_SCHEMA_VERSION = 2

#: Phases whose names contain one of these markers carry the join/probe
#: work the parallel backend targets; its scaling metric runs on them.
JOIN_PHASE_MARKERS = ("join", "probe")

#: A phase regresses when its candidate median exceeds the baseline median
#: by more than this fraction...
DEFAULT_REGRESSION_THRESHOLD = 0.25

#: ...and by more than this many seconds (sub-floor phases are noise).
WALL_FLOOR_SECONDS = 5e-3

#: Default repeats per (algorithm, backend) case.
DEFAULT_REPEATS = 3

#: Default workload shape for recorded benches (heavy skew — the regime
#: the paper and the skew-conscious pipelines are about).
DEFAULT_BENCH_THETA = 1.0
DEFAULT_BENCH_SEED = 42


@dataclass
class PhaseBench:
    """Recorded timings of one pipeline phase."""

    name: str
    #: Median wall seconds per backend, e.g. {"scalar": ..., "vector": ...}.
    wall_seconds: Dict[str, float]
    simulated_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)


@dataclass
class CaseBench:
    """Recorded timings of one algorithm at one scale."""

    algorithm: str
    output_count: int
    output_checksum: int
    phases: List[PhaseBench] = field(default_factory=list)
    #: Planner bookkeeping when the bench ran with a planner attached
    #: (``repro bench --record --auto``): predicted vs realized wall per
    #: backend and whether the planner would pick this algorithm.  Absent
    #: (None) on plain benches — same schema version either way.
    plan: Optional[Dict] = None

    def total_wall(self, backend: str) -> float:
        """Sum of per-phase median wall seconds for one backend."""
        return sum(p.wall_seconds.get(backend, 0.0) for p in self.phases)


@dataclass
class BenchRecord:
    """One recorded benchmark snapshot (the BENCH_<tag>.json payload)."""

    tag: str
    n_tuples: int
    theta: float
    seed: int
    repeats: int
    backends: List[str]
    #: Worker-pool size the parallel backend ran with (1 = inline).
    worker_count: int = 1
    #: When set, every run executed under this memory budget with the
    #: out-of-core spill plane engaged — the spilled scale tier.
    spill_budget_bytes: Optional[int] = None
    cases: List[CaseBench] = field(default_factory=list)

    def case(self, algorithm: str) -> Optional[CaseBench]:
        """The recorded case for one algorithm, if present."""
        for case in self.cases:
            if case.algorithm == algorithm:
                return case
        return None

    def median_speedup(self) -> Optional[float]:
        """Median scalar/vector wall-time ratio across cases, if both
        backends were recorded."""
        if SCALAR not in self.backends or VECTOR not in self.backends:
            return None
        ratios = []
        for case in self.cases:
            vec = case.total_wall(VECTOR)
            if vec > 0:
                ratios.append(case.total_wall(SCALAR) / vec)
        return statistics.median(ratios) if ratios else None

    def parallel_scaling(self) -> Optional[float]:
        """Median vector/parallel wall-time ratio over join/probe phases.

        This is the scaling the parallel backend claims: >1 means real
        multicore speedup on the phases it parallelizes.  None unless
        both backends were recorded with at least one join/probe phase.
        """
        if VECTOR not in self.backends or PARALLEL not in self.backends:
            return None
        ratios = []
        for case in self.cases:
            vec = par = 0.0
            for phase in case.phases:
                if not any(m in phase.name for m in JOIN_PHASE_MARKERS):
                    continue
                vec += phase.wall_seconds.get(VECTOR, 0.0)
                par += phase.wall_seconds.get(PARALLEL, 0.0)
            if par > 0:
                ratios.append(vec / par)
        return statistics.median(ratios) if ratios else None


def bench_path(tag: str, directory: Union[str, Path] = ".") -> Path:
    """The canonical file name for one bench tag."""
    return Path(directory) / f"BENCH_{tag}.json"


def record_bench(
    tag: str,
    n_tuples: Optional[int] = None,
    theta: float = DEFAULT_BENCH_THETA,
    seed: int = DEFAULT_BENCH_SEED,
    repeats: int = DEFAULT_REPEATS,
    backends: Sequence[str] = BACKENDS,
    algorithms: Optional[Iterable[str]] = None,
    spill_budget_bytes: Optional[int] = None,
    planner=None,
) -> BenchRecord:
    """Execute the bench matrix and collect per-phase median wall times.

    Every (algorithm, backend) pair runs ``repeats`` times on one shared
    workload; the median per phase absorbs scheduler noise.  Output counts
    and phase structure are cross-checked between backends while we are at
    it — a bench snapshot of diverging backends would gate on garbage.

    ``spill_budget_bytes`` records the spilled scale tier instead: every
    run executes inside a fresh ephemeral spill session under that
    memory budget, so the snapshot prices the out-of-core path (chunk
    encode/fsync on the way down, validated reads on the way back).
    Phase structure and outputs are identical to in-RAM by construction,
    so the same schema and gate apply.

    ``planner`` (a :class:`repro.plan.planner.Planner`) annotates every
    case with predicted-vs-realized wall costs per backend and the
    planner's pick — the columns ``repro bench --compare --json``
    surfaces when plans are present.
    """
    from repro.api import ALGORITHMS, make_join
    from repro.bench.runner import exec_bench_tuples
    from repro.store import open_spill_session

    if repeats < 1:
        raise VerificationError("repeats must be >= 1")
    n = exec_bench_tuples() if n_tuples is None else int(n_tuples)
    if algorithms is None:
        if spill_budget_bytes is not None:
            from repro.faults.plan import SPILL_ALGORITHM_NAMES
            algorithms = list(SPILL_ALGORITHM_NAMES)
        else:
            algorithms = sorted(ALGORITHMS)
    else:
        algorithms = list(algorithms)
    join_input = ZipfWorkload(n, n, theta=theta, seed=seed).generate()
    if PARALLEL in backends:
        from repro.exec.parallel import worker_count
        pool_size = worker_count()
    else:
        pool_size = 1
    record = BenchRecord(tag=tag, n_tuples=n, theta=theta, seed=seed,
                         repeats=repeats, backends=list(backends),
                         worker_count=pool_size,
                         spill_budget_bytes=spill_budget_bytes)
    plan_sketch = full_plan = None
    if planner is not None:
        plan_sketch = planner.sketch(join_input)
        full_plan = planner.plan(join_input)
    for algo in algorithms:
        walls: Dict[str, Dict[str, List[float]]] = {}
        reference = None
        for backend in backends:
            with use_backend(backend):
                for _ in range(repeats):
                    if spill_budget_bytes is not None:
                        with open_spill_session(
                                budget_bytes=spill_budget_bytes,
                                chunk_bytes=max(spill_budget_bytes // 2,
                                                4096)):
                            result = make_join(algo).run(join_input)
                    else:
                        result = make_join(algo).run(join_input)
                    for phase in result.phases:
                        walls.setdefault(phase.name, {}).setdefault(
                            backend, []).append(phase.wall_seconds)
            if reference is None:
                reference = result
            elif (result.output_count != reference.output_count
                  or result.output_checksum != reference.output_checksum):
                raise VerificationError(
                    "backends disagree while recording bench",
                    algorithm=algo, backend=backend,
                )
        case = CaseBench(
            algorithm=algo,
            output_count=reference.output_count,
            output_checksum=reference.output_checksum,
        )
        for phase in reference.phases:
            case.phases.append(PhaseBench(
                name=phase.name,
                wall_seconds={
                    b: statistics.median(walls[phase.name][b])
                    for b in backends if b in walls.get(phase.name, {})
                },
                simulated_seconds=phase.simulated_seconds,
                counters={k: v for k, v in phase.counters.as_dict().items()
                          if v},
            ))
        if planner is not None:
            from repro.exec.backend import PARALLEL as _PAR
            from repro.plan.candidates import CandidatePoint
            predicted = {}
            for backend in backends:
                point = CandidatePoint(
                    algo, backend,
                    pool_size if backend == _PAR else 1)
                predicted[backend] = planner.predict_point(
                    plan_sketch, point).predicted_wall_seconds
            chosen = full_plan.chosen
            case.plan = {
                "predicted_wall_seconds": predicted,
                "realized_wall_seconds": {
                    b: case.total_wall(b) for b in backends},
                "picked": (chosen is not None
                           and chosen.point.algorithm == algo),
                "picked_point": (chosen.point.label()
                                 if chosen is not None else None),
            }
        record.cases.append(case)
    return record


def bench_to_dict(record: BenchRecord) -> Dict:
    """Plain-dict (JSON) form of a bench record."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tag": record.tag,
        "n_tuples": record.n_tuples,
        "theta": record.theta,
        "seed": record.seed,
        "repeats": record.repeats,
        "backends": list(record.backends),
        "worker_count": record.worker_count,
        "spill_budget_bytes": record.spill_budget_bytes,
        "cases": [
            {
                "algorithm": c.algorithm,
                "output_count": c.output_count,
                "output_checksum": c.output_checksum,
                **({"plan": c.plan} if c.plan else {}),
                "phases": [
                    {
                        "name": p.name,
                        "wall_seconds": dict(p.wall_seconds),
                        "simulated_seconds": p.simulated_seconds,
                        "counters": dict(p.counters),
                    }
                    for p in c.phases
                ],
            }
            for c in record.cases
        ],
    }


def bench_from_dict(data: Dict, source: str = "<dict>") -> BenchRecord:
    """Rebuild a bench record, rejecting unknown schemas actionably."""
    version = data.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise BaselineError(
            f"benchmark baseline {source} has schema version {version!r}, "
            f"but this build reads version {BENCH_SCHEMA_VERSION}; "
            "re-record it with `repro bench --record --tag <tag>`",
            path=source, found_version=version,
            expected_version=BENCH_SCHEMA_VERSION,
        )
    try:
        return BenchRecord(
            tag=data["tag"],
            n_tuples=int(data["n_tuples"]),
            theta=float(data["theta"]),
            seed=int(data["seed"]),
            repeats=int(data["repeats"]),
            backends=list(data["backends"]),
            worker_count=int(data["worker_count"]),
            spill_budget_bytes=(
                int(data["spill_budget_bytes"])
                if data.get("spill_budget_bytes") is not None else None),
            cases=[
                CaseBench(
                    algorithm=c["algorithm"],
                    output_count=int(c["output_count"]),
                    output_checksum=int(c["output_checksum"]),
                    plan=c.get("plan"),
                    phases=[
                        PhaseBench(
                            name=p["name"],
                            wall_seconds={k: float(v) for k, v in
                                          p["wall_seconds"].items()},
                            simulated_seconds=float(p["simulated_seconds"]),
                            counters={k: int(v) for k, v in
                                      p.get("counters", {}).items()},
                        )
                        for p in c["phases"]
                    ],
                )
                for c in data["cases"]
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise BaselineError(
            f"benchmark baseline {source} is malformed ({exc}); "
            "re-record it with `repro bench --record --tag <tag>`",
            path=source,
        ) from exc


def save_bench(record: BenchRecord, path: Union[str, Path]) -> Path:
    """Write one bench record as pretty JSON (the committed baseline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bench_to_dict(record), indent=2,
                               sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bench(path: Union[str, Path]) -> BenchRecord:
    """Read a bench record; every failure mode is a :class:`BaselineError`.

    Missing file, unreadable file, invalid JSON, and unknown schema all
    come back typed and actionable — the CI gate prints the message and
    the fix, never a traceback.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise BaselineError(
            f"no benchmark baseline at {path}; record one with "
            f"`repro bench --record --tag {_tag_of(path)}`",
            path=str(path),
        ) from None
    except OSError as exc:
        raise BaselineError(
            f"cannot read benchmark baseline {path}: {exc}",
            path=str(path),
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"benchmark baseline {path} is not valid JSON ({exc}); "
            f"re-record it with `repro bench --record --tag {_tag_of(path)}`",
            path=str(path),
        ) from exc
    if not isinstance(data, dict):
        raise BaselineError(
            f"benchmark baseline {path} is not a JSON object; re-record it "
            f"with `repro bench --record --tag {_tag_of(path)}`",
            path=str(path),
        )
    return bench_from_dict(data, source=str(path))


def _tag_of(path: Path) -> str:
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


@dataclass
class PhaseRegression:
    """One phase whose candidate wall time exceeds the gate."""

    algorithm: str
    phase: str
    backend: str
    baseline_seconds: float
    candidate_seconds: float

    @property
    def ratio(self) -> float:
        """Candidate / baseline wall-time ratio."""
        if self.baseline_seconds <= 0:
            return float("inf")
        return self.candidate_seconds / self.baseline_seconds


@dataclass
class PhaseDelta:
    """Gate-backend wall-time movement of one phase (for --json output)."""

    algorithm: str
    phase: str
    baseline_seconds: float
    candidate_seconds: float

    @property
    def ratio(self) -> Optional[float]:
        """Candidate / baseline wall-time ratio (None on a zero baseline)."""
        if self.baseline_seconds <= 0:
            return None
        return self.candidate_seconds / self.baseline_seconds


@dataclass
class BenchComparison:
    """Outcome of gating a candidate bench against a baseline."""

    baseline_tag: str
    candidate_tag: str
    threshold: float
    floor_seconds: float
    gate_backend: str
    regressions: List[PhaseRegression] = field(default_factory=list)
    counter_drift: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    candidate_speedup: Optional[float] = None
    parallel_scaling: Optional[float] = None
    worker_count: int = 1
    deltas: List[PhaseDelta] = field(default_factory=list)
    #: Per-algorithm planner predicted-vs-realized rows, present when the
    #: candidate bench ran with a planner attached.
    planner_rows: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no phase regressed beyond the gate."""
        return not self.regressions and not self.missing

    def render(self) -> str:
        """Human-readable comparison summary."""
        lines = [
            f"bench compare — candidate {self.candidate_tag!r} vs "
            f"baseline {self.baseline_tag!r}",
            f"  gate: {self.gate_backend} backend wall time, "
            f">{self.threshold:.0%} over baseline "
            f"(+{self.floor_seconds:g}s floor) fails",
        ]
        if self.candidate_speedup is not None:
            lines.append(f"  vector speedup over scalar (candidate, median "
                         f"across algorithms): {self.candidate_speedup:.1f}x")
        if self.parallel_scaling is not None:
            lines.append(
                f"  parallel scaling over vector (candidate, median over "
                f"join/probe phases, {self.worker_count} worker(s)): "
                f"{self.parallel_scaling:.2f}x")
        for item in self.missing:
            lines.append(f"  MISSING: {item}")
        for reg in self.regressions:
            lines.append(
                f"  REGRESSION: {reg.algorithm}/{reg.phase} "
                f"({reg.backend}): {reg.baseline_seconds:.4f}s -> "
                f"{reg.candidate_seconds:.4f}s ({reg.ratio:.2f}x)")
        for note in self.counter_drift:
            lines.append(f"  note: {note}")
        for row in self.planner_rows:
            predicted = row.get("predicted_wall_seconds", {}).get(
                self.gate_backend)
            realized = row.get("realized_wall_seconds", {}).get(
                self.gate_backend)
            if predicted is None or realized is None:
                continue
            mark = " [picked]" if row.get("picked") else ""
            lines.append(
                f"  plan: {row.get('algorithm')}: predicted "
                f"{predicted:.4f}s, realized {realized:.4f}s "
                f"({self.gate_backend}){mark}")
        lines.append("BENCH COMPARE " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def compare_benches(
    baseline: BenchRecord,
    candidate: BenchRecord,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    floor_seconds: float = WALL_FLOOR_SECONDS,
) -> BenchComparison:
    """Gate a candidate bench record against a baseline.

    The gate runs on the hot (vector) backend when both records carry it,
    else on the first backend they share.  Counter drift between records
    is reported informationally — counters are deterministic, so drift
    means the algorithms themselves changed, which a wall-time gate alone
    cannot judge.
    """
    shared = [b for b in candidate.backends if b in baseline.backends]
    if not shared:
        raise BaselineError(
            "baseline and candidate share no backend: "
            f"{baseline.backends} vs {candidate.backends}; re-record the "
            "baseline with `repro bench --record`",
        )
    gate_backend = VECTOR if VECTOR in shared else shared[0]
    comparison = BenchComparison(
        baseline_tag=baseline.tag,
        candidate_tag=candidate.tag,
        threshold=threshold,
        floor_seconds=floor_seconds,
        gate_backend=gate_backend,
        candidate_speedup=candidate.median_speedup(),
        parallel_scaling=candidate.parallel_scaling(),
        worker_count=candidate.worker_count,
    )
    for case in candidate.cases:
        if case.plan:
            comparison.planner_rows.append(
                {"algorithm": case.algorithm, **case.plan})
    for base_case in baseline.cases:
        cand_case = candidate.case(base_case.algorithm)
        if cand_case is None:
            comparison.missing.append(
                f"algorithm {base_case.algorithm!r} present in baseline "
                "but absent from candidate")
            continue
        cand_phases = {p.name: p for p in cand_case.phases}
        for base_phase in base_case.phases:
            cand_phase = cand_phases.get(base_phase.name)
            if cand_phase is None:
                comparison.missing.append(
                    f"phase {base_case.algorithm}/{base_phase.name} absent "
                    "from candidate")
                continue
            base_wall = base_phase.wall_seconds.get(gate_backend)
            cand_wall = cand_phase.wall_seconds.get(gate_backend)
            if base_wall is None or cand_wall is None:
                continue
            comparison.deltas.append(PhaseDelta(
                algorithm=base_case.algorithm, phase=base_phase.name,
                baseline_seconds=base_wall, candidate_seconds=cand_wall,
            ))
            over = cand_wall - base_wall * (1.0 + threshold)
            if over > 0 and cand_wall - base_wall > floor_seconds:
                comparison.regressions.append(PhaseRegression(
                    algorithm=base_case.algorithm,
                    phase=base_phase.name,
                    backend=gate_backend,
                    baseline_seconds=base_wall,
                    candidate_seconds=cand_wall,
                ))
            if (base_phase.counters and cand_phase.counters
                    and base_phase.counters != cand_phase.counters):
                comparison.counter_drift.append(
                    f"{base_case.algorithm}/{base_phase.name} operation "
                    "counters differ from baseline (algorithm change?)")
    return comparison


def comparison_to_dict(comparison: BenchComparison) -> Dict:
    """Machine-readable (JSON) form of a comparison — the CI artifact.

    Carries the verdict, the gate parameters, every per-phase delta on
    the gate backend, and the candidate's speedup/scaling summaries, so
    downstream tooling never has to parse the rendered text.
    """
    return {
        "verdict": "ok" if comparison.ok else "failed",
        "baseline_tag": comparison.baseline_tag,
        "candidate_tag": comparison.candidate_tag,
        "gate": {
            "backend": comparison.gate_backend,
            "threshold": comparison.threshold,
            "floor_seconds": comparison.floor_seconds,
        },
        "speedups": {
            "vector_over_scalar_median": comparison.candidate_speedup,
            "parallel_over_vector_join_probe_median":
                comparison.parallel_scaling,
            "worker_count": comparison.worker_count,
        },
        "phase_deltas": [
            {
                "algorithm": d.algorithm,
                "phase": d.phase,
                "backend": comparison.gate_backend,
                "baseline_seconds": d.baseline_seconds,
                "candidate_seconds": d.candidate_seconds,
                "ratio": d.ratio,
            }
            for d in comparison.deltas
        ],
        "regressions": [
            {
                "algorithm": r.algorithm,
                "phase": r.phase,
                "backend": r.backend,
                "baseline_seconds": r.baseline_seconds,
                "candidate_seconds": r.candidate_seconds,
                "ratio": r.ratio,
            }
            for r in comparison.regressions
        ],
        "missing": list(comparison.missing),
        "counter_drift": list(comparison.counter_drift),
        **({"planner": list(comparison.planner_rows)}
           if comparison.planner_rows else {}),
    }
