"""Benchmark harness: paper reference data, runners, renderers."""

from repro.bench import paper
from repro.bench.oocore import (
    compare_oocore_benches,
    load_oocore_bench,
    oocore_bench_path,
    record_oocore_bench,
    render_oocore,
    save_oocore_bench,
)
from repro.bench.experiments import (
    run_detection,
    run_figure1,
    run_figure4,
    run_scaleup,
    run_table1,
)
from repro.bench.runner import (
    DEFAULT_BENCH_TUPLES,
    bench_tuples,
    clear_caches,
    get_workload,
    run_algorithm,
    scale_label,
    sweep,
    sweep_points,
)
from repro.bench.tables import format_seconds, render_csv, render_series, render_table

__all__ = [
    "paper",
    "run_figure1",
    "run_figure4",
    "run_table1",
    "run_scaleup",
    "run_detection",
    "bench_tuples",
    "scale_label",
    "sweep",
    "sweep_points",
    "run_algorithm",
    "get_workload",
    "clear_caches",
    "DEFAULT_BENCH_TUPLES",
    "render_table",
    "render_series",
    "render_csv",
    "format_seconds",
    "compare_oocore_benches",
    "load_oocore_bench",
    "oocore_bench_path",
    "record_oocore_bench",
    "render_oocore",
    "save_oocore_bench",
]
