"""Benchmark harness: scales, caching, and sweep execution.

The benchmarks regenerate the paper's tables and figures on the analytic
paper-scale path (exact counters from histograms — see
:mod:`repro.analysis.analytic`).  By default they run at a reduced table
size so the whole harness finishes in minutes on a laptop; set
``REPRO_BENCH_SCALE=paper`` (or an explicit tuple count such as
``REPRO_BENCH_SCALE=32000000``) to regenerate at the paper's full 32 M
scale.  Shapes — who wins, by what factor, where crossovers fall — hold at
every scale; absolute factors converge to the paper's as the scale rises.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.analytic import ANALYTIC_EXECUTORS, AnalyticWorkload
from repro.analysis.speedup import SweepPoint
from repro.bench.paper import PAPER_N_TUPLES
from repro.errors import ConfigError
from repro.exec.result import JoinResult
from repro.exec.serialize import append_results_jsonl
from repro.obs.trace import TraceRecord

#: Default reduced scale for the bench harness.
DEFAULT_BENCH_TUPLES = 1 << 22

#: Default scale for *executed* (non-analytic) benches — the regression
#: recorder runs every pipeline on both backends, and the scalar backend
#: is a per-tuple Python interpreter loop, so this is deliberately small.
DEFAULT_EXEC_BENCH_TUPLES = 1 << 16

_SCALE_ENV = "REPRO_BENCH_SCALE"

#: When set, every benchmark result is appended (with its trace) to
#: ``$REPRO_TRACE_DIR/traces.jsonl`` as a machine-readable artifact.
_TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Session-level caches so figures/tables sharing a sweep reuse results.
_workload_cache: Dict[Tuple[int, float, int], AnalyticWorkload] = {}
_result_cache: Dict[Tuple[int, float, int, str], JoinResult] = {}


def bench_tuples(default: int = DEFAULT_BENCH_TUPLES) -> int:
    """The table size the harness runs at (env-overridable).

    ``REPRO_BENCH_SCALE`` accepts ``paper`` or a positive tuple count;
    anything else is a configuration error, surfaced loudly rather than
    silently benchmarking the wrong scale.
    """
    raw = os.environ.get(_SCALE_ENV, "").strip().lower()
    if not raw:
        return default
    if raw == "paper":
        return PAPER_N_TUPLES
    try:
        n = int(raw)
    except ValueError:
        raise ConfigError(
            f"{_SCALE_ENV} must be 'paper' or a positive integer tuple "
            f"count, got {raw!r}"
        ) from None
    if n <= 0:
        raise ConfigError(
            f"{_SCALE_ENV} must be positive, got {n}"
        )
    return n


def exec_bench_tuples() -> int:
    """Table size for executed (both-backend) benches.

    Honors ``REPRO_BENCH_SCALE`` like :func:`bench_tuples`, but defaults
    to :data:`DEFAULT_EXEC_BENCH_TUPLES` because the scalar backend runs
    tuple-at-a-time in the interpreter.
    """
    return bench_tuples(default=DEFAULT_EXEC_BENCH_TUPLES)


def scale_label(n: int) -> str:
    """Describe a bench scale for output headers."""
    if n == PAPER_N_TUPLES:
        return f"{n} tuples (paper scale)"
    return f"{n} tuples (reduced; set {_SCALE_ENV}=paper for 32M)"


def get_workload(n: int, theta: float, seed: int = 42) -> AnalyticWorkload:
    """Cached zipf histogram for one (scale, theta, seed)."""
    key = (n, theta, seed)
    if key not in _workload_cache:
        _workload_cache[key] = AnalyticWorkload.from_zipf(n, n, theta,
                                                          seed=seed)
    return _workload_cache[key]


def trace_artifact_path() -> Optional[str]:
    """The JSONL artifact file for this session, if exporting is enabled."""
    trace_dir = os.environ.get(_TRACE_DIR_ENV, "").strip()
    if not trace_dir:
        return None
    return os.path.join(trace_dir, "traces.jsonl")


def export_trace(result: JoinResult, **attrs) -> JoinResult:
    """Ensure ``result`` carries a trace; append it to the artifact file.

    Results from the analytic executors are built phase-by-phase without
    an active tracer, so a flat trace is derived from the breakdown —
    every benchmark run emits the same artifact schema either way.
    """
    if result.trace is None:
        result.trace = TraceRecord.from_phases(result.algorithm,
                                               result.phases, **attrs)
    path = trace_artifact_path()
    if path is not None:
        append_results_jsonl([result], path)
    return result


def run_algorithm(algorithm: str, n: int, theta: float,
                  seed: int = 42) -> JoinResult:
    """Run one algorithm's analytic executor, cached per (scale, theta)."""
    key = (n, theta, seed, algorithm)
    if key not in _result_cache:
        wl = get_workload(n, theta, seed)
        _result_cache[key] = export_trace(
            ANALYTIC_EXECUTORS[algorithm](wl),
            n_tuples=n, theta=theta, seed=seed,
        )
    return _result_cache[key]


def sweep(algorithms: Iterable[str], thetas: Iterable[float],
          n: Optional[int] = None, seed: int = 42):
    """Run a zipf sweep; returns {theta: {algorithm: JoinResult}}."""
    n = bench_tuples() if n is None else n
    out: Dict[float, Dict[str, JoinResult]] = {}
    for theta in thetas:
        out[theta] = {
            alg: run_algorithm(alg, n, theta, seed) for alg in algorithms
        }
    return out


def sweep_points(results: Dict[float, Dict[str, JoinResult]]):
    """Convert a sweep into SweepPoints of total simulated seconds."""
    return [
        SweepPoint(theta, {alg: res.simulated_seconds
                           for alg, res in algs.items()})
        for theta, algs in sorted(results.items())
    ]


def clear_caches() -> None:
    """Drop all cached workloads and results."""
    _workload_cache.clear()
    _result_cache.clear()
