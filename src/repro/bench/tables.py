"""Plain-text renderers for bench tables and figure series."""

from __future__ import annotations

from typing import Dict, Optional, Sequence


def format_seconds(seconds: float) -> str:
    """Human-scale rendering matching the paper's mixed ms/s style."""
    if seconds == 0:
        return "0"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def render_table(
    rows: Dict[str, Dict[float, float]],
    columns: Sequence[float],
    title: str,
    reference: Optional[Dict[str, Dict[float, float]]] = None,
) -> str:
    """Render a Table-I-style breakdown.

    ``rows`` maps row label -> {zipf factor: seconds}; when ``reference``
    (the paper's numbers) is given, each model row is followed by the
    paper's row for side-by-side comparison.
    """
    label_width = max(len(label) for label in rows) + 9
    header = "zipf factor".ljust(label_width) + "".join(
        f"{c:>11}" for c in columns)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for label, values in rows.items():
        cells = "".join(
            f"{format_seconds(values[c]):>11}" if c in values else
            f"{'-':>11}"
            for c in columns)
        lines.append(f"{label} (model)".ljust(label_width) + cells)
        if reference and label in reference:
            ref = reference[label]
            cells = "".join(
                f"{format_seconds(ref[c]):>11}" if c in ref else f"{'-':>11}"
                for c in columns)
            lines.append(f"{label} (paper)".ljust(label_width) + cells)
    lines.append("=" * len(header))
    return "\n".join(lines)


def render_series(
    series: Dict[str, Dict[float, float]],
    x_values: Sequence[float],
    title: str,
    x_label: str = "zipf",
) -> str:
    """Render figure data as an aligned text table (one row per x)."""
    names = list(series)
    header = f"{x_label:>6}" + "".join(f"{n:>14}" for n in names)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for x in x_values:
        cells = "".join(
            f"{format_seconds(series[n][x]):>14}" if x in series[n]
            else f"{'-':>14}"
            for n in names)
        lines.append(f"{x:>6}" + cells)
    lines.append("=" * len(header))
    return "\n".join(lines)


def render_csv(series: Dict[str, Dict[float, float]],
               x_values: Sequence[float], x_label: str = "zipf") -> str:
    """CSV rendering of figure data (for external plotting)."""
    names = list(series)
    lines = [",".join([x_label] + names)]
    for x in x_values:
        cells = [str(x)] + [
            repr(series[n].get(x, "")) for n in names
        ]
        lines.append(",".join(cells))
    return "\n".join(lines)
