"""The out-of-core scale tier: joins larger than the memory budget.

``repro bench --oocore --record`` streams a zipf workload to an on-disk
relation store whose raw size **exceeds** ``REPRO_MEMORY_BUDGET``, then
runs the join once per backend — each run in a **fresh child process**
that captures its interpreter baseline RSS *before* the store opens and
its peak RSS after the join.  The committed ``BENCH_oocore_<tag>.json``
snapshot is therefore a machine-checked memory claim:

* every backend produced the identical ``(count, checksum)`` answer as
  every other backend (bit-identity survives paging), and
* every backend's RSS delta (peak minus baseline) stayed under the
  budget even though the dataset did not fit in it.

The child process matters: ``ru_maxrss`` is a process-lifetime
high-water mark, so measuring inside a long-lived pytest or CLI process
would inherit whatever the process had already touched.  A fresh child
starts from the interpreter + numpy baseline and everything above it is
attributable to the run.  Workers forked by the parallel backend are
separate processes; the recorded bound is the driver's residency, which
is where the morsel paging and arena traffic live.

``repro bench --oocore --compare`` re-records under the baseline's own
shape and gates wall time per backend with the same threshold + floor
as the main bench gate, after re-verifying both claims above.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import BaselineError, VerificationError
from repro.exec.backend import BACKENDS

#: Schema of BENCH_oocore_<tag>.json files.
OOCORE_SCHEMA_VERSION = 1

#: Default tier shape: a 4 M tuple probe side (32 MiB of raw relation
#: data with the 64 Ki build side) under a budget of half the dataset.
DEFAULT_OOCORE_N_R = 1 << 16
DEFAULT_OOCORE_N_S = 1 << 22
DEFAULT_OOCORE_THETA = 0.5
DEFAULT_OOCORE_SEED = 42
DEFAULT_OOCORE_ALGORITHM = "cbase-npj"
DEFAULT_OOCORE_CODEC = "zlib"
DEFAULT_OOCORE_CHUNK_TUPLES = 1 << 17
DEFAULT_OOCORE_CACHE_SEGMENTS = 2

#: Probe threads for the tier's cbase-npj runs.  The streamed probe's
#: transient working set scales with the morsel (``n_s / n_threads``),
#: so the tier runs with more, smaller segments than the latency-tuned
#: default — same answer (bit-identity holds for any thread count),
#: bounded residency.
DEFAULT_OOCORE_THREADS = 64

#: Wall-time gate, matching the main bench gate's shape.
OOCORE_REGRESSION_THRESHOLD = 0.25
OOCORE_WALL_FLOOR_SECONDS = 5e-3


@dataclass
class OocoreRun:
    """One backend's measured child-process run."""

    backend: str
    wall_seconds: float
    baseline_rss_bytes: int
    peak_rss_bytes: int
    output_count: int
    output_checksum: int

    @property
    def delta_rss_bytes(self) -> int:
        """Residency attributable to the run (peak minus baseline)."""
        return max(self.peak_rss_bytes - self.baseline_rss_bytes, 0)


@dataclass
class OocoreBenchRecord:
    """One recorded out-of-core tier snapshot."""

    tag: str
    algorithm: str
    n_r: int
    n_s: int
    theta: float
    seed: int
    codec: str
    chunk_tuples: int
    cache_segments: int
    n_threads: int
    dataset_bytes: int
    budget_bytes: int
    runs: List[OocoreRun] = field(default_factory=list)

    def run_for(self, backend: str) -> Optional[OocoreRun]:
        for run in self.runs:
            if run.backend == backend:
                return run
        return None

    def verify(self) -> List[str]:
        """The tier's claims, re-checked (empty list = all hold)."""
        issues: List[str] = []
        if self.dataset_bytes <= self.budget_bytes:
            issues.append(
                f"dataset ({self.dataset_bytes} B) does not exceed the "
                f"budget ({self.budget_bytes} B) — not an out-of-core run")
        if not self.runs:
            issues.append("no backend runs recorded")
            return issues
        reference = self.runs[0]
        for run in self.runs[1:]:
            if (run.output_count != reference.output_count
                    or run.output_checksum != reference.output_checksum):
                issues.append(
                    f"{run.backend} answer diverged from "
                    f"{reference.backend}: ({run.output_count}, "
                    f"{run.output_checksum:#x}) vs "
                    f"({reference.output_count}, "
                    f"{reference.output_checksum:#x})")
        for run in self.runs:
            if run.peak_rss_bytes <= 0:
                issues.append(
                    f"{run.backend} recorded no RSS measurement")
            elif run.delta_rss_bytes > self.budget_bytes:
                issues.append(
                    f"{run.backend} RSS delta {run.delta_rss_bytes} B "
                    f"exceeds the {self.budget_bytes} B budget")
        return issues


# ------------------------------------------------------------ recording


def _repro_pythonpath() -> Dict[str, str]:
    """Child env whose PYTHONPATH resolves this very repro package."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [src_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    # Pin glibc's mmap threshold: by default it ratchets up as large
    # blocks are freed, after which freed morsel buffers are retained
    # in the heap and the measured RSS floor creeps upward.  Forcing
    # large allocations through mmap keeps frees returning to the OS,
    # so the child measures the streaming working set, not allocator
    # retention.
    env.setdefault("MALLOC_MMAP_THRESHOLD_", "131072")
    return env


def _measure_backend(directory: Union[str, Path], algorithm: str,
                     backend: str, cache_segments: int,
                     n_threads: int) -> OocoreRun:
    """Run one backend in a fresh child process; parse its measurement."""
    spec = json.dumps({
        "directory": str(directory),
        "algorithm": algorithm,
        "backend": backend,
        "cache_segments": int(cache_segments),
        "n_threads": int(n_threads),
    })
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.oocore", "--child", spec],
        capture_output=True, text=True, env=_repro_pythonpath(),
    )
    if proc.returncode != 0:
        raise VerificationError(
            f"oocore child for backend {backend!r} failed "
            f"(exit {proc.returncode}): {proc.stderr.strip()[-2000:]}",
            backend=backend)
    try:
        payload = json.loads(proc.stdout.strip().splitlines()[-1])
    except (json.JSONDecodeError, IndexError) as exc:
        raise VerificationError(
            f"oocore child for backend {backend!r} produced no "
            f"measurement: {proc.stdout[-500:]!r}", backend=backend) from exc
    return OocoreRun(
        backend=backend,
        wall_seconds=float(payload["wall_seconds"]),
        baseline_rss_bytes=int(payload["baseline_rss_bytes"]),
        peak_rss_bytes=int(payload["peak_rss_bytes"]),
        output_count=int(payload["output_count"]),
        output_checksum=int(payload["output_checksum"]),
    )


def record_oocore_bench(
    tag: str,
    n_r: int = DEFAULT_OOCORE_N_R,
    n_s: int = DEFAULT_OOCORE_N_S,
    theta: float = DEFAULT_OOCORE_THETA,
    seed: int = DEFAULT_OOCORE_SEED,
    algorithm: str = DEFAULT_OOCORE_ALGORITHM,
    codec: str = DEFAULT_OOCORE_CODEC,
    chunk_tuples: int = DEFAULT_OOCORE_CHUNK_TUPLES,
    cache_segments: int = DEFAULT_OOCORE_CACHE_SEGMENTS,
    n_threads: int = DEFAULT_OOCORE_THREADS,
    budget_bytes: Optional[int] = None,
    backends: Sequence[str] = BACKENDS,
    directory: Optional[Union[str, Path]] = None,
) -> OocoreBenchRecord:
    """Stream the tier's workload to disk and measure every backend.

    The default budget is half the raw dataset, making "dataset exceeds
    the budget" true by construction; the record's :meth:`verify` then
    checks the measured claims and the caller decides whether failures
    are fatal (``repro bench --oocore`` treats them as such).
    """
    import shutil
    import tempfile

    from repro.data.stream import stream_zipf_input
    from repro.store.relations import dataset_bytes as stored_bytes

    owned = directory is None
    directory = Path(tempfile.mkdtemp(prefix="repro-oocore-")
                     if owned else directory)
    try:
        stream_zipf_input(directory, n_r, n_s, theta, seed=seed,
                          codec=codec, chunk_tuples=chunk_tuples)
        total = stored_bytes(directory)
        budget = total // 2 if budget_bytes is None else int(budget_bytes)
        record = OocoreBenchRecord(
            tag=tag, algorithm=algorithm, n_r=n_r, n_s=n_s, theta=theta,
            seed=seed, codec=codec, chunk_tuples=chunk_tuples,
            cache_segments=cache_segments, n_threads=n_threads,
            dataset_bytes=total, budget_bytes=budget)
        for backend in backends:
            record.runs.append(_measure_backend(
                directory, algorithm, backend, cache_segments, n_threads))
        return record
    finally:
        if owned:
            shutil.rmtree(directory, ignore_errors=True)


# ---------------------------------------------------------- persistence


def oocore_bench_path(tag: str, directory: Union[str, Path] = ".") -> Path:
    return Path(directory) / f"BENCH_oocore_{tag}.json"


def oocore_to_dict(record: OocoreBenchRecord) -> Dict:
    return {
        "schema_version": OOCORE_SCHEMA_VERSION,
        "tag": record.tag,
        "algorithm": record.algorithm,
        "n_r": record.n_r,
        "n_s": record.n_s,
        "theta": record.theta,
        "seed": record.seed,
        "codec": record.codec,
        "chunk_tuples": record.chunk_tuples,
        "cache_segments": record.cache_segments,
        "n_threads": record.n_threads,
        "dataset_bytes": record.dataset_bytes,
        "budget_bytes": record.budget_bytes,
        "runs": [
            {
                "backend": r.backend,
                "wall_seconds": r.wall_seconds,
                "baseline_rss_bytes": r.baseline_rss_bytes,
                "peak_rss_bytes": r.peak_rss_bytes,
                "delta_rss_bytes": r.delta_rss_bytes,
                "output_count": r.output_count,
                "output_checksum": r.output_checksum,
            }
            for r in record.runs
        ],
    }


def oocore_from_dict(data: Dict, source: str = "<dict>") -> OocoreBenchRecord:
    version = data.get("schema_version")
    if version != OOCORE_SCHEMA_VERSION:
        raise BaselineError(
            f"oocore baseline {source} has schema version {version!r}, "
            f"but this build reads version {OOCORE_SCHEMA_VERSION}; "
            "re-record it with `repro bench --oocore --record`",
            path=source, found_version=version,
            expected_version=OOCORE_SCHEMA_VERSION)
    try:
        return OocoreBenchRecord(
            tag=data["tag"],
            algorithm=data["algorithm"],
            n_r=int(data["n_r"]),
            n_s=int(data["n_s"]),
            theta=float(data["theta"]),
            seed=int(data["seed"]),
            codec=data["codec"],
            chunk_tuples=int(data["chunk_tuples"]),
            cache_segments=int(data["cache_segments"]),
            n_threads=int(data["n_threads"]),
            dataset_bytes=int(data["dataset_bytes"]),
            budget_bytes=int(data["budget_bytes"]),
            runs=[
                OocoreRun(
                    backend=r["backend"],
                    wall_seconds=float(r["wall_seconds"]),
                    baseline_rss_bytes=int(r["baseline_rss_bytes"]),
                    peak_rss_bytes=int(r["peak_rss_bytes"]),
                    output_count=int(r["output_count"]),
                    output_checksum=int(r["output_checksum"]),
                )
                for r in data["runs"]
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise BaselineError(
            f"oocore baseline {source} is malformed ({exc}); re-record it "
            "with `repro bench --oocore --record`", path=source) from exc


def save_oocore_bench(record: OocoreBenchRecord,
                      path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(oocore_to_dict(record), indent=2,
                               sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_oocore_bench(path: Union[str, Path]) -> OocoreBenchRecord:
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise BaselineError(
            f"no oocore baseline at {path}; record one with "
            "`repro bench --oocore --record`", path=str(path)) from None
    except OSError as exc:
        raise BaselineError(
            f"cannot read oocore baseline {path}: {exc}",
            path=str(path)) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BaselineError(
            f"oocore baseline {path} is not valid JSON ({exc}); re-record "
            "it with `repro bench --oocore --record`",
            path=str(path)) from exc
    if not isinstance(data, dict):
        raise BaselineError(
            f"oocore baseline {path} is not a JSON object; re-record it "
            "with `repro bench --oocore --record`", path=str(path))
    return oocore_from_dict(data, source=str(path))


# ------------------------------------------------------------ comparing


@dataclass
class OocoreComparison:
    """Outcome of gating a candidate oocore record against a baseline."""

    baseline_tag: str
    candidate_tag: str
    threshold: float
    floor_seconds: float
    claim_failures: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.claim_failures and not self.regressions

    def render(self) -> str:
        lines = [
            f"oocore compare — candidate {self.candidate_tag!r} vs "
            f"baseline {self.baseline_tag!r}",
            f"  gate: per-backend wall time, >{self.threshold:.0%} over "
            f"baseline (+{self.floor_seconds:g}s floor) fails; RSS and "
            "bit-identity claims re-verified",
        ]
        for issue in self.claim_failures:
            lines.append(f"  CLAIM FAILED: {issue}")
        for issue in self.regressions:
            lines.append(f"  REGRESSION: {issue}")
        lines.append("OOCORE COMPARE " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def compare_oocore_benches(
    baseline: OocoreBenchRecord,
    candidate: OocoreBenchRecord,
    threshold: float = OOCORE_REGRESSION_THRESHOLD,
    floor_seconds: float = OOCORE_WALL_FLOOR_SECONDS,
) -> OocoreComparison:
    """Re-verify the candidate's claims and gate per-backend wall time."""
    comparison = OocoreComparison(
        baseline_tag=baseline.tag, candidate_tag=candidate.tag,
        threshold=threshold, floor_seconds=floor_seconds,
        claim_failures=candidate.verify())
    for base_run in baseline.runs:
        cand_run = candidate.run_for(base_run.backend)
        if cand_run is None:
            comparison.regressions.append(
                f"backend {base_run.backend!r} present in baseline but "
                "absent from candidate")
            continue
        over = cand_run.wall_seconds - base_run.wall_seconds * (1 + threshold)
        if (over > 0 and cand_run.wall_seconds - base_run.wall_seconds
                > floor_seconds):
            ratio = (cand_run.wall_seconds / base_run.wall_seconds
                     if base_run.wall_seconds > 0 else float("inf"))
            comparison.regressions.append(
                f"{base_run.backend}: {base_run.wall_seconds:.4f}s -> "
                f"{cand_run.wall_seconds:.4f}s ({ratio:.2f}x)")
    return comparison


def render_oocore(record: OocoreBenchRecord) -> str:
    """Human-readable snapshot summary."""
    lines = [
        f"oocore tier {record.tag!r} — {record.algorithm}, "
        f"n_r={record.n_r}, n_s={record.n_s}, theta={record.theta}, "
        f"codec={record.codec}",
        f"  dataset {record.dataset_bytes / 2**20:.1f} MiB under a "
        f"{record.budget_bytes / 2**20:.1f} MiB budget",
    ]
    for run in record.runs:
        lines.append(
            f"  {run.backend:<9} {run.wall_seconds:8.3f}s  "
            f"rss +{run.delta_rss_bytes / 2**20:6.1f} MiB  "
            f"({run.output_count} tuples, {run.output_checksum:#x})")
    issues = record.verify()
    lines.append("OOCORE " + ("OK" if not issues else "FAILED"))
    for issue in issues:
        lines.append(f"  - {issue}")
    return "\n".join(lines)


# ------------------------------------------------------------ child run


def _child_main(spec_json: str) -> int:
    """One backend's measured run (fresh process; see module docstring)."""
    from repro.obs.rss import current_rss_bytes, peak_rss_bytes, \
        reset_peak_rss

    spec = json.loads(spec_json)
    # Everything the run needs is imported *before* the baseline capture,
    # so the delta excludes interpreter/numpy warmup and covers exactly
    # the store, the paging, and the join.
    from repro.api import make_join
    from repro.exec.backend import use_backend
    from repro.store.relations import open_join_input

    # Drop the high-water mark to the post-import floor so the recorded
    # peak is what this run allocated, not what import transients (or,
    # without procfs, the spawning driver) happened to touch.
    reset_peak_rss()
    baseline = current_rss_bytes() or peak_rss_bytes()
    start = time.perf_counter()
    config = None
    if spec["algorithm"] == "cbase-npj" and spec.get("n_threads"):
        from repro.cpu.no_partition_join import NoPartitionConfig
        config = NoPartitionConfig(n_threads=int(spec["n_threads"]))
    join_input, store = open_join_input(
        spec["directory"], cache_segments=spec.get("cache_segments"))
    try:
        with use_backend(spec["backend"]):
            result = make_join(spec["algorithm"], config).run(join_input)
    finally:
        store.close()
    wall = time.perf_counter() - start
    peak = int(result.meta.get("peak_rss_bytes") or peak_rss_bytes())
    print(json.dumps({
        "backend": spec["backend"],
        "wall_seconds": wall,
        "baseline_rss_bytes": baseline,
        "peak_rss_bytes": peak,
        "output_count": result.output_count,
        "output_checksum": result.output_checksum,
    }))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        sys.exit(_child_main(sys.argv[2]))
    print("usage: python -m repro.bench.oocore --child '<json spec>'",
          file=sys.stderr)
    sys.exit(2)
