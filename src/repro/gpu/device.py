"""GPU device specifications.

The paper's GPU experiments run on an NVIDIA A100-PCIE-40GB: 108 SMs, 6912
CUDA cores, 192 KB L1/shared memory per SM, 40 MB L2, 40 GB global memory
(~1555 GB/s).  :data:`A100` encodes those numbers; other presets exist for
sensitivity experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.types import TUPLE_BYTES


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of a simulated GPU."""

    name: str
    sm_count: int
    #: Shared memory budget one thread block may use, bytes.
    shared_mem_per_block: int
    #: L1/shared memory physically present per SM, bytes.
    shared_mem_per_sm: int
    l2_bytes: int
    global_mem_bytes: int
    #: Peak global-memory bandwidth, bytes/second.
    bandwidth: float
    threads_per_block: int = 256
    warp_size: int = 32

    def __post_init__(self):
        if self.sm_count <= 0:
            raise ConfigError("sm_count must be positive")
        if self.threads_per_block % self.warp_size != 0:
            raise ConfigError("threads_per_block must be a warp multiple")
        if self.shared_mem_per_block > self.shared_mem_per_sm:
            raise ConfigError(
                "per-block shared memory cannot exceed the SM's physical size"
            )

    @property
    def warps_per_block(self) -> int:
        """Warps per thread block."""
        return self.threads_per_block // self.warp_size

    @property
    def shared_capacity_tuples(self) -> int:
        """How many 8-byte tuples (plus chain pointers and bucket heads)
        a shared-memory hash table can hold: tuple (8 B) + next pointer
        (4 B) + amortized bucket head (4 B) = 16 B per entry."""
        return self.shared_mem_per_block // (TUPLE_BYTES + 8)

    def fits_global(self, n_bytes: int) -> bool:
        """True if the byte count fits in global memory."""
        return n_bytes <= self.global_mem_bytes

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a modified copy (sensitivity experiments)."""
        return replace(self, **kwargs)


#: The paper's device (Section V-A).
A100 = DeviceSpec(
    name="A100-PCIE-40GB",
    sm_count=108,
    shared_mem_per_block=96 * 1024,
    shared_mem_per_sm=192 * 1024,
    l2_bytes=40 * 1024 * 1024,
    global_mem_bytes=40 * 1024 * 1024 * 1024,
    bandwidth=1.555e12,
)

#: A smaller device preset for scale-sensitivity experiments.
V100_LIKE = DeviceSpec(
    name="V100-like",
    sm_count=80,
    shared_mem_per_block=64 * 1024,
    shared_mem_per_sm=128 * 1024,
    l2_bytes=6 * 1024 * 1024,
    global_mem_bytes=16 * 1024 * 1024 * 1024,
    bandwidth=0.9e12,
)
