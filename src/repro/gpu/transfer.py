"""Host-device transfer modelling (heterogeneous placement extension).

The paper joins GPU-resident data: "Since the data transfer cost between
the CPU and the GPU can be substantial, it is a promising solution to
place a portion of the data in the GPU global memory" (Section II-B,
citing heterogeneous CPU-GPU placement work).  This module models the
option the paper sets aside — shipping one or both tables over the
interconnect before joining — so placement trade-offs can be explored:
for how much skew does (transfer + GSH) still beat a CPU-side CSH?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.exec.result import JoinResult, PhaseResult
from repro.types import TUPLE_BYTES


@dataclass(frozen=True)
class Interconnect:
    """A host-device link."""

    name: str
    #: Sustained bandwidth in bytes/second.
    bandwidth: float
    #: Per-transfer latency in seconds (driver + DMA setup).
    latency: float = 10e-6

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.latency < 0:
            raise ConfigError("latency cannot be negative")

    def transfer_seconds(self, n_bytes: int) -> float:
        """Time to move ``n_bytes`` in one transfer."""
        if n_bytes < 0:
            raise ConfigError("cannot transfer a negative byte count")
        if n_bytes == 0:
            return 0.0
        return self.latency + n_bytes / self.bandwidth


#: The paper's machine uses a PCIe A100 ("A100-PCIE-40GB"): PCIe 4.0 x16.
PCIE4_X16 = Interconnect(name="PCIe 4.0 x16", bandwidth=25e9)

#: An NVLink-class link for comparison.
NVLINK3 = Interconnect(name="NVLink 3", bandwidth=250e9)


def table_transfer_seconds(n_tuples: int,
                           link: Interconnect = PCIE4_X16) -> float:
    """Time to ship one table of 8-byte tuples to the device."""
    return link.transfer_seconds(n_tuples * TUPLE_BYTES)


def with_transfer(result: JoinResult, link: Interconnect = PCIE4_X16,
                  ship_r: bool = True, ship_s: bool = True) -> JoinResult:
    """Return a copy of a GPU join result with a transfer phase prepended.

    Models running the same join on host-resident tables: the selected
    tables are shipped before the first kernel.
    """
    n_bytes = (result.n_r * TUPLE_BYTES if ship_r else 0) \
        + (result.n_s * TUPLE_BYTES if ship_s else 0)
    phase = PhaseResult(
        name="transfer",
        simulated_seconds=link.transfer_seconds(n_bytes),
        details={"bytes": float(n_bytes)},
    )
    return JoinResult(
        algorithm=f"{result.algorithm}+transfer",
        n_r=result.n_r,
        n_s=result.n_s,
        output_count=result.output_count,
        output_checksum=result.output_checksum,
        phases=[phase, *result.phases],
        meta={**result.meta, "interconnect": link.name},
    )


def transfer_break_even_tuples(cpu_seconds_per_tuple: float,
                               gpu_seconds_per_tuple: float,
                               link: Interconnect = PCIE4_X16) -> float:
    """Tuples above which shipping to the GPU pays off.

    Solves ``n * cpu = transfer(n * 16B) + n * gpu`` for per-tuple rates
    (both tables shipped).  Returns ``inf`` when the GPU never wins.
    """
    gain = cpu_seconds_per_tuple - gpu_seconds_per_tuple
    cost_per_tuple = 2 * TUPLE_BYTES / link.bandwidth
    if gain <= cost_per_tuple:
        return float("inf")
    return link.latency / (gain - cost_per_tuple)
