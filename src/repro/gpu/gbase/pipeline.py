"""Gbase: the baseline GPU hash join, run on the SIMT cost simulator.

From-scratch implementation of the GPU join the paper baselines against
([24], Sioulas et al., as described in Sections II-B and III): two-pass
bucket-chaining partitioning into shared-memory-sized partitions, then one
thread block per partition pair with a shared-memory chained hash table,
write-bitmap output coordination, and sub-list decomposition of large R
partitions as the skew-handling technique.

When a kernel exhausts its retry budget the pipeline degrades to the CPU
no-partition join (the bottom of the fallback ladder): phases already
priced are kept, the fallback run is traced as one ``fallback`` span, and
the output comes from the CPU run — identical by construction, since both
joins are functionally exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.no_partition_join import NoPartitionConfig, NoPartitionJoin
from repro.data.relation import JoinInput
from repro.errors import ConfigError, UnrecoveredFaultError
from repro.exec.backend import current_backend
from repro.exec.output import DEFAULT_CAPACITY
from repro.exec.result import JoinResult
from repro.faults.plan import KERNEL_ABORT
from repro.faults.recovery import append_partial_phases
from repro.faults.report import FailureReport
from repro.faults.scope import FaultScope, fault_scope
from repro.obs.rss import peak_rss_bytes
from repro.obs.trace import Tracer, activate
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.gbase.join_kernels import gbase_join_phase
from repro.gpu.partitioning import choose_gpu_bits, gbase_partition
from repro.gpu.simulator import GPUSimulator, cost_model_for


def run_cpu_fallback(
    result: JoinResult,
    tracer: Tracer,
    faults: FaultScope,
    exc: UnrecoveredFaultError,
    join_input: JoinInput,
    output_capacity: int,
) -> JoinResult:
    """Degrade a GPU pipeline to cbase-npj after an unrecovered fault.

    Appends the aborted run's partial phases, records the fallback as a
    recovered report, then runs the CPU no-partition join inside one
    ``fallback`` span (the inner join activates its own tracer and fault
    scope, so its spans and reports stay out of the GPU result).  Raises
    the original error unchanged when the policy forbids falling back.
    """
    if not faults.policy.gpu_cpu_fallback:
        raise exc
    report = exc.report
    append_partial_phases(result, tracer)
    faults.record(FailureReport(
        kind=report.kind if report else KERNEL_ABORT,
        point=report.point if report else "kernel",
        algorithm=faults.algorithm, phase=report.phase if report else "",
        action="fallback:cbase-npj", recovered=True,
        injected=report.injected if report else True,
        retries=report.retries if report else 0,
        error=str(exc), context=dict(report.context) if report else {},
    ))
    with tracer.span("fallback", algo=faults.algorithm,
                     target="cbase-npj") as span:
        fallback = NoPartitionJoin(
            NoPartitionConfig(output_capacity=output_capacity)
        ).run(join_input)
        span.finish(
            simulated_seconds=fallback.simulated_seconds,
            counters=fallback.counters,
        )
    result.phases.append(span.phase_result)
    result.output_count = fallback.output_count
    result.output_checksum = fallback.output_checksum
    result.meta["fallback"] = "cbase-npj"
    return fallback


@dataclass(frozen=True)
class GbaseConfig:
    """Tuning knobs for the Gbase GPU join."""

    device: DeviceSpec = A100
    #: Max R tuples per join block; larger partitions get sub-lists.
    #: ``None`` defaults to the device's shared-memory table capacity.
    sublist_capacity: Optional[int] = None
    bits_pass1: Optional[int] = None
    bits_pass2: Optional[int] = None
    output_capacity: int = DEFAULT_CAPACITY

    def resolve_sublist_capacity(self) -> int:
        """Max R tuples per join block."""
        cap = self.sublist_capacity
        if cap is None:
            cap = self.device.shared_capacity_tuples
        if cap <= 0:
            raise ConfigError("sublist capacity must be positive")
        return cap

    def resolve_bits(self, n_tuples: int) -> Tuple[int, int]:
        """Radix bit widths for the partition passes."""
        if self.bits_pass1 is not None:
            return self.bits_pass1, self.bits_pass2 or 0
        return choose_gpu_bits(n_tuples, self.device.shared_capacity_tuples)


class GbaseJoin:
    """The Gbase pipeline: partition then join, on the GPU simulator."""

    name = "gbase"

    def __init__(self, config: GbaseConfig = GbaseConfig()):
        self.config = config

    def run(self, join_input: JoinInput) -> JoinResult:
        """Execute the pipeline and return its JoinResult."""
        cfg = self.config
        r, s = join_input.r, join_input.s
        sim = GPUSimulator(device=cfg.device,
                           cost_model=cost_model_for(cfg.device))
        bits1, bits2 = cfg.resolve_bits(max(len(r), len(s)))
        result = JoinResult(
            algorithm=self.name, n_r=len(r), n_s=len(s),
            output_count=0, output_checksum=0,
            meta={"bits_pass1": bits1, "bits_pass2": bits2,
                  "device": cfg.device.name, "backend": current_backend()},
        )

        tracer = Tracer(self.name, algorithm=self.name,
                        n_r=len(r), n_s=len(s), device=cfg.device.name)
        metrics = tracer.metrics
        with activate(tracer), fault_scope(self.name) as faults:
            metrics.counter("join.tuples_scanned").inc(len(r) + len(s))

            try:
                with tracer.span("partition", algo=self.name) as span:
                    part_r = gbase_partition(r.keys, r.payloads, bits1,
                                             bits2, sim, "r")
                    part_s = gbase_partition(s.keys, s.payloads, bits1,
                                             bits2, sim, "s")
                    span.finish(
                        simulated_seconds=part_r.seconds + part_s.seconds,
                        counters=part_r.counters + part_s.counters,
                    )
                result.phases.append(span.phase_result)
                metrics.histogram("partition.sizes").observe_many(
                    part_r.partitioned.sizes()
                )

                with tracer.span("join", algo=self.name) as span:
                    phase = gbase_join_phase(
                        part_r.partitioned, part_s.partitioned, sim,
                        sublist_capacity=cfg.resolve_sublist_capacity(),
                        output_capacity=cfg.output_capacity,
                    )
                    span.finish(
                        simulated_seconds=phase.seconds,
                        counters=phase.counters,
                        task_count=phase.n_blocks,
                    )
                result.phases.append(span.phase_result)

                result.output_count = phase.summary.count
                result.output_checksum = phase.summary.checksum
                result.meta["join_blocks"] = phase.n_blocks
            except UnrecoveredFaultError as exc:
                run_cpu_fallback(result, tracer, faults, exc, join_input,
                                 cfg.output_capacity)

            metrics.counter("join.output_tuples").inc(result.output_count)
        result.meta["peak_rss_bytes"] = peak_rss_bytes()
        result.faults = faults.reports
        result.trace = tracer.record()
        return result
