"""Gbase: the baseline GPU hash join."""

from repro.gpu.gbase.join_kernels import (
    GpuJoinPhaseResult,
    gbase_join_phase,
    probe_block_counters,
)
from repro.gpu.gbase.pipeline import GbaseConfig, GbaseJoin

__all__ = [
    "GbaseJoin",
    "GbaseConfig",
    "gbase_join_phase",
    "probe_block_counters",
    "GpuJoinPhaseResult",
]
