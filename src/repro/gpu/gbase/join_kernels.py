"""Gbase's join phase kernels.

One thread block joins a pair of R/S partitions using a chained hash table
in shared memory.  Skew handling (Section II-B): a long R partition is
decomposed into disjoint sub-lists, and one block per sub-list joins it
against the *full* S partition — so S tuples are re-read and re-probed once
per sub-list, and the skew of S itself is not addressed.

Output coordination uses the write bitmap (Section III): at every chain
step each thread atomically sets its bit, the block synchronizes, and
threads count bits to compute write offsets — so long chains multiply
atomics and barriers.  The block cost model below prices exactly those
terms:

* lockstep probe steps (rounds x per-round longest chain) — divergence;
* one barrier per lockstep step — the write-bitmap synchronization;
* one atomic per useful chain step — the write-intention bit;
* one full read of the S partition per sub-list block;
* output bytes per block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.cpu.hashing import bucket_ids, bits_for, next_pow2
from repro.cpu.partition import PartitionedRelation
from repro.gpu.bucket_chain import (
    DEFAULT_BUCKET_TUPLES,
    BucketChain,
    sublist_ranges,
)
from repro.exec.backend import dispatch
from repro.exec.counters import OpCounters
from repro.exec.matching import emit_matches, per_key_match_counts
from repro.exec.output import (
    DEFAULT_CAPACITY,
    JoinOutputBuffer,
    OutputSummary,
    combine_summaries,
)
from repro.faults.recovery import consume_injected_faults, scale_counters
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope
from repro.gpu.kernel import BlockWork
from repro.gpu.simulator import GPUSimulator
from repro.gpu.warp import lockstep_probe_rounds


@dataclass
class GpuJoinPhaseResult:
    """Outcome of a GPU join kernel over partition pairs."""

    summary: OutputSummary
    seconds: float
    counters: OpCounters
    n_blocks: int
    buffers: List[JoinOutputBuffer] = field(default_factory=list)


def _probe_chain_depths_vector(
    r_hashes: np.ndarray, s_hashes: np.ndarray, bucket_bits: int
) -> np.ndarray:
    """Chain length met by each probe tuple, via one histogram + gather."""
    chain_len = np.bincount(bucket_ids(r_hashes, bucket_bits),
                            minlength=1 << bucket_bits)
    return chain_len[bucket_ids(s_hashes, bucket_bits)]


def _probe_chain_depths_scalar(
    r_hashes: np.ndarray, s_hashes: np.ndarray, bucket_bits: int
) -> np.ndarray:
    """Chain length met by each probe tuple, accumulated tuple-at-a-time."""
    chain_len = [0] * (1 << bucket_bits)
    for b in bucket_ids(r_hashes, bucket_bits).tolist():
        chain_len[b] += 1
    per_probe = [chain_len[b]
                 for b in bucket_ids(s_hashes, bucket_bits).tolist()]
    return np.asarray(per_probe, dtype=np.int64)


def probe_block_counters(
    r_keys: np.ndarray,
    r_hashes: np.ndarray,
    s_keys: np.ndarray,
    s_hashes: np.ndarray,
    block_threads: int,
    bucket_bits: int,
) -> OpCounters:
    """Exact block cost of building over R and probing all of S."""
    n_r = int(r_keys.size)
    n_s = int(s_keys.size)
    counters = OpCounters(
        hash_ops=n_r + n_s,
        table_inserts=n_r,
        bytes_read=8 * (n_r + n_s),
    )
    if n_r == 0 or n_s == 0:
        return counters
    depth_of = dispatch(_probe_chain_depths_scalar, _probe_chain_depths_vector)
    per_probe = depth_of(r_hashes, s_hashes, bucket_bits)
    rounds = lockstep_probe_rounds(per_probe, block_threads)
    lockstep_steps = rounds.paid_steps // block_threads
    counters.chain_steps += lockstep_steps
    counters.sync_barriers += lockstep_steps  # write-bitmap barrier per step
    counters.atomic_ops += rounds.useful_steps  # write-intention bits
    counters.key_compares += rounds.useful_steps
    counters.divergent_steps += rounds.divergent_steps
    matches = int(per_key_match_counts(s_keys, r_keys).sum())
    counters.output_tuples += matches
    counters.bytes_written += 8 * matches
    return counters


def gbase_join_phase(
    part_r: PartitionedRelation,
    part_s: PartitionedRelation,
    sim: GPUSimulator,
    sublist_capacity: Optional[int] = None,
    output_capacity: int = DEFAULT_CAPACITY,
    kernel_name: str = "gbase_join",
    pairs: Optional[Sequence[int]] = None,
) -> GpuJoinPhaseResult:
    """Join aligned partition pairs, with sub-list skew decomposition.

    ``sublist_capacity`` bounds the R tuples per block; R partitions above
    it are split into sub-lists, each joined against the full S partition
    by its own block (``None`` disables decomposition — one block per pair,
    which is GSH's NM-join behaviour).

    Each pair probes the fault scope before its blocks are built: a
    ``capacity`` fault re-splits the pair's build side into smaller
    sub-lists (output is unchanged — decomposition only affects cost), and
    a ``task`` fault (worker crash) re-runs the pair's blocks, charging the
    wasted fraction as extra block work plus backoff.
    """
    if part_r.fanout != part_s.fanout:
        raise ValueError("R and S partition fanouts differ")
    if pairs is None:
        r_sizes = part_r.sizes()
        s_sizes = part_s.sizes()
        pairs = np.flatnonzero((r_sizes > 0) & (s_sizes > 0))
    device = sim.device
    scope = current_fault_scope()
    policy = scope.policy
    work: List[BlockWork] = []
    extra_backoff = 0.0
    # Buffers model the per-block output rings; a bounded pool is shared
    # round-robin (count/checksum are unaffected by which ring a pair uses).
    buffers = [
        JoinOutputBuffer(output_capacity)
        for _ in range(max(1, min(len(pairs), 64)))
    ]
    summaries: List[OutputSummary] = []
    table_buckets = next_pow2(max(device.shared_capacity_tuples, 2))
    bucket_bits = bits_for(table_buckets)
    for i, p in enumerate(pairs):
        p = int(p)
        r_keys, r_pays = part_r.partition(p)
        s_keys, s_pays = part_s.partition(p)
        r_hashes = part_r.partition_hashes(p)
        s_hashes = part_s.partition_hashes(p)
        n_r = int(r_keys.size)
        # Capacity fault: the pair's shared-memory table overflowed; re-split
        # the build side into sub-lists at a reduced capacity and go again.
        pair_capacity = sublist_capacity
        cap_episode = consume_injected_faults(scope, ("capacity",),
                                              partition=p)
        if cap_episode.retries:
            base = (pair_capacity if pair_capacity is not None
                    else device.shared_capacity_tuples)
            pair_capacity = max(
                base // (policy.regrow_factor ** cap_episode.retries), 1)
            extra_backoff += cap_episode.backoff_seconds
            scope.record(FailureReport(
                kind=cap_episode.kind, point="capacity",
                algorithm=scope.algorithm, phase=current_phase_name(),
                action="re-split", recovered=True, injected=True,
                retries=cap_episode.retries,
                backoff_seconds=cap_episode.backoff_seconds,
                error=cap_episode.errors[-1],
                context={"partition": p, "sublist_capacity": pair_capacity},
            ))
        if pair_capacity is not None and n_r > pair_capacity:
            # Decompose the partition's bucket chain into sub-lists of
            # whole buckets; each sub-list becomes one block's build side.
            chain = BucketChain(partition=p, buckets=[
                (a, min(a + DEFAULT_BUCKET_TUPLES, n_r))
                for a in range(0, n_r, DEFAULT_BUCKET_TUPLES)
            ])
            ranges = sublist_ranges(chain, pair_capacity)
        else:
            ranges = [(0, n_r)]
        pair_work = [
            BlockWork(1, probe_block_counters(
                r_keys[a:b], r_hashes[a:b], s_keys, s_hashes,
                device.threads_per_block, bucket_bits,
            ))
            for a, b in ranges
        ]
        # Worker crash: the blocks of this pair re-execute; each wasted
        # attempt costs a fraction of the pair's block work plus backoff.
        crash_episode = consume_injected_faults(scope, ("task",),
                                                partition=p)
        if crash_episode.retries:
            for _ in range(crash_episode.retries):
                work.extend(
                    BlockWork(w.count,
                              scale_counters(w.counters,
                                             policy.crash_cost_fraction))
                    for w in pair_work
                )
            extra_backoff += crash_episode.backoff_seconds
            scope.record(FailureReport(
                kind=crash_episode.kind, point="task",
                algorithm=scope.algorithm, phase=current_phase_name(),
                action="retry", recovered=True, injected=True,
                retries=crash_episode.retries,
                backoff_seconds=crash_episode.backoff_seconds,
                error=crash_episode.errors[-1],
                context={"partition": p},
            ))
        work.extend(pair_work)
        buf = buffers[i % len(buffers)]
        summaries.append(emit_matches(r_keys, r_pays, s_keys, s_pays, buf))
    launch = sim.launch(kernel_name, work)
    return GpuJoinPhaseResult(
        summary=combine_summaries(summaries),
        seconds=launch.seconds + extra_backoff,
        counters=launch.counters,
        n_blocks=launch.n_blocks,
        buffers=buffers,
    )
