"""SM occupancy: how many blocks an SM can host concurrently.

The cost models price blocks as if one block owns an SM (the calibration
against Table I absorbs average occupancy into the per-operation
constants), but occupancy is still needed for what-if analysis: a kernel
whose blocks use most of the shared memory cannot overlap blocks on an SM,
while a lean kernel can.  The scheduler accepts an explicit
``blocks_per_sm`` for such studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.device import DeviceSpec

#: Hardware cap on resident blocks per SM (Ampere).
MAX_BLOCKS_PER_SM = 32

#: Hardware cap on resident threads per SM (Ampere).
MAX_THREADS_PER_SM = 2048


@dataclass(frozen=True)
class Occupancy:
    """Occupancy of one kernel configuration on one device."""

    blocks_per_sm: int
    limited_by: str

    @property
    def concurrent_blocks_per_device(self) -> int:
        """Resident blocks per SM."""
        return self.blocks_per_sm  # per SM; multiply by sm_count externally


def occupancy_for(
    device: DeviceSpec,
    shared_mem_per_block: int,
    threads_per_block: int = None,
) -> Occupancy:
    """Blocks an SM can host given the kernel's resource usage."""
    if threads_per_block is None:
        threads_per_block = device.threads_per_block
    if threads_per_block <= 0:
        raise ConfigError("threads_per_block must be positive")
    if shared_mem_per_block < 0:
        raise ConfigError("shared memory usage cannot be negative")
    if shared_mem_per_block > device.shared_mem_per_sm:
        raise ConfigError(
            f"block uses {shared_mem_per_block} B shared memory but the SM "
            f"only has {device.shared_mem_per_sm} B"
        )
    limits = {"blocks": MAX_BLOCKS_PER_SM}
    limits["threads"] = MAX_THREADS_PER_SM // threads_per_block
    if shared_mem_per_block > 0:
        limits["shared_memory"] = (device.shared_mem_per_sm
                                   // shared_mem_per_block)
    blocks = min(limits.values())
    if blocks == 0:
        raise ConfigError("kernel configuration cannot be scheduled at all")
    limiter = min(limits, key=lambda k: limits[k])
    return Occupancy(blocks_per_sm=blocks, limited_by=limiter)


def device_concurrency(device: DeviceSpec, shared_mem_per_block: int,
                       threads_per_block: int = None) -> int:
    """Total concurrently resident blocks across the device."""
    occ = occupancy_for(device, shared_mem_per_block, threads_per_block)
    return occ.blocks_per_sm * device.sm_count
