"""Device-side building blocks: histogram, prefix scan, scatter.

These are the three kernels a count-then-scatter partitioning pass is made
of (GSH's "simple count then partition procedure"), expressed as block
work for the SIMT simulator.  Gbase's bucket-chaining pass is a single
scan-and-append kernel and is also described here.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from repro.gpu.kernel import BlockWork, uniform_grid

#: Tuples processed per thread block in grid-strided kernels.
TUPLES_PER_BLOCK = 4096


def histogram_kernel(n_tuples: int) -> List[BlockWork]:
    """Count tuples per target partition: one read + one hash each."""
    per_tuple = OpCounters(
        seq_tuple_reads=1, hash_ops=1, bytes_read=8,
    )
    return uniform_grid(n_tuples, TUPLES_PER_BLOCK, per_tuple)


def prefix_scan_kernel(n_elements: int) -> List[BlockWork]:
    """Exclusive prefix sum over per-block histograms.

    Work is linear in the histogram size with one barrier per scan level;
    histogram sizes are tiny next to the data, so this kernel exists for
    structural fidelity more than cost.
    """
    if n_elements < 0:
        raise ConfigError("n_elements must be non-negative")
    if n_elements == 0:
        return []
    levels = max(n_elements.bit_length(), 1)
    per_element = OpCounters(
        seq_tuple_reads=1,
        bytes_read=4,
        bytes_written=4,
    )
    work = uniform_grid(n_elements, TUPLES_PER_BLOCK, per_element)
    work.append(BlockWork(1, OpCounters(sync_barriers=levels)))
    return work


def scatter_kernel(n_tuples: int, coalesced: bool) -> List[BlockWork]:
    """Copy each tuple to its partition slot.

    ``coalesced=True`` models Gbase's shared-memory reorder + coalesced
    writes; ``False`` models GSH's plain scattered writes (each write pays
    a random-access latency term on top of its bytes).
    """
    per_tuple = OpCounters(
        seq_tuple_reads=1, hash_ops=1, tuple_moves=1,
        bytes_read=8, bytes_written=8,
        random_accesses=0 if coalesced else 1,
    )
    return uniform_grid(n_tuples, TUPLES_PER_BLOCK, per_tuple)


def bucket_chain_append_kernel(n_tuples: int, reorder_batch: int) -> List[BlockWork]:
    """Gbase's one-kernel partitioning pass: scan, reserve a bucket slot
    per register batch (one atomic), reorder in shared memory, write
    coalesced."""
    if reorder_batch <= 0:
        raise ConfigError("reorder_batch must be positive")
    per_batch = OpCounters(
        hash_ops=reorder_batch,
        tuple_moves=reorder_batch,
        atomic_ops=1,
        bytes_read=8 * reorder_batch,
        bytes_written=8 * reorder_batch,
    )
    batches = -(-n_tuples // reorder_batch) if n_tuples else 0
    return uniform_grid(batches, TUPLES_PER_BLOCK // reorder_batch, per_batch)
