"""Kernel abstractions for the SIMT cost simulator.

A kernel launch is described by its *block work*: groups of blocks sharing
identical per-block operation counters.  The simulator prices each block
with the GPU cost model and computes the launch's makespan over the
device's SMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.exec.counters import OpCounters


@dataclass
class BlockWork:
    """``count`` blocks, each performing the same operation counts."""

    count: int
    counters: OpCounters

    def __post_init__(self):
        if self.count < 0:
            raise ConfigError("block count must be non-negative")

    @property
    def total_counters(self) -> OpCounters:
        """Counters summed over all units."""
        return self.counters.scaled(self.count)


@dataclass
class KernelLaunch:
    """A completed (simulated) kernel launch."""

    name: str
    seconds: float
    counters: OpCounters
    n_blocks: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"KernelLaunch({self.name!r}, {self.seconds:.6g}s, "
                f"{self.n_blocks} blocks)")


def uniform_grid(n_items: int, items_per_block: int,
                 per_item: OpCounters) -> List[BlockWork]:
    """Split ``n_items`` of identical work into a uniform grid of blocks."""
    if items_per_block <= 0:
        raise ConfigError("items_per_block must be positive")
    if n_items == 0:
        return []
    full_blocks, remainder = divmod(n_items, items_per_block)
    work: List[BlockWork] = []
    if full_blocks:
        work.append(BlockWork(full_blocks, per_item.scaled(items_per_block)))
    if remainder:
        work.append(BlockWork(1, per_item.scaled(remainder)))
    return work
