"""GPU substrate: device specs, SIMT cost simulator, kernels, Gbase."""

from repro.gpu.bucket_chain import (
    BucketChain,
    BucketChainedPartitions,
    sublist_ranges,
)
from repro.gpu.device import A100, V100_LIKE, DeviceSpec
from repro.gpu.occupancy import Occupancy, device_concurrency, occupancy_for
from repro.gpu.transfer import (
    NVLINK3,
    PCIE4_X16,
    Interconnect,
    table_transfer_seconds,
    transfer_break_even_tuples,
    with_transfer,
)
from repro.gpu.gbase import GbaseConfig, GbaseJoin
from repro.gpu.kernel import BlockWork, KernelLaunch, uniform_grid
from repro.gpu.partitioning import (
    GpuPartitionResult,
    choose_gpu_bits,
    gbase_partition,
    gsh_partition,
)
from repro.gpu.scheduler import (
    BlockGroup,
    makespan_from_block_seconds,
    makespan_from_groups,
)
from repro.gpu.simulator import GPUSimulator, cost_model_for
from repro.gpu.warp import ProbeRounds, lockstep_probe_rounds

__all__ = [
    "DeviceSpec",
    "A100",
    "V100_LIKE",
    "GPUSimulator",
    "cost_model_for",
    "BlockWork",
    "KernelLaunch",
    "uniform_grid",
    "BlockGroup",
    "makespan_from_groups",
    "makespan_from_block_seconds",
    "ProbeRounds",
    "lockstep_probe_rounds",
    "choose_gpu_bits",
    "gbase_partition",
    "gsh_partition",
    "GpuPartitionResult",
    "GbaseJoin",
    "GbaseConfig",
    "BucketChain",
    "BucketChainedPartitions",
    "sublist_ranges",
    "Occupancy",
    "occupancy_for",
    "device_concurrency",
    "Interconnect",
    "PCIE4_X16",
    "NVLINK3",
    "with_transfer",
    "table_transfer_seconds",
    "transfer_break_even_tuples",
]
