"""The GPU simulator facade.

Prices kernel launches (block work -> seconds) against a device spec and
the GPU cost model, and keeps a timeline of launches so pipelines can
report per-phase simulated times.  Kernels on one stream serialize, so a
phase's time is the sum of its launches' makespans.

Every launch also opens a child span on the active tracer (see
:mod:`repro.obs.trace`), so traced pipeline phases show their individual
kernels nested underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigError, UnrecoveredFaultError
from repro.exec.counters import OpCounters
from repro.exec.cost_model import GPUCostModel
from repro.faults.plan import KERNEL_OOM
from repro.faults.report import FailureReport, current_phase_name
from repro.faults.scope import current_fault_scope
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.kernel import BlockWork, KernelLaunch
from repro.gpu.scheduler import BlockGroup, makespan_from_groups
from repro.obs.trace import current_tracer


def cost_model_for(device: DeviceSpec, **overrides) -> GPUCostModel:
    """A GPU cost model whose bandwidth/SM terms come from the device."""
    return GPUCostModel(
        device_bandwidth=device.bandwidth,
        sm_count=device.sm_count,
        **overrides,
    )


@dataclass
class GPUSimulator:
    """Simulated GPU: device spec + cost model + launch timeline."""

    device: DeviceSpec = A100
    cost_model: GPUCostModel = None
    launches: List[KernelLaunch] = field(default_factory=list)

    def __post_init__(self):
        if self.cost_model is None:
            self.cost_model = cost_model_for(self.device)
        if self.cost_model.sm_count != self.device.sm_count:
            raise ConfigError(
                "cost model and device disagree on the SM count"
            )

    def launch(self, name: str, work: Sequence[BlockWork]) -> KernelLaunch:
        """Price one kernel launch and record it on the timeline.

        The launch probes the fault scope's ``kernel`` injection point: an
        injected abort/OOM is recovered by relaunching (wasted execution
        fraction + backoff folded into the launch's seconds); exhausting
        the retry budget finishes the kernel span with the wasted time and
        raises :class:`UnrecoveredFaultError` for the pipeline's fallback
        ladder.
        """
        tracer = current_tracer()
        with tracer.span(f"kernel:{name}", kind="kernel",
                         device=self.device.name) as span:
            groups = [
                BlockGroup(w.count, self.cost_model.block_seconds(w.counters))
                for w in work if w.count > 0
            ]
            makespan = makespan_from_groups(groups, self.device.sm_count)
            seconds = makespan + self.cost_model.kernel_launch_s
            counters = OpCounters.sum(w.total_counters for w in work)
            n_blocks = sum(w.count for w in work)
            seconds += self._kernel_recovery_seconds(name, seconds, span)
            launch = KernelLaunch(name=name, seconds=seconds,
                                  counters=counters, n_blocks=n_blocks)
            self.launches.append(launch)
            span.finish(simulated_seconds=seconds, counters=counters,
                        task_count=n_blocks)
        metrics = tracer.metrics
        metrics.counter("gpu.kernel_launches").inc()
        metrics.counter("gpu.blocks_dispatched").inc(n_blocks)
        return launch

    def _kernel_recovery_seconds(self, name: str, seconds: float,
                                 span) -> float:
        """Probe the ``kernel`` injection point; absorb aborts by relaunch.

        On exhaustion the kernel span is finished with the wasted seconds
        (so traces of aborted phases stay internally consistent) before
        :class:`UnrecoveredFaultError` propagates.
        """
        scope = current_fault_scope()
        policy = scope.policy
        retries = 0
        backoff_total = 0.0
        kind = None
        while True:
            spec = scope.fire("kernel", kernel=name)
            if spec is None:
                break
            retries += 1
            kind = spec.kind
            backoff_total += policy.backoff_seconds(retries)
            if retries > policy.max_retries:
                wasted = retries * policy.crash_cost_fraction * seconds
                report = scope.record(FailureReport(
                    kind=kind, point="kernel", algorithm=scope.algorithm,
                    phase=current_phase_name(), action="abort",
                    recovered=False, injected=True, retries=retries,
                    backoff_seconds=backoff_total,
                    error=f"kernel {name!r} relaunch budget exhausted",
                    context={"kernel": name, "oom": kind == KERNEL_OOM},
                ))
                span.finish(simulated_seconds=wasted + backoff_total,
                            counters=OpCounters(), aborted=1.0)
                raise UnrecoveredFaultError(
                    f"kernel {name!r} exhausted {policy.max_retries} "
                    "retries", report=report, kernel=name)
        if retries == 0:
            return 0.0
        wasted = retries * policy.crash_cost_fraction * seconds
        scope.record(FailureReport(
            kind=kind, point="kernel", algorithm=scope.algorithm,
            phase=current_phase_name(), action="relaunch", recovered=True,
            injected=True, retries=retries, backoff_seconds=backoff_total,
            error=f"injected {kind} in kernel {name!r}",
            context={"kernel": name, "wasted_seconds": wasted},
        ))
        current_tracer().metrics.counter("gpu.kernel_retries").inc(retries)
        return wasted + backoff_total

    @property
    def total_seconds(self) -> float:
        """Sum of all launch makespans."""
        return sum(l.seconds for l in self.launches)

    def reset(self) -> None:
        """Clear the launch timeline."""
        self.launches.clear()
