"""The GPU simulator facade.

Prices kernel launches (block work -> seconds) against a device spec and
the GPU cost model, and keeps a timeline of launches so pipelines can
report per-phase simulated times.  Kernels on one stream serialize, so a
phase's time is the sum of its launches' makespans.

Every launch also opens a child span on the active tracer (see
:mod:`repro.obs.trace`), so traced pipeline phases show their individual
kernels nested underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ConfigError
from repro.exec.counters import OpCounters
from repro.exec.cost_model import GPUCostModel
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.kernel import BlockWork, KernelLaunch
from repro.gpu.scheduler import BlockGroup, makespan_from_groups
from repro.obs.trace import current_tracer


def cost_model_for(device: DeviceSpec, **overrides) -> GPUCostModel:
    """A GPU cost model whose bandwidth/SM terms come from the device."""
    return GPUCostModel(
        device_bandwidth=device.bandwidth,
        sm_count=device.sm_count,
        **overrides,
    )


@dataclass
class GPUSimulator:
    """Simulated GPU: device spec + cost model + launch timeline."""

    device: DeviceSpec = A100
    cost_model: GPUCostModel = None
    launches: List[KernelLaunch] = field(default_factory=list)

    def __post_init__(self):
        if self.cost_model is None:
            self.cost_model = cost_model_for(self.device)
        if self.cost_model.sm_count != self.device.sm_count:
            raise ConfigError(
                "cost model and device disagree on the SM count"
            )

    def launch(self, name: str, work: Sequence[BlockWork]) -> KernelLaunch:
        """Price one kernel launch and record it on the timeline."""
        tracer = current_tracer()
        with tracer.span(f"kernel:{name}", kind="kernel",
                         device=self.device.name) as span:
            groups = [
                BlockGroup(w.count, self.cost_model.block_seconds(w.counters))
                for w in work if w.count > 0
            ]
            makespan = makespan_from_groups(groups, self.device.sm_count)
            seconds = makespan + self.cost_model.kernel_launch_s
            counters = OpCounters.sum(w.total_counters for w in work)
            n_blocks = sum(w.count for w in work)
            launch = KernelLaunch(name=name, seconds=seconds,
                                  counters=counters, n_blocks=n_blocks)
            self.launches.append(launch)
            span.finish(simulated_seconds=seconds, counters=counters,
                        task_count=n_blocks)
        metrics = tracer.metrics
        metrics.counter("gpu.kernel_launches").inc()
        metrics.counter("gpu.blocks_dispatched").inc(n_blocks)
        return launch

    @property
    def total_seconds(self) -> float:
        """Sum of all launch makespans."""
        return sum(l.seconds for l in self.launches)

    def reset(self) -> None:
        """Clear the launch timeline."""
        self.launches.clear()
