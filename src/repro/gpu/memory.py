"""GPU memory-access accounting helpers.

Converts logical accesses into the byte traffic and latency events the cost
model prices:

* **Coalesced** accesses — consecutive threads touching consecutive
  elements — move exactly the requested bytes (Section II-A: "optimize data
  access to the global memory (e.g., with memory coalescing) to take
  advantage of the high bandwidth").
* **Uncoalesced/random** accesses fetch a full 32-byte sector per element
  and additionally pay a per-access latency term (``random_accesses`` in
  the counters).
* **Dependent chain walks** (bucket-chain probes) serialize on latency and
  are priced per step (``chain_steps``).
"""

from __future__ import annotations

from repro.exec.counters import OpCounters

#: Bytes fetched per uncoalesced element access (one DRAM sector).
SECTOR_BYTES = 32


def coalesced_read(counters: OpCounters, n_bytes: int) -> None:
    """Account a perfectly coalesced global read of ``n_bytes``."""
    counters.bytes_read += n_bytes


def coalesced_write(counters: OpCounters, n_bytes: int) -> None:
    """Account a perfectly coalesced global write of ``n_bytes``."""
    counters.bytes_written += n_bytes


def random_read(counters: OpCounters, n_elements: int,
                element_bytes: int = 8) -> None:
    """Account ``n_elements`` scattered reads (sector-amplified traffic)."""
    counters.random_accesses += n_elements
    counters.bytes_read += n_elements * max(element_bytes, SECTOR_BYTES)


def random_write(counters: OpCounters, n_elements: int,
                 element_bytes: int = 8) -> None:
    """Account ``n_elements`` scattered writes (sector-amplified traffic)."""
    counters.random_accesses += n_elements
    counters.bytes_written += n_elements * max(element_bytes, SECTOR_BYTES)


def shared_chain_walk(counters: OpCounters, n_steps: int) -> None:
    """Account dependent pointer-chase steps in shared memory."""
    counters.chain_steps += n_steps
