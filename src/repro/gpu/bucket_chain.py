"""Gbase's bucket-chained partition layout.

Section II-B: "All threads scan and copy tuples to the buckets of target
partitions.  If a bucket is full, Gbase allocates a new bucket and links
the buckets of a partition in a linked list."  The join phase's skew
handling then "decomposes a long linked list of buckets in an R partition
into multiple disjoint sub lists".

This module materializes that layout: fixed-size buckets drawn from a
global pool, linked per partition, with the sub-list decomposition used by
the Gbase join phase to size its per-block work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cpu.partition import PartitionedRelation
from repro.errors import ConfigError

#: Default tuples per bucket (Gbase uses small fixed-size buckets).
DEFAULT_BUCKET_TUPLES = 512


@dataclass
class BucketChain:
    """One partition's linked list of buckets.

    ``buckets`` lists (start, stop) tuple ranges into the partition's
    contiguous storage, in chain order; the last bucket may be partial.
    """

    partition: int
    buckets: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def n_buckets(self) -> int:
        """Number of buckets in the chain."""
        return len(self.buckets)

    @property
    def n_tuples(self) -> int:
        """Total tuples across the chain's buckets."""
        return sum(b - a for a, b in self.buckets)

    def sublists(self, max_tuples: int) -> List[List[Tuple[int, int]]]:
        """Decompose the chain into disjoint sub-lists of whole buckets.

        Each sub-list holds at most ``max_tuples`` tuples (rounded up to
        bucket granularity — a bucket is never split, matching Gbase's
        bucket-at-a-time decomposition).
        """
        if max_tuples <= 0:
            raise ConfigError("max_tuples must be positive")
        sublists: List[List[Tuple[int, int]]] = []
        current: List[Tuple[int, int]] = []
        current_tuples = 0
        for a, b in self.buckets:
            size = b - a
            if current and current_tuples + size > max_tuples:
                sublists.append(current)
                current = []
                current_tuples = 0
            current.append((a, b))
            current_tuples += size
        if current:
            sublists.append(current)
        return sublists


@dataclass
class BucketChainedPartitions:
    """All partitions of a relation as bucket chains."""

    chains: List[BucketChain]
    bucket_tuples: int

    @property
    def total_buckets(self) -> int:
        """Buckets across all partitions."""
        return sum(c.n_buckets for c in self.chains)

    def chain(self, partition: int) -> BucketChain:
        """The bucket chain of one partition."""
        return self.chains[partition]

    @staticmethod
    def from_partitioned(
        partitioned: PartitionedRelation,
        bucket_tuples: int = DEFAULT_BUCKET_TUPLES,
    ) -> "BucketChainedPartitions":
        """Lay out an already-partitioned relation as bucket chains.

        The contiguous per-partition storage is viewed as a chain of
        fixed-size buckets; this matches what Gbase's allocator produces
        up to bucket addresses, which the cost model does not price.
        """
        if bucket_tuples <= 0:
            raise ConfigError("bucket_tuples must be positive")
        chains = []
        for p in range(partitioned.fanout):
            lo, hi = int(partitioned.offsets[p]), int(partitioned.offsets[p + 1])
            buckets = [(a, min(a + bucket_tuples, hi))
                       for a in range(lo, hi, bucket_tuples)]
            chains.append(BucketChain(partition=p, buckets=buckets))
        return BucketChainedPartitions(chains=chains,
                                       bucket_tuples=bucket_tuples)


def sublist_ranges(chain: BucketChain, max_tuples: int) -> List[Tuple[int, int]]:
    """Flatten a chain's sub-lists into contiguous (start, stop) ranges.

    Buckets of one partition are contiguous in this layout, so each
    sub-list collapses to a single range — the form the Gbase join kernel
    consumes.
    """
    ranges = []
    for sublist in chain.sublists(max_tuples):
        ranges.append((sublist[0][0], sublist[-1][1]))
    return ranges
