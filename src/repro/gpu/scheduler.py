"""Block scheduling: from per-block costs to kernel makespan.

A CUDA kernel's grid of thread blocks is dispatched to SMs as they free up
— the same greedy list schedule as a CPU task queue, at much larger scale.
For kernels with millions of blocks an exact heap simulation is wasteful;
the classic list-scheduling bounds are tight when blocks are numerous, so
the scheduler uses ``max(total_work / SMs, longest_block)`` (the greedy
lower bound, within one block length of the exact makespan) and falls back
to exact simulation for small grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cpu.task_queue import greedy_schedule
from repro.errors import ConfigError

#: Below this many blocks the scheduler simulates the exact greedy schedule.
EXACT_SCHEDULE_LIMIT = 8192


@dataclass(frozen=True)
class BlockGroup:
    """``count`` identical blocks costing ``seconds`` each."""

    count: int
    seconds: float

    def __post_init__(self):
        if self.count < 0 or self.seconds < 0:
            raise ConfigError("block group must have non-negative count/cost")

    @property
    def total(self) -> float:
        """Aggregate seconds of the group."""
        return self.count * self.seconds


def makespan_from_groups(groups: Sequence[BlockGroup], sm_count: int) -> float:
    """Makespan of heterogeneous block groups over ``sm_count`` SMs."""
    if sm_count <= 0:
        raise ConfigError("sm_count must be positive")
    groups = [g for g in groups if g.count > 0]
    if not groups:
        return 0.0
    total = sum(g.total for g in groups)
    longest = max(g.seconds for g in groups)
    n_blocks = sum(g.count for g in groups)
    if n_blocks <= EXACT_SCHEDULE_LIMIT:
        costs: List[float] = []
        for g in groups:
            costs.extend([g.seconds] * g.count)
        return greedy_schedule(costs, sm_count).makespan
    return max(total / sm_count, longest)


def makespan_from_block_seconds(block_seconds: np.ndarray, sm_count: int) -> float:
    """Makespan of explicit per-block costs over ``sm_count`` SMs."""
    costs = np.asarray(block_seconds, dtype=np.float64)
    if costs.size == 0:
        return 0.0
    if np.any(costs < 0):
        raise ConfigError("block costs must be non-negative")
    if costs.size <= EXACT_SCHEDULE_LIMIT:
        return greedy_schedule(costs, sm_count).makespan
    return max(float(costs.sum()) / sm_count, float(costs.max()))
