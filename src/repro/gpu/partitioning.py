"""GPU partition phases for Gbase and GSH.

Functionally, both produce shared-memory-sized radix partitions (two
passes, like the CPU radix join); what differs — and what the cost model
prices — is *how* the data is moved:

* **Gbase** (Section II-B): bucket-chaining with dynamic buffer allocation.
  Threads append tuples to the buckets of target partitions (one atomic
  slot reservation per register batch of 4 tuples); a shared-memory reorder
  makes the global writes coalesced.  Work per tuple is constant, so the
  phase is flat in skew — matching Table I's steady 6.6–7.4 ms row.
* **GSH** (Section IV-B): a "simple count then partition procedure, which
  avoids the complexity of dynamic buffer allocation", i.e. histogram +
  prefix scan + plain scattered writes.  Pass 2 processes one pass-1
  partition per thread block, so a giant skewed partition lengthens the
  phase — matching Table I's GSH partition row growing from 5.9 ms to
  24.5 ms.

The cost construction lives in ``*_partition_cost`` so the executed
pipelines and the analytic paper-scale path price partitioning through the
exact same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.cpu.hashing import hash_keys
from repro.cpu.partition import (
    PartitionedRelation,
    choose_radix_bits,
    partition_pass,
    refine_pass,
)
from repro.exec.counters import OpCounters
from repro.gpu.kernel import BlockWork
from repro.gpu.primitives import (
    TUPLES_PER_BLOCK,
    bucket_chain_append_kernel,
    histogram_kernel,
    prefix_scan_kernel,
    scatter_kernel,
)
from repro.gpu.simulator import GPUSimulator

#: Kept as the public name for the grid-stride block size.
PARTITION_TUPLES_PER_BLOCK = TUPLES_PER_BLOCK

#: Gbase's register-reorder batch size (tuples per atomic slot reservation).
GBASE_REORDER_BATCH = 4

#: Per-tuple work of one GSH count-then-scatter pass (histogram scan +
#: scattered copy); used for per-partition pass-2 blocks.
GSH_PASS_PER_TUPLE = OpCounters(
    hash_ops=2,
    tuple_moves=1,
    seq_tuple_reads=2,
    random_accesses=1,
    bytes_read=16,
    bytes_written=8,
)


def choose_gpu_bits(n_tuples: int, shared_capacity_tuples: int) -> Tuple[int, int]:
    """Radix bits so final partitions fit the shared-memory hash table."""
    return choose_radix_bits(n_tuples, max(shared_capacity_tuples, 1),
                             max_total_bits=22)


@dataclass
class GpuPartitionResult:
    """Functional partitions plus the phase's simulated time/counters."""

    partitioned: PartitionedRelation
    seconds: float
    counters: OpCounters


def gbase_partition_cost(sim: GPUSimulator, n: int, two_pass: bool,
                         label: str) -> float:
    """Launches for Gbase's bucket-chaining passes; returns seconds."""
    work = bucket_chain_append_kernel(n, GBASE_REORDER_BATCH)
    seconds = sim.launch(f"gbase_partition_pass1_{label}", work).seconds
    if two_pass:
        seconds += sim.launch(f"gbase_partition_pass2_{label}", work).seconds
    return seconds


def gsh_partition_cost(sim: GPUSimulator, n: int, fanout1: int,
                       pass2_sizes: Sequence[int], label: str) -> float:
    """Launches for GSH's count-then-scatter passes; returns seconds.

    Pass 1 is histogram + prefix scan + scatter over the whole table;
    pass 2 refines each pass-1 partition with one thread block, so its
    makespan tracks ``max(pass2_sizes)``.
    """
    seconds = sim.launch(f"gsh_histogram_pass1_{label}",
                         histogram_kernel(n)).seconds
    seconds += sim.launch(f"gsh_scan_pass1_{label}",
                          prefix_scan_kernel(fanout1)).seconds
    seconds += sim.launch(f"gsh_scatter_pass1_{label}",
                          scatter_kernel(n, coalesced=False)).seconds
    if pass2_sizes is not None and len(pass2_sizes) > 0:
        work = [BlockWork(1, GSH_PASS_PER_TUPLE.scaled(int(m)))
                for m in pass2_sizes if m > 0]
        seconds += sim.launch(f"gsh_partition_pass2_{label}", work).seconds
    return seconds


def gbase_partition(
    keys: np.ndarray,
    payloads: np.ndarray,
    bits1: int,
    bits2: int,
    sim: GPUSimulator,
    label: str,
) -> GpuPartitionResult:
    """Two-pass bucket-chaining partitioning (Gbase)."""
    hashes = hash_keys(keys)
    pass1 = partition_pass(keys, payloads, hashes, 0, bits1, n_threads=1)
    before = len(sim.launches)
    seconds = gbase_partition_cost(sim, int(keys.size), bits2 > 0, label)
    counters = OpCounters.sum(l.counters for l in sim.launches[before:])
    current = pass1.partitioned
    if bits2 > 0:
        current = refine_pass(current, bits1, bits2).partitioned
    return GpuPartitionResult(partitioned=current, seconds=seconds,
                              counters=counters)


def gsh_partition(
    keys: np.ndarray,
    payloads: np.ndarray,
    bits1: int,
    bits2: int,
    sim: GPUSimulator,
    label: str,
) -> GpuPartitionResult:
    """Two-pass count-then-scatter partitioning (GSH)."""
    hashes = hash_keys(keys)
    pass1 = partition_pass(keys, payloads, hashes, 0, bits1, n_threads=1)
    pass2_sizes = pass1.partitioned.sizes() if bits2 > 0 else []
    before = len(sim.launches)
    seconds = gsh_partition_cost(sim, int(keys.size), 1 << bits1,
                                 pass2_sizes, label)
    counters = OpCounters.sum(l.counters for l in sim.launches[before:])
    current = pass1.partitioned
    if bits2 > 0:
        current = refine_pass(current, bits1, bits2).partitioned
    return GpuPartitionResult(partitioned=current, seconds=seconds,
                              counters=counters)
