"""Warp-level execution modelling: divergence and lockstep rounds.

All 32 threads of a warp execute in lockstep (SIMT); when threads take
different branch outcomes or loop trip counts, the warp serializes over the
union of paths.  For the chained-table probe this means every round of a
thread block costs as many steps as its *longest* chain, with the other
lanes idling — the paper's "significant code divergence in the probe
procedure" (Section III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ProbeRounds:
    """Cost shape of a block probing ``n_probes`` tuples in lockstep."""

    rounds: int
    #: Total lockstep steps paid (rounds x per-round longest chain).
    paid_steps: int
    #: Steps actually useful (sum of individual chain lengths).
    useful_steps: int

    @property
    def divergent_steps(self) -> int:
        """Wasted lane-steps: paid lanes minus useful work."""
        return max(self.paid_steps - self.useful_steps, 0)


def lockstep_probe_rounds(
    chain_lengths: np.ndarray, block_threads: int
) -> ProbeRounds:
    """Cost of probing tuples with the given chain lengths, one block.

    Tuples are processed ``block_threads`` at a time; each round runs for as
    many lockstep steps as the longest chain among its tuples, and every
    step is paid by all ``block_threads`` lanes.
    """
    if block_threads <= 0:
        raise ConfigError("block_threads must be positive")
    lengths = np.asarray(chain_lengths, dtype=np.int64)
    n = lengths.size
    if n == 0:
        return ProbeRounds(rounds=0, paid_steps=0, useful_steps=0)
    rounds = math.ceil(n / block_threads)
    pad = rounds * block_threads - n
    padded = np.concatenate([lengths, np.zeros(pad, dtype=np.int64)])
    per_round_max = padded.reshape(rounds, block_threads).max(axis=1)
    paid = int(per_round_max.sum()) * block_threads
    useful = int(lengths.sum())
    return ProbeRounds(rounds=rounds,
                       paid_steps=paid,
                       useful_steps=useful)


def round_sync_count(rounds: int, per_round_steps: int) -> int:
    """Barriers paid by the write-bitmap protocol.

    Gbase synchronizes the block after *every chain step* of a probe round
    to build the write bitmap (Section III), so the number of barriers is
    the total number of lockstep steps across rounds.
    """
    return rounds * per_round_steps
