"""Figure 4: hash join performance varying the zipf factor.

Regenerates the full five-algorithm sweep (4a: Cbase vs cbase-npj vs CSH;
4b: Gbase vs GSH) and asserts the paper's claims: parity at low skew,
large skew-conscious wins at high skew, and cbase-npj as the worst CPU
performer.
"""

import pytest

from repro.analysis.speedup import parity_band
from repro.bench.experiments import run_figure4
from repro.bench.paper import FIGURE_THETAS, LOW_SKEW_RANGE

from conftest import run_once


@pytest.fixture(scope="module")
def figure4_data():
    return run_figure4()


def test_fig4a_cpu_joins(benchmark, figure4_data):
    data = run_once(benchmark, run_figure4)
    fig4a = data["fig4a"]
    # "Cbase-npj is the worst performing solution."
    for theta in FIGURE_THETAS:
        assert fig4a["cbase-npj"][theta] >= fig4a["cbase"][theta]
        assert fig4a["cbase-npj"][theta] >= fig4a["csh"][theta]
    # "CSH is comparable to Cbase at low to medium skew (0-0.4)."
    assert parity_band(data["points"], "csh", "cbase", LOW_SKEW_RANGE,
                       tolerance=0.5)
    # "As the data is more and more skewed, CSH sees higher improvement."
    assert fig4a["cbase"][1.0] > 3 * fig4a["csh"][1.0]


def test_fig4b_gpu_joins(benchmark, figure4_data):
    data = run_once(benchmark, run_figure4)
    fig4b = data["fig4b"]
    # "GSH is comparable to Gbase [at] 0-0.4."
    assert parity_band(data["points"], "gsh", "gbase", LOW_SKEW_RANGE,
                       tolerance=0.6)
    # "GSH also sees significant improvement over Gbase."
    assert fig4b["gbase"][1.0] > 3 * fig4b["gsh"][1.0]


def test_fig4_speedup_claims(figure4_data):
    """Speedup maxima live in the medium-to-high skew band, like the
    paper's 'up to 8.0x / 13.5x for zipf 0.5-1.0'."""
    cpu_theta, cpu_speedup = figure4_data["cpu_best"]
    gpu_theta, gpu_speedup = figure4_data["gpu_best"]
    assert 0.5 <= cpu_theta <= 1.0
    assert 0.5 <= gpu_theta <= 1.0
    assert cpu_speedup > 2.0
    assert gpu_speedup > 2.0


def test_fig4_speedup_grows_with_skew(figure4_data):
    """The CSH/Cbase and GSH/Gbase ratios increase toward high skew."""
    a = figure4_data["fig4a"]
    b = figure4_data["fig4b"]
    assert (a["cbase"][1.0] / a["csh"][1.0]
            > a["cbase"][0.5] / a["csh"][0.5])
    assert (b["gbase"][1.0] / b["gsh"][1.0]
            > b["gbase"][0.5] / b["gsh"][0.5])
