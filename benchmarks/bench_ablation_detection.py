"""Ablation: sampling vs streaming skew detection for CSH.

The paper detects skewed keys with a 1% sample and a frequency threshold;
the library also offers a one-pass Space-Saving summary with guaranteed
recall (extension).  This bench compares the two on detection quality
(keys found, output coverage) and on the end-to-end CSH time.
"""

import numpy as np
import pytest

from repro.analysis.analytic import AnalyticWorkload
from repro.core.csh import CSHConfig, CSHJoin
from repro.cpu.spacesaving import streaming_skew_detection
from repro.core.csh.detector import detect_skewed_keys
from repro.data.zipf import ZipfWorkload

from conftest import run_once

N = 1 << 18
THETA = 1.0


@pytest.fixture(scope="module")
def join_input():
    return ZipfWorkload(N, N, theta=THETA, seed=17).generate()


def coverage(join_input, keys):
    wl = AnalyticWorkload.from_join_input(join_input)
    mask = np.isin(wl.keys, keys)
    covered = int(np.sum(wl.cr[mask] * wl.cs[mask]))
    return covered / max(wl.output_count(), 1)


def compare_detectors(join_input):
    sampled = detect_skewed_keys(join_input.r.keys, sample_rate=0.01,
                                 freq_threshold=2, seed=0)
    streamed = streaming_skew_detection(join_input.r.keys,
                                        min_frequency=1e-4)
    csh_sampled = CSHJoin(CSHConfig(sample_rate=0.01)).run(join_input)
    csh_streamed = CSHJoin(CSHConfig(detector="spacesaving",
                                     min_skew_frequency=1e-4)).run(join_input)
    return {
        "sampled_keys": int(sampled.n_skewed),
        "streamed_keys": int(streamed.size),
        "sampled_coverage": coverage(join_input, sampled.skewed_keys),
        "streamed_coverage": coverage(join_input, streamed),
        "sampled_seconds": csh_sampled.simulated_seconds,
        "streamed_seconds": csh_streamed.simulated_seconds,
        "results_match": csh_sampled.matches(csh_streamed),
    }


def test_ablation_detection(benchmark, join_input):
    data = run_once(benchmark, compare_detectors, join_input)
    print(f"\nDetection ablation (n={N}, zipf={THETA})")
    print(f"{'detector':<14}{'keys':>7}{'coverage':>10}{'csh time':>11}")
    print(f"{'1% sample':<14}{data['sampled_keys']:>7}"
          f"{data['sampled_coverage']:>10.2%}"
          f"{data['sampled_seconds']:>10.4g}s")
    print(f"{'space-saving':<14}{data['streamed_keys']:>7}"
          f"{data['streamed_coverage']:>10.2%}"
          f"{data['streamed_seconds']:>10.4g}s")
    # Both detectors yield correct joins and near-total coverage at
    # zipf 1.0, and the streaming summary never finds fewer keys above
    # its guaranteed threshold.
    assert data["results_match"]
    assert data["sampled_coverage"] > 0.95
    assert data["streamed_coverage"] > 0.95


def test_streaming_end_to_end_within_sampling_band(join_input):
    """Touching every tuple once costs about one extra scan — the
    end-to-end times stay within a small factor of each other."""
    data = compare_detectors(join_input)
    ratio = data["streamed_seconds"] / data["sampled_seconds"]
    assert 0.3 < ratio < 3.0
