"""Figure 1: performance impact of skewed join keys on the baselines.

Regenerates both subfigures — the partition/join time breakdown of Cbase
(1a) and Gbase (1b) as the zipf factor varies from 0 to 1 — and asserts
the paper's observations: partition time stays flat, join time rockets and
dominates at high skew.
"""

import pytest

from repro.bench.experiments import run_figure1
from repro.bench.paper import FIGURE_THETAS

from conftest import run_once


@pytest.fixture(scope="module")
def figure1_data():
    return run_figure1()


def test_fig1a_cbase_breakdown(benchmark, figure1_data):
    data = run_once(benchmark, run_figure1)
    fig1a = data["fig1a"]
    partition = fig1a["partition"]
    join = fig1a["join"]
    # "the partition time stays relatively stable"
    assert max(partition.values()) < 3 * min(partition.values())
    # "the execution time of the join phase rockets as the zipf factor
    # increases"
    assert join[1.0] > 100 * join[0.0]
    # "It dominates the execution time at high skew cases (0.8-1)"
    for theta in (0.8, 0.9, 1.0):
        assert join[theta] > partition[theta]


def test_fig1b_gbase_breakdown(benchmark, figure1_data):
    data = run_once(benchmark, run_figure1)
    fig1b = data["fig1b"]
    partition = fig1b["partition"]
    join = fig1b["join"]
    assert max(partition.values()) < 3 * min(partition.values())
    assert join[1.0] > 100 * join[0.0]
    for theta in (0.8, 0.9, 1.0):
        assert join[theta] > partition[theta]


def test_fig1_join_growth_is_monotone(figure1_data):
    for fig in ("fig1a", "fig1b"):
        join = figure1_data[fig]["join"]
        values = [join[t] for t in FIGURE_THETAS if t >= 0.4]
        assert values == sorted(values)
