"""Ablation: CPU thread scaling under skew.

The paper's core CPU observation is that adding workers cannot help Cbase
once a single skewed join task dominates the queue.  This bench scales the
simulated pool from 1 to 40 workers and shows Cbase flat-lining at high
skew while CSH keeps scaling (its skew work is spread evenly over the
S-partitioning threads).
"""

import pytest

from repro.analysis.analytic import analytic_cbase, analytic_csh
from repro.bench.runner import get_workload
from repro.core.csh.pipeline import CSHConfig
from repro.cpu.radix_join import CbaseConfig

from conftest import run_once

N = 1 << 21
THREADS = (1, 5, 10, 20, 40)


@pytest.fixture(scope="module")
def workloads():
    return {theta: get_workload(N, theta, seed=13) for theta in (0.0, 1.0)}


def sweep_threads(workloads):
    out = {"cbase": {}, "csh": {}}
    for t in THREADS:
        out["cbase"][t] = {
            theta: analytic_cbase(wl, CbaseConfig(n_threads=t))
            for theta, wl in workloads.items()}
        out["csh"][t] = {
            theta: analytic_csh(wl, CSHConfig(n_threads=t))
            for theta, wl in workloads.items()}
    return out


def test_ablation_thread_scaling(benchmark, workloads):
    results = run_once(benchmark, sweep_threads, workloads)
    print(f"\nThread-scaling ablation (n={N})")
    print(f"{'threads':>8}{'cbase z=0':>12}{'cbase z=1':>12}"
          f"{'csh z=0':>12}{'csh z=1':>12}")
    for t in THREADS:
        print(f"{t:>8}"
              f"{results['cbase'][t][0.0].simulated_seconds:>11.4g}s"
              f"{results['cbase'][t][1.0].simulated_seconds:>11.4g}s"
              f"{results['csh'][t][0.0].simulated_seconds:>11.4g}s"
              f"{results['csh'][t][1.0].simulated_seconds:>11.4g}s")

    # At zipf 0 both algorithms scale well: 20 threads >= 5x over 1.
    for alg in ("cbase", "csh"):
        t1 = results[alg][1][0.0].simulated_seconds
        t20 = results[alg][20][0.0].simulated_seconds
        assert t1 / t20 > 5

    # At zipf 1.0 Cbase barely improves from 10 to 40 workers: the
    # dominant-key task bounds the makespan.
    cb10 = results["cbase"][10][1.0].simulated_seconds
    cb40 = results["cbase"][40][1.0].simulated_seconds
    assert cb10 / cb40 < 1.5

    # CSH keeps a real parallel speedup at zipf 1.0.
    csh10 = results["csh"][10][1.0].simulated_seconds
    csh40 = results["csh"][40][1.0].simulated_seconds
    assert csh10 / csh40 > 2.0


def test_more_threads_never_hurt(workloads):
    wl = workloads[1.0]
    prev = None
    for t in THREADS:
        now = analytic_cbase(wl, CbaseConfig(n_threads=t)).simulated_seconds
        if prev is not None:
            assert now <= prev * 1.0001
        prev = now
