"""Extension: table-size scaling at fixed skew.

The paper samples two sizes (32 M and 560 M at zipf 0.7) and reports that
the skew-conscious wins persist.  This bench fills in the curve: sweep the
table size at fixed zipf factors and track each speedup — the CPU ratio
grows with size (the dominant task grows quadratically while CSH spreads
it), while the GPU ratio saturates once the skew kernel is bandwidth
bound.
"""

import pytest

from repro.analysis.analytic import (
    AnalyticWorkload,
    analytic_cbase,
    analytic_csh,
    analytic_gbase,
    analytic_gsh,
)

from conftest import run_once

SIZES = (1 << 18, 1 << 20, 1 << 22)
THETA = 0.9


def sweep_sizes():
    out = {}
    for n in SIZES:
        wl = AnalyticWorkload.from_zipf(n, n, THETA, seed=21)
        cb = analytic_cbase(wl)
        csh = analytic_csh(wl)
        gb = analytic_gbase(wl)
        gsh = analytic_gsh(wl)
        out[n] = {
            "cpu_speedup": cb.simulated_seconds / csh.simulated_seconds,
            "gpu_speedup": gb.simulated_seconds / gsh.simulated_seconds,
            "cbase": cb.simulated_seconds,
            "csh": csh.simulated_seconds,
            "gbase": gb.simulated_seconds,
            "gsh": gsh.simulated_seconds,
        }
    return out


@pytest.fixture(scope="module")
def size_data():
    return sweep_sizes()


def test_size_scaling(benchmark, size_data):
    data = run_once(benchmark, sweep_sizes)
    print(f"\nSize scaling at zipf {THETA}")
    print(f"{'tuples':>10}{'cbase':>11}{'csh':>11}{'cpu x':>8}"
          f"{'gbase':>11}{'gsh':>11}{'gpu x':>8}")
    for n, row in data.items():
        print(f"{n:>10}{row['cbase']:>10.4g}s{row['csh']:>10.4g}s"
              f"{row['cpu_speedup']:>7.1f}x"
              f"{row['gbase']:>10.4g}s{row['gsh']:>10.4g}s"
              f"{row['gpu_speedup']:>7.1f}x")
    # Skew-conscious joins win at every size.
    for row in data.values():
        assert row["cpu_speedup"] > 1.5
        assert row["gpu_speedup"] > 1.5


def test_cpu_speedup_grows_with_size(size_data):
    """Cbase's dominant task grows with n^2 while CSH's skew work spreads
    over the workers, so the ratio widens with table size."""
    speedups = [size_data[n]["cpu_speedup"] for n in SIZES]
    assert speedups[-1] > speedups[0]


def test_absolute_times_grow_superlinearly(size_data):
    """Output at fixed zipf grows ~quadratically in n, so baseline time
    must grow far faster than the 16x input growth."""
    assert (size_data[SIZES[-1]]["cbase"]
            > 30 * size_data[SIZES[0]]["cbase"])
