"""Detection-quality claim (Section V-B).

"When the zipf factor is 1.0, CSH detects 870 skewed [keys], which
contribute to about 99.6% of the total output."  The reproduced quantity
is the coverage: the detected keys must account for essentially all of the
join output, with the key count scaling with the sample size.
"""

import pytest

from repro.analysis.expected import output_share_of_top_keys
from repro.bench.experiments import run_detection
from repro.bench.paper import (
    DETECTED_SKEWED_KEYS_AT_1,
    PAPER_N_TUPLES,
    SKEWED_OUTPUT_SHARE_AT_1,
)

from conftest import run_once


@pytest.fixture(scope="module")
def detection_data():
    return run_detection()


def test_detection_coverage(benchmark, detection_data):
    data = run_once(benchmark, run_detection)
    assert data["skewed_keys"] > 0
    # The paper's 99.6%-coverage claim, at the harness scale.
    assert data["share"] > 0.95


def test_detection_count_math_matches_paper_at_32m():
    """Closed form: the paper's 870 hottest keys at 32M/zipf-1.0 cover
    ~99.6% of the expected output — reproduced without sampling."""
    share = output_share_of_top_keys(PAPER_N_TUPLES, 1.0,
                                     DETECTED_SKEWED_KEYS_AT_1)
    assert share == pytest.approx(SKEWED_OUTPUT_SHARE_AT_1, abs=0.01)


def test_larger_sample_detects_more_keys(detection_data):
    more = run_detection(sample_rate=0.01)
    assert more["skewed_keys"] >= detection_data["skewed_keys"]
    assert more["share"] >= detection_data["share"] - 1e-9
