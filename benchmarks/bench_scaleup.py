"""Section V-B scale-up: larger input tables at zipf 0.7.

The paper scales both tables to 560 M tuples (Gbase then occupies 38.5 GB
of the A100's 40 GB) and reports CSH 3.5x over Cbase and GSH 10.4x over
Gbase.  The default harness runs a proportionally larger-than-sweep table;
``REPRO_BENCH_SCALE=paper`` runs the full 560 M-tuple configuration via
the capped-domain histogram (see AnalyticWorkload.from_zipf).
"""

import os

import pytest

from repro.bench.experiments import run_scaleup
from repro.bench.paper import PAPER_N_TUPLES, SCALEUP_N_TUPLES
from repro.bench.runner import bench_tuples

from conftest import run_once


def scaleup_tuples() -> int:
    if bench_tuples() == PAPER_N_TUPLES:
        return SCALEUP_N_TUPLES
    return 4 * bench_tuples()


@pytest.fixture(scope="module")
def scaleup_data():
    return run_scaleup(n=scaleup_tuples())


def test_scaleup(benchmark, scaleup_data):
    data = run_once(benchmark, run_scaleup, n=scaleup_tuples())
    # The skew-conscious joins keep winning at scale (paper: 3.5x / 10.4x).
    assert data["cpu_speedup"] > 1.5
    assert data["gpu_speedup"] > 2.0


def test_scaleup_speedup_bands(scaleup_data):
    """Both speedups stay within an order of magnitude of the paper's."""
    assert 1.5 < scaleup_data["cpu_speedup"] < 40
    assert 2.0 < scaleup_data["gpu_speedup"] < 110


def test_scaleup_phase_structure(scaleup_data):
    results = scaleup_data["results"]
    # Cbase's join phase dominates its total at zipf 0.7.
    cb = results["cbase"]
    assert (cb.phase("join").simulated_seconds
            > cb.phase("partition").simulated_seconds)
    # GSH's skew steps engage (large partitions were detected).
    gsh = results["gsh"]
    assert gsh.meta["large_partitions"] >= 1
    assert gsh.meta["skewed_keys"] >= 1
