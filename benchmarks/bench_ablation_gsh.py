"""Ablations for GSH's design knobs: top-k and the large-partition
threshold.

The paper reports "we find that k=3 is sufficient"; these benches show
why — the first one or two keys capture almost everything, and beyond
k~3 the curve is flat.
"""

import pytest

from repro.analysis.analytic import analytic_gbase, analytic_gsh
from repro.bench.runner import get_workload
from repro.core.gsh.pipeline import GSHConfig

from conftest import run_once

N = 1 << 21
THETA = 0.9


@pytest.fixture(scope="module")
def workload():
    return get_workload(N, THETA, seed=13)


@pytest.fixture(scope="module")
def gbase_seconds(workload):
    return analytic_gbase(workload).simulated_seconds


def sweep_top_k(workload):
    return {k: analytic_gsh(workload, GSHConfig(top_k=k))
            for k in (1, 2, 3, 5, 8)}


def sweep_large_factor(workload):
    return {f: analytic_gsh(workload, GSHConfig(large_partition_factor=f))
            for f in (0.5, 1.0, 2.0, 4.0)}


def test_ablation_top_k(benchmark, workload, gbase_seconds):
    results = run_once(benchmark, sweep_top_k, workload)
    print(f"\nGSH top-k ablation (n={N}, zipf={THETA}, "
          f"gbase={gbase_seconds:.3g}s)")
    print(f"{'k':>4}{'seconds':>11}{'skew keys':>11}{'speedup':>9}")
    for k, res in results.items():
        print(f"{k:>4}{res.simulated_seconds:>10.4g}s"
              f"{res.meta['skewed_keys']:>11}"
              f"{gbase_seconds / res.simulated_seconds:>8.1f}x")
    # More keys per partition never hurts the detected set.
    keys = [res.meta["skewed_keys"] for res in results.values()]
    assert keys == sorted(keys)
    # The paper's k=3 beats the baseline, and k>=3 is within 25% of k=8:
    # the curve flattens right where the paper says it does.
    assert results[3].simulated_seconds < gbase_seconds
    assert (results[3].simulated_seconds
            < 1.25 * results[8].simulated_seconds)


def test_ablation_large_factor(benchmark, workload, gbase_seconds):
    results = run_once(benchmark, sweep_large_factor, workload)
    print(f"\nGSH large-partition-threshold ablation (n={N}, zipf={THETA})")
    print(f"{'factor':>7}{'seconds':>11}{'large parts':>13}")
    for f, res in results.items():
        print(f"{f:>7}{res.simulated_seconds:>10.4g}s"
              f"{res.meta['large_partitions']:>13}")
    # A higher threshold can only shrink the set of large partitions.
    larges = [res.meta["large_partitions"] for res in results.values()]
    assert larges == sorted(larges, reverse=True)


def test_all_settings_keep_output_exact(workload):
    expected = workload.output_count()
    for k in (1, 8):
        assert analytic_gsh(workload,
                            GSHConfig(top_k=k)).output_count == expected
