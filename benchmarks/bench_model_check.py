"""Model-vs-paper gate: cell-by-cell comparison against Table I.

Runs only at the paper's full scale (``REPRO_BENCH_SCALE=paper``), where
the paper's absolute numbers apply.  Asserts the reproduction contract:
most Table I cells within a small factor of the paper, and the headline
growth/speedup shapes intact.
"""

import pytest

from repro.analysis.model_check import check_against_table1
from repro.bench.experiments import run_table1
from repro.bench.paper import PAPER_N_TUPLES
from repro.bench.runner import bench_tuples

from conftest import run_once

paper_scale = pytest.mark.skipif(
    bench_tuples() != PAPER_N_TUPLES,
    reason="model check against the paper's absolute numbers requires "
           "REPRO_BENCH_SCALE=paper",
)


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1()


@paper_scale
def test_model_check_against_table1(benchmark, table1_rows):
    rows = run_once(benchmark, run_table1)
    check = check_against_table1(rows)
    print()
    print(check.report())
    # Reproduction contract: the model tracks the paper's Table I to
    # within small factors across six orders of magnitude of absolute
    # values.
    assert check.median_ratio() == pytest.approx(1.0, abs=0.6)
    assert check.cells_within(3.0) >= 0.75
    assert check.cells_within(10.0) == 1.0


@paper_scale
def test_headline_growth_factors(table1_rows):
    """Cbase join grows ~47000x from zipf 0.5 to 1.0 in the paper; the
    model must reproduce explosive growth of the same character."""
    growth = table1_rows["cbase join"][1.0] / table1_rows["cbase join"][0.5]
    assert growth > 1000
    growth_gpu = table1_rows["gbase join"][1.0] / table1_rows["gbase join"][0.5]
    assert growth_gpu > 1000
