"""Shared configuration for the benchmark harness."""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them would
    only re-measure harness overhead.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _keep_caches():
    """Keep the bench caches alive across the whole benchmark session so
    figures and tables that share a sweep compute it once."""
    yield
