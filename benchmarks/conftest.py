"""Shared configuration for the benchmark harness."""

import os

import pytest

from repro.bench.runner import bench_tuples, scale_label
from repro.errors import ConfigError


def pytest_configure(config):
    """Fail fast, with a clear message, on a malformed REPRO_BENCH_SCALE.

    Without this check a typo like ``REPRO_BENCH_SCALE=papre`` would
    surface as an unrelated traceback deep inside the first benchmark
    (or, historically, run silently at the wrong scale).
    """
    if "REPRO_BENCH_SCALE" in os.environ:
        try:
            bench_tuples()
        except ConfigError as exc:
            raise pytest.UsageError(str(exc)) from None


def pytest_collection_modifyitems(items):
    """Mark every benchmark so CI can (de)select with ``-m bench``."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def pytest_report_header(config):
    return f"repro bench scale: {scale_label(bench_tuples())}"


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them would
    only re-measure harness overhead.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture(scope="session", autouse=True)
def _keep_caches():
    """Keep the bench caches alive across the whole benchmark session so
    figures and tables that share a sweep compute it once."""
    yield
